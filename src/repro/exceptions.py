"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause while still
being able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Structural problem with a road network (bad vertex, bad edge...)."""


class NoPathError(GraphError):
    """Raised when no path exists between the requested endpoints."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from vertex {source} to vertex {target}")
        self.source = source
        self.target = target

    def __reduce__(self):
        # Default exception pickling replays args=(message,), which does not
        # match this constructor; a NoPathError raised inside a worker
        # process must survive the trip back through the result pipe.
        return (NoPathError, (self.source, self.target))


class QueryError(ReproError):
    """Malformed query or query set."""


class DecompositionError(ReproError):
    """A decomposition produced an invalid result (not a partition...)."""


class CacheError(ReproError):
    """Cache structure misuse (e.g. retrieving a path after a miss)."""


class IndexConstructionError(ReproError):
    """An auxiliary index (CH, PLL, landmarks) could not be built."""


class StaleIndexError(ReproError):
    """An index was queried after the underlying network mutated.

    Snapshot indexes (:class:`~repro.index.ch.ContractionHierarchy`,
    :class:`~repro.index.containers.GeometricContainers`) price their
    structure at build time; serving a query after ``graph.version``
    moved on would silently return pre-mutation distances.  They raise
    this instead — call ``rebuild()``, or use the customizable index
    (:class:`~repro.index.cch.CustomizableContractionHierarchy`), which
    re-customizes in place.
    """

    def __init__(self, index: str, built_version: int, current_version: int) -> None:
        super().__init__(
            f"{index} was built at graph version {built_version} but the "
            f"network is now at version {current_version}; rebuild() it or "
            f"use CustomizableContractionHierarchy, which re-customizes "
            f"instead of rebuilding"
        )
        self.index = index
        self.built_version = built_version
        self.current_version = current_version

    def __reduce__(self):
        # Like NoPathError: must survive the worker result pipe.
        return (
            StaleIndexError,
            (self.index, self.built_version, self.current_version),
        )


class ConfigurationError(ReproError):
    """Invalid parameter combination passed to a public API."""


class ObservabilityError(ReproError):
    """Metrics registry misuse (bucket mismatch, negative duration...)."""


class WorkerError(ReproError):
    """A worker process failed while answering a work unit."""


class UnitTimeoutError(WorkerError):
    """A work unit exceeded its per-attempt deadline (``unit_timeout``)."""

    def __init__(self, unit: int, attempt: int, timeout_seconds: float) -> None:
        super().__init__(
            f"unit {unit} attempt {attempt} exceeded its "
            f"{timeout_seconds:g}s deadline"
        )
        self.unit = unit
        self.attempt = attempt
        self.timeout_seconds = timeout_seconds

    def __reduce__(self):
        return (UnitTimeoutError, (self.unit, self.attempt, self.timeout_seconds))


class DeadlineExceededError(ReproError):
    """A search or work unit ran past its cooperative deadline.

    Raised from the pop-count deadline checks inside the search kernels
    (and from the engine/service when a budget is already spent before
    dispatch), so an expired query is cut off mid-search instead of
    burning the rest of its window.
    """

    def __init__(self, where: str = "search", overrun_seconds: float = 0.0) -> None:
        detail = f" ({overrun_seconds:.3f}s over)" if overrun_seconds > 0 else ""
        super().__init__(f"deadline exceeded in {where}{detail}")
        self.where = where
        self.overrun_seconds = overrun_seconds

    def __reduce__(self):
        # Like NoPathError: must survive the worker result pipe.
        return (DeadlineExceededError, (self.where, self.overrun_seconds))


class QuarantinedUnitError(ReproError):
    """A work unit exhausted its retry budget and was quarantined."""

    def __init__(self, unit: int, attempts: int, cause: str = "") -> None:
        detail = f" ({cause})" if cause else ""
        super().__init__(
            f"unit {unit} quarantined after {attempts} failed attempts{detail}"
        )
        self.unit = unit
        self.attempts = attempts
        self.cause = cause

    def __reduce__(self):
        return (QuarantinedUnitError, (self.unit, self.attempts, self.cause))


class FaultInjectionError(WorkerError):
    """A deliberate failure raised by the fault-injection harness.

    Never raised in production runs: it only appears when a
    :class:`repro.resilience.FaultPlan` is active, so tests can tell an
    injected fault from an organic bug.
    """
