"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause while still
being able to discriminate the failure class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class GraphError(ReproError):
    """Structural problem with a road network (bad vertex, bad edge...)."""


class NoPathError(GraphError):
    """Raised when no path exists between the requested endpoints."""

    def __init__(self, source: int, target: int) -> None:
        super().__init__(f"no path from vertex {source} to vertex {target}")
        self.source = source
        self.target = target


class QueryError(ReproError):
    """Malformed query or query set."""


class DecompositionError(ReproError):
    """A decomposition produced an invalid result (not a partition...)."""


class CacheError(ReproError):
    """Cache structure misuse (e.g. retrieving a path after a miss)."""


class IndexConstructionError(ReproError):
    """An auxiliary index (CH, PLL, landmarks) could not be built."""


class ConfigurationError(ReproError):
    """Invalid parameter combination passed to a public API."""


class ObservabilityError(ReproError):
    """Metrics registry misuse (bucket mismatch, negative duration...)."""
