"""Search-Space Estimation decomposition (Section IV-B).

Location alone is only a proxy for coherence — what actually determines how
much computation two queries share is their *search space*.  For the
generalized A* the search space is (approximately) an ellipse with the
source at one focus, whose flatness depends on the angle theta between the
query direction and the underlying road directions (Figure 2):

* the second focus sits at distance ``2 h cos(theta) / (1 + cos(theta))``
  from the source toward the target, and
* the ellipse's constant distance sum is ``2 h / (1 + cos(theta))``,

with ``h`` the Euclidean query length (Eqs. 4-5).  Road directions are
summarised per cell by the :class:`~repro.network.grid.GridIndex` (Eq. 2-3)
so estimating a query's search space costs a handful of grid lookups.

The decomposition processes queries longest-first (larger spaces are more
likely to cover shorter queries), builds one cluster per seed query from
every unassigned query whose endpoints both fall inside the covered cells
and whose direction deviates less than delta/2, and finally merges clusters
within a directional sliding window of delta/8 when their covered-cell
overlap coefficient (Eq. 6) exceeds a threshold.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import ConfigurationError
from ..network.grid import GridIndex, auto_levels
from ..obs import get_registry, record_decomposition
from ..network.spatial import (
    Ellipse,
    angular_difference,
    bearing_angle,
    fold_theta,
    reference_angle,
    search_space_ellipse,
)
from ..queries.query import Query, QuerySet
from .clusters import Decomposition, QueryCluster
from .zigzag import DEFAULT_DELTA

Cell = Tuple[int, int]


@dataclass
class SearchSpaceEstimate:
    """The estimated search space of one query."""

    query: Query
    theta: float  # offset from road directions, [0, 45] degrees
    bearing: float  # full-circle query direction, [0, 360)
    ellipse: Ellipse
    covered_cells: Set[Cell]


class SearchSpaceOracle:
    """Near-constant-time search-space estimation over a grid index."""

    def __init__(
        self, graph, grid: Optional[GridIndex] = None, levels: Optional[int] = None
    ) -> None:
        self.graph = graph
        if grid is None:
            grid = GridIndex(
                graph, levels=levels if levels is not None else auto_levels(graph)
            )
        self.grid = grid

    def estimate(self, query: Query) -> SearchSpaceEstimate:
        """Estimate the ellipse and covered grid cells for ``query``."""
        graph = self.graph
        sx, sy = graph.coord(query.source)
        tx, ty = graph.coord(query.target)
        traversed = self.grid.traversed_cells(sx, sy, tx, ty)
        road_theta = self.grid.direction_of_cells(traversed)
        query_theta = reference_angle(tx - sx, ty - sy)
        theta = fold_theta(abs(query_theta - road_theta))
        ellipse = search_space_ellipse(sx, sy, tx, ty, theta)
        covered = self.grid.covered_cells(ellipse, extra=traversed)
        return SearchSpaceEstimate(
            query=query,
            theta=theta,
            bearing=bearing_angle(tx - sx, ty - sy),
            ellipse=ellipse,
            covered_cells=covered,
        )


def overlap_coefficient(a: Set[Cell], b: Set[Cell]) -> float:
    """Szymkiewicz-Simpson overlap of two cell sets (Eq. 6)."""
    if not a or not b:
        return 0.0
    return len(a & b) / min(len(a), len(b))


class SearchSpaceDecomposer:
    """Generation + merge phases of the SSE decomposition.

    Parameters
    ----------
    graph:
        The road network.
    delta:
        Direction tolerance in degrees: members must deviate from their
        cluster seed by less than ``delta / 2``; the merge window is
        ``delta / 8`` (paper Section IV-B3).
    merge_threshold:
        Minimum overlap coefficient for two clusters to merge.
    grid:
        Optional shared :class:`GridIndex`.
    """

    method = "search-space"

    def __init__(
        self,
        graph,
        delta: float = DEFAULT_DELTA,
        merge_threshold: float = 0.5,
        grid: Optional[GridIndex] = None,
        levels: Optional[int] = None,
    ) -> None:
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        if not 0.0 < merge_threshold <= 1.0:
            raise ConfigurationError("merge_threshold must be in (0, 1]")
        self.graph = graph
        self.delta = delta
        self.merge_threshold = merge_threshold
        self.oracle = SearchSpaceOracle(graph, grid=grid, levels=levels)

    # ------------------------------------------------------------------
    def decompose(self, queries: QuerySet) -> Decomposition:
        start = time.perf_counter()
        with get_registry().span("decompose", method=self.method, queries=len(queries)):
            distinct = queries.deduplicated()
            clusters = self._generate(distinct)
            clusters = self._merge(clusters)
            clusters = self._restore_multiplicity(queries, clusters)
        elapsed = time.perf_counter() - start
        decomposition = Decomposition(clusters, self.method, elapsed).validate(queries)
        record_decomposition(decomposition)
        return decomposition

    # ------------------------------------------------------------------
    # Generation phase
    # ------------------------------------------------------------------
    def _generate(self, queries: QuerySet) -> List[QueryCluster]:
        graph = self.graph
        grid = self.oracle.grid
        order = sorted(
            queries,
            key=lambda q: graph.euclidean(q.source, q.target),
            reverse=True,
        )
        # Spatial index of pending queries by their source cell.
        by_source_cell: Dict[Cell, List[int]] = {}
        source_cell: List[Cell] = []
        target_cell: List[Cell] = []
        bearings: List[float] = []
        for idx, q in enumerate(order):
            sc = grid.cell_of_vertex(q.source)
            tc = grid.cell_of_vertex(q.target)
            source_cell.append(sc)
            target_cell.append(tc)
            sx, sy = graph.coord(q.source)
            tx, ty = graph.coord(q.target)
            bearings.append(bearing_angle(tx - sx, ty - sy))
            by_source_cell.setdefault(sc, []).append(idx)

        assigned = [False] * len(order)
        clusters: List[QueryCluster] = []
        half = self.delta / 2.0
        for idx, seed in enumerate(order):
            if assigned[idx]:
                continue
            estimate = self.oracle.estimate(seed)
            cluster = QueryCluster(
                kind="cloud",
                direction=estimate.bearing,
                covered_cells=set(estimate.covered_cells),
                center=seed,
            )
            cluster.add(seed)
            assigned[idx] = True
            for cell in estimate.covered_cells:
                for cand in by_source_cell.get(cell, ()):  # source inside space
                    if assigned[cand]:
                        continue
                    if target_cell[cand] not in estimate.covered_cells:
                        continue
                    if angular_difference(bearings[cand], estimate.bearing) > half:
                        continue
                    assigned[cand] = True
                    cluster.add(order[cand])
            clusters.append(cluster)
        return clusters

    # ------------------------------------------------------------------
    # Merge phase
    # ------------------------------------------------------------------
    def _merge(self, clusters: List[QueryCluster]) -> List[QueryCluster]:
        window = self.delta / 8.0
        ordered = sorted(clusters, key=lambda c: c.direction or 0.0)
        merged: List[QueryCluster] = []
        for cluster in ordered:
            host = None
            # Scan recent clusters inside the directional window; the list
            # is direction-sorted so the window is a suffix.
            for prev in reversed(merged):
                if angular_difference(prev.direction or 0.0, cluster.direction or 0.0) > window:
                    break
                if (
                    overlap_coefficient(prev.covered_cells, cluster.covered_cells)
                    >= self.merge_threshold
                ):
                    host = prev
                    break
            if host is None:
                merged.append(cluster)
                continue
            total = len(host) + len(cluster)
            host.direction = (
                (len(host) * (host.direction or 0.0) + len(cluster) * (cluster.direction or 0.0))
                / total
            )
            host.covered_cells |= cluster.covered_cells
            host.queries.extend(cluster.queries)
        return merged

    # ------------------------------------------------------------------
    @staticmethod
    def _restore_multiplicity(
        original: QuerySet, clusters: List[QueryCluster]
    ) -> List[QueryCluster]:
        counts: Dict[Query, int] = {}
        for q in original:
            counts[q] = counts.get(q, 0) + 1
        for cluster in clusters:
            extras: List[Query] = []
            for q in cluster.queries:
                for _ in range(counts.get(q, 1) - 1):
                    extras.append(q)
            cluster.queries.extend(extras)
        return clusters
