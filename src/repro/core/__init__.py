"""The paper's contribution: query decomposition + batch answering."""

from .batch_runner import METHODS, BatchProcessor
from .cache import CacheHit, PathCache, VersionedPathCache, path_size_bytes
from .clusters import Decomposition, QueryCluster
from .coclustering import CoClusteringDecomposer
from .dbscan import DBSCANDecomposer, angular_spread, dbscan
from .dynamic import DynamicBatchSession
from .local_cache import LocalCacheAnswerer
from .r2r import RegionToRegionAnswerer
from .results import BatchAnswer
from .search_space import (
    SearchSpaceDecomposer,
    SearchSpaceEstimate,
    SearchSpaceOracle,
    overlap_coefficient,
)
from .wspd import (
    DEFAULT_DETOUR_RATIO,
    EtaBound,
    cocluster_radius,
    error_from_separation,
    guaranteed_radius,
    region_radius,
    relative_error,
    separation_factor,
)
from .zigzag import DEFAULT_DELTA, ZigzagDecomposer, ad_decompose

__all__ = [
    "BatchAnswer",
    "BatchProcessor",
    "CacheHit",
    "CoClusteringDecomposer",
    "DBSCANDecomposer",
    "DEFAULT_DELTA",
    "DEFAULT_DETOUR_RATIO",
    "Decomposition",
    "DynamicBatchSession",
    "EtaBound",
    "LocalCacheAnswerer",
    "METHODS",
    "PathCache",
    "QueryCluster",
    "RegionToRegionAnswerer",
    "SearchSpaceDecomposer",
    "SearchSpaceEstimate",
    "SearchSpaceOracle",
    "VersionedPathCache",
    "ZigzagDecomposer",
    "ad_decompose",
    "angular_spread",
    "dbscan",
    "cocluster_radius",
    "error_from_separation",
    "guaranteed_radius",
    "overlap_coefficient",
    "path_size_bytes",
    "region_radius",
    "relative_error",
    "separation_factor",
]
