"""Region-to-Region approximate batch answering (Section V-B, Algorithm 2).

Given a dumbbell-shaped query cluster, R2R repeatedly:

1. picks a representative query ``(u*, v*)`` from the remaining queries —
   the *longest* (R2R-S) or a *random* one (R2R-R);
2. answers it exactly with A* to get ``d(u*, v*)`` and derives the region
   radius ``2 r* = 2 * eta * d / (8 + 4 eta)`` (Theorem 1 allows the factor
   2 because only the fixed representative anchors the approximation);
3. collects the candidate source set ``C_s`` — vertices within ``2 r*`` of
   ``u*`` in *both* directions (forward and backward bounded Dijkstras, per
   the diameter definition) — and symmetrically ``C_t`` around ``v*``;
4. answers every remaining query with ``s in C_s`` and ``t in C_t`` by the
   three-leg concatenation ``d(s, u*) + d(u*, v*) + d(v*, t)``, whose
   relative error is bounded by eta.

Unanswered queries stay in the pool and seed later rounds, so the loop
terminates: each round removes at least its representative.
"""

from __future__ import annotations

import random
import time
from typing import Dict, List, Optional, Tuple

from ..obs import get_registry
from ..exceptions import ConfigurationError
from ..queries.query import Query
from ..search.astar import a_star
from ..search.common import PathResult, reconstruct_path
from ..search.dijkstra import region_balls
from .clusters import Decomposition, QueryCluster
from .results import BatchAnswer
from .wspd import region_radius

SELECTION = ("longest", "random")


class RegionToRegionAnswerer:
    """Error-bounded region-to-region batch answering.

    Parameters
    ----------
    graph:
        The road network.
    eta:
        Global relative error bound (paper: 0.05).
    selection:
        ``"longest"`` for R2R-S, ``"random"`` for R2R-R.
    seed:
        RNG seed for random selection.
    build_paths:
        When ``True`` the three-leg concatenated *path* is materialised for
        every approximate answer; distances are always produced.
    """

    def __init__(
        self,
        graph,
        eta: float = 0.05,
        selection: str = "longest",
        seed: int = 0,
        build_paths: bool = True,
    ) -> None:
        if selection not in SELECTION:
            raise ConfigurationError(f"selection must be one of {SELECTION}")
        if not 0.0 < eta < 1.0:
            raise ConfigurationError(f"eta must be in (0, 1), got {eta}")
        self.graph = graph
        self.eta = eta
        self.selection = selection
        self.seed = seed
        self.build_paths = build_paths

    def spec(self):
        """``(kind, kwargs)`` from which a worker process can rebuild me."""
        return "r2r", {
            "eta": self.eta,
            "selection": self.selection,
            "seed": self.seed,
            "build_paths": self.build_paths,
        }

    # ------------------------------------------------------------------
    def answer(self, decomposition: Decomposition, method: Optional[str] = None) -> BatchAnswer:
        label = method or f"r2r[{self.selection}]"
        batch = BatchAnswer(
            method=label,
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
        )
        start = time.perf_counter()
        rng = random.Random(self.seed)
        with get_registry().span("answer", method=label):
            for cluster in decomposition:
                batch.answers.extend(self._answer_cluster(cluster, rng, batch))
                if len(cluster) == 1:
                    batch.singleton_queries += 1
        batch.answer_seconds = time.perf_counter() - start
        return batch

    # ------------------------------------------------------------------
    def _pick_representative(self, pending: List[Query], rng: random.Random) -> Query:
        if self.selection == "random":
            return pending[rng.randrange(len(pending))]
        graph = self.graph
        return max(pending, key=lambda q: graph.euclidean(q.source, q.target))

    def _answer_cluster(
        self, cluster: QueryCluster, rng: random.Random, batch: BatchAnswer
    ) -> List[Tuple[Query, PathResult]]:
        graph = self.graph
        pending: List[Query] = list(dict.fromkeys(cluster.queries))
        counts: Dict[Query, int] = {}
        for q in cluster.queries:
            counts[q] = counts.get(q, 0) + 1
        out: List[Tuple[Query, PathResult]] = []

        def emit(q: Query, result: PathResult) -> None:
            for _ in range(counts.get(q, 1)):
                out.append((q, result))

        while pending:
            rep = self._pick_representative(pending, rng)
            pending.remove(rep)
            exact = a_star(graph, rep.source, rep.target)
            batch.visited += exact.visited
            emit(rep, exact)
            if not exact.found or not pending:
                continue

            bound = region_radius(self.eta, exact.distance)
            u_star, v_star = rep.source, rep.target
            # C_s: within 2r* of u* both forward and backward (Algorithm 2 l.3).
            # The four balls share one radius, so a frozen snapshot with the
            # numpy backend collects all same-direction balls in one joint
            # sweep; the fallback is the original four bounded_ball_tree
            # calls with identical results.
            (
                (fwd_u, _, vis1),
                (bwd_u, par_bu, vis2),
                (fwd_v, par_fv, vis3),
                (bwd_v, _, vis4),
            ) = region_balls(
                graph,
                [(u_star, False), (u_star, True), (v_star, False), (v_star, True)],
                bound,
            )
            batch.visited += vis1 + vis2 + vis3 + vis4
            c_s = {v for v in bwd_u if v in fwd_u}
            c_t = {v for v in fwd_v if v in bwd_v}

            still_pending: List[Query] = []
            for q in pending:
                if q.source in c_s and q.target in c_t:
                    distance = bwd_u[q.source] + exact.distance + fwd_v[q.target]
                    path: List[int] = []
                    if self.build_paths:
                        path = self._three_leg_path(
                            q, rep, exact.path, par_bu, par_fv
                        )
                    emit(
                        q,
                        PathResult(
                            q.source, q.target, distance, path, visited=0, exact=False
                        ),
                    )
                else:
                    still_pending.append(q)
            pending = still_pending
        return out

    def _three_leg_path(
        self,
        q: Query,
        rep: Query,
        rep_path: List[int],
        par_bwd_u: Dict[int, int],
        par_fwd_v: Dict[int, int],
    ) -> List[int]:
        """Concatenate ``q.s -> u* -> v* -> q.t`` into one vertex walk.

        The backward tree from ``u*`` stores, for each vertex ``x``, the
        next hop toward ``u*`` along the shortest ``x -> u*`` path; walking
        it from ``q.s`` yields the first leg directly.
        """
        leg1: List[int] = [q.source]
        v = q.source
        while v != rep.source:
            v = par_bwd_u[v]
            leg1.append(v)
        leg3 = reconstruct_path(par_fwd_v, rep.target, q.target)
        # rep_path starts at u* (= leg1[-1]) and ends at v* (= leg3[0]).
        return leg1[:-1] + rep_path + leg3[1:]
