"""Result containers shared by all batch answering algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..queries.query import Query
from ..search.common import PathResult


@dataclass
class BatchAnswer:
    """The outcome of answering one decomposed query set.

    Attributes
    ----------
    method:
        Name of the answering algorithm (``"slc-s"``, ``"r2r-r"``...).
    answers:
        ``(query, result)`` pairs in processed order; duplicated queries
        appear once per occurrence.
    decompose_seconds / answer_seconds:
        The paper reports decomposition and query answering separately.
    visited:
        Total VNN across all searches run while answering.
    cache_hits / cache_misses:
        Cache accounting (zero for non-cache algorithms).
    cache_bytes:
        Total bytes of cache built (|GC| for the global cache, the sum over
        local caches otherwise).
    num_clusters:
        Cluster count of the decomposition that was answered.
    """

    method: str
    answers: List[Tuple[Query, PathResult]] = field(default_factory=list)
    decompose_seconds: float = 0.0
    answer_seconds: float = 0.0
    visited: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bytes: int = 0
    #: Largest single local cache built (defines the binding budget for the
    #: cache-size sweep of Fig 7-(c)/(e) at reproduction scale).
    max_cluster_cache_bytes: int = 0
    num_clusters: int = 0
    #: Queries answered through a singleton (unclustered) cluster — the
    #: paper's R_h excludes these from the hit-ratio denominator
    #: (Section VI); see :func:`repro.analysis.metrics.hit_ratio`.
    singleton_queries: int = 0
    #: Worker processes that produced this answer (1 = single-process).
    workers: int = 1
    #: The :class:`repro.parallel.ExecutionReport` of a multiprocess run,
    #: when one produced this answer (``None`` otherwise).
    execution_report: Optional[object] = None

    @property
    def total_seconds(self) -> float:
        return self.decompose_seconds + self.answer_seconds

    @property
    def num_queries(self) -> int:
        return len(self.answers)

    @property
    def hit_ratio(self) -> float:
        """Raw answered-from-cache fraction over *every* cache lookup.

        Singleton (unclustered) queries are included in the denominator
        here; the paper's Section VI definition of ``R_h`` excludes them —
        use :func:`repro.analysis.metrics.hit_ratio` for that.
        """
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def distances(self) -> Dict[Query, float]:
        """Best distance per distinct query (min across duplicates)."""
        out: Dict[Query, float] = {}
        for q, r in self.answers:
            if q not in out or r.distance < out[q]:
                out[q] = r.distance
        return out

    def approximate_answers(self) -> List[Tuple[Query, PathResult]]:
        return [(q, r) for q, r in self.answers if not r.exact]

    def summary(self) -> Dict[str, float]:
        return {
            "queries": float(self.num_queries),
            "clusters": float(self.num_clusters),
            "decompose_seconds": self.decompose_seconds,
            "answer_seconds": self.answer_seconds,
            "total_seconds": self.total_seconds,
            "visited": float(self.visited),
            "hit_ratio": self.hit_ratio,
            "cache_mb": self.cache_bytes / (1024.0 * 1024.0),
            "workers": float(self.workers),
        }
