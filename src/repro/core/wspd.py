"""The eta-approximation mathematics of Section IV-C2.

Well-separated pair decomposition gives an epsilon-approximation of all
distances between two vertex sets through one representative pair.  The
paper extends it from distances to *paths* with a global error bound eta:

* separation factor       ``s = 4 / eta + 2``            (from eta = 4/(s-2))
* guaranteed ball radius  ``r* = eta * d(u*, v*) / (8 + 4 eta)``
  (i.e. half the diameter bound ``r <= eta d / (4 + 2 eta)``), and
* Theorem 1 pushes the usable radius to ``2 r*`` because only the fixed
  representative — not arbitrary set members — anchors the approximation.

During *decomposition* the true ``d(u*, v*)`` is unknown, so the paper
substitutes ``1.2 x`` the Euclidean distance (the empirical network-detour
ratio of the Beijing network); the substitution is exposed here as
``detour_ratio`` so it can be calibrated per network and ablated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError

#: The paper's empirical shortest-path / Euclidean ratio for Beijing.
DEFAULT_DETOUR_RATIO = 1.2


def separation_factor(eta: float) -> float:
    """The separation ``s`` achieving global path error ``eta`` (s = 4/eta + 2)."""
    _check_eta(eta)
    return 4.0 / eta + 2.0


def error_from_separation(s: float) -> float:
    """Inverse of :func:`separation_factor`: eta = 4 / (s - 2)."""
    if s <= 2.0:
        raise ConfigurationError(f"separation factor must exceed 2, got {s}")
    return 4.0 / (s - 2.0)


def guaranteed_radius(eta: float, representative_distance: float) -> float:
    """The safe cluster radius ``r* = eta d / (8 + 4 eta)`` around u*, v*.

    Every query whose endpoints lie within ``r*`` of the representatives is
    answered with relative error at most ``eta`` by the three-leg
    concatenation; Theorem 1 extends this to ``2 r*`` (see
    :func:`region_radius`).
    """
    _check_eta(eta)
    if representative_distance < 0:
        raise ConfigurationError("distance must be non-negative")
    return eta * representative_distance / (8.0 + 4.0 * eta)


def region_radius(eta: float, representative_distance: float) -> float:
    """Theorem 1's extended region radius ``2 r*`` used by R2R."""
    return 2.0 * guaranteed_radius(eta, representative_distance)


def cocluster_radius(
    eta: float,
    euclidean_distance: float,
    detour_ratio: float = DEFAULT_DETOUR_RATIO,
) -> float:
    """Decomposition-time radius ``r_i* = detour * eta * d_euc / (8 + 4 eta)``.

    Used by the Co-Clustering decomposer, where only the Euclidean distance
    of the cluster centre is available (Section IV-C2, last paragraph).
    """
    if detour_ratio < 1.0:
        raise ConfigurationError("detour_ratio must be >= 1 (paths are never shorter)")
    return detour_ratio * guaranteed_radius(eta, euclidean_distance)


def approximation_upper_bound(eta: float, exact_distance: float) -> float:
    """Largest approximate distance permitted for a true distance, (1+eta) d."""
    _check_eta(eta)
    return (1.0 + eta) * exact_distance


def relative_error(exact: float, approximate: float) -> float:
    """The paper's error measure ``(d* - d) / d`` (0 for exact answers)."""
    if exact < 0 or approximate < 0:
        raise ConfigurationError("distances must be non-negative")
    if exact == 0.0:
        return 0.0 if approximate == 0.0 else float("inf")
    return (approximate - exact) / exact


def _check_eta(eta: float) -> None:
    if not 0.0 < eta < 1.0:
        raise ConfigurationError(f"eta must be in (0, 1), got {eta}")


@dataclass(frozen=True)
class EtaBound:
    """Bundled eta-derived constants for one error budget."""

    eta: float

    @property
    def separation(self) -> float:
        return separation_factor(self.eta)

    def r_star(self, representative_distance: float) -> float:
        return guaranteed_radius(self.eta, representative_distance)

    def region(self, representative_distance: float) -> float:
        return region_radius(self.eta, representative_distance)

    def cluster_radius(
        self, euclidean_distance: float, detour_ratio: float = DEFAULT_DETOUR_RATIO
    ) -> float:
        return cocluster_radius(self.eta, euclidean_distance, detour_ratio)
