"""Dynamic batch query answering (Section V-A3).

Weights change every epoch ``T``; several query batches arrive within one
epoch.  The first batch of an epoch builds local caches from scratch; later
batches reuse the cache of the most similar earlier cluster — similarity is
the overlap coefficient of the clusters' covered grid cells (for SSE
clusters, additionally requiring a compatible direction) — and only build a
new cache when nothing similar exists.  When the epoch ends (the graph
version changed), every cache is destroyed.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple

from ..exceptions import ConfigurationError, FaultInjectionError
from ..network.grid import GridIndex
from ..obs import get_registry, record_cache
from ..network.spatial import angular_difference
from ..queries.query import QuerySet
from .cache import PathCache
from .clusters import QueryCluster
from .local_cache import LocalCacheAnswerer
from .results import BatchAnswer
from .search_space import overlap_coefficient

Cell = Tuple[int, int]

logger = logging.getLogger(__name__)


@dataclass
class _LiveCache:
    cache: PathCache
    cells: Set[Cell]
    direction: Optional[float]


class DynamicBatchSession:
    """Answer a stream of batches over a changing road network.

    Parameters
    ----------
    graph:
        The (mutable) road network; ``graph.version`` defines epochs.
    decomposer:
        Any object with ``decompose(QuerySet) -> Decomposition`` (Zigzag or
        SSE decomposers).
    answerer:
        The :class:`LocalCacheAnswerer` used per cluster.
    similarity_threshold:
        Minimum overlap coefficient to reuse an existing cache.
    direction_window:
        Maximum direction difference (degrees) for reuse when both clusters
        carry a direction (SSE clusters); ignored otherwise.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan`; its ``session``
        faults raise a :class:`FaultInjectionError` at the start of
        :meth:`process_batch` (before any cache mutation), modelling a
        transient snapshot failure the service retry loop can absorb.
    """

    def __init__(
        self,
        graph,
        decomposer,
        answerer: LocalCacheAnswerer,
        similarity_threshold: float = 0.5,
        direction_window: float = 15.0,
        grid: Optional[GridIndex] = None,
        fault_plan=None,
    ) -> None:
        if not 0.0 < similarity_threshold <= 1.0:
            raise ConfigurationError("similarity_threshold must be in (0, 1]")
        self.graph = graph
        self.decomposer = decomposer
        self.answerer = answerer
        self.similarity_threshold = similarity_threshold
        self.direction_window = direction_window
        self.fault_plan = fault_plan
        self._grid = grid if grid is not None else GridIndex(graph, levels=5)
        self._caches: List[_LiveCache] = []
        self._epoch_version = graph.version
        self.caches_reused = 0
        self.caches_created = 0
        self.epochs_flushed = 0
        self.faults_raised = 0
        self._batch_counter = 0

    # ------------------------------------------------------------------
    def _cluster_cells(self, cluster: QueryCluster) -> Set[Cell]:
        """Grid footprint of a cluster: its covered cells, else endpoint cells."""
        if cluster.covered_cells:
            return set(cluster.covered_cells)
        cells: Set[Cell] = set()
        for q in cluster.queries:
            cells.add(self._grid.cell_of_vertex(q.source))
            cells.add(self._grid.cell_of_vertex(q.target))
        return cells

    def _find_similar(self, cells: Set[Cell], direction: Optional[float]) -> Optional[_LiveCache]:
        best: Optional[_LiveCache] = None
        best_sim = self.similarity_threshold
        for live in self._caches:
            if (
                direction is not None
                and live.direction is not None
                and angular_difference(direction, live.direction) > self.direction_window
            ):
                continue
            sim = overlap_coefficient(cells, live.cells)
            if sim >= best_sim:
                best = live
                best_sim = sim
        return best

    def _flush_if_new_epoch(self) -> None:
        if self.graph.version != self._epoch_version:
            if self._caches:
                logger.info(
                    "weight epoch changed (version %d -> %d): flushing %d caches",
                    self._epoch_version,
                    self.graph.version,
                    len(self._caches),
                )
            self.flush()

    def flush(self) -> int:
        """Destroy every live cache and re-pin the epoch; returns the count.

        Called automatically when the graph version changes; callers that
        idle a session for a long time (the streaming service between
        traffic bursts) can also flush explicitly to release cache memory
        without waiting for the next epoch.
        """
        flushed = len(self._caches)
        if flushed:
            self.epochs_flushed += 1
        self._caches.clear()
        self._epoch_version = self.graph.version
        return flushed

    # ------------------------------------------------------------------
    def process_batch(self, queries: QuerySet, attempt: int = 1) -> BatchAnswer:
        """Decompose and answer one arriving batch, reusing live caches.

        ``attempt`` is the caller's retry counter for *this* batch; the
        fault plan keys on it so injected transient failures clear on
        retry.  Same-batch retries share one batch index, so the service
        retry loop deterministically converges.
        """
        if attempt == 1:
            self._batch_counter += 1
        batch_index = self._batch_counter - 1
        if self.fault_plan is not None and self.fault_plan.session_fault(
            batch_index, attempt
        ):
            # Before any cache mutation, so a retried batch starts clean.
            self.faults_raised += 1
            raise FaultInjectionError(
                f"injected transient session failure (batch {batch_index}, "
                f"attempt {attempt})"
            )
        self._flush_if_new_epoch()
        decomposition = self.decomposer.decompose(queries)
        batch = BatchAnswer(
            method=f"dynamic[{self.answerer.order}]",
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
        )
        start = time.perf_counter()
        reg = get_registry()
        with reg.span("answer", method=batch.method):
            for cluster in decomposition:
                cells = self._cluster_cells(cluster)
                live = self._find_similar(cells, cluster.direction)
                if live is None:
                    live = _LiveCache(
                        cache=PathCache(
                            self.graph,
                            self.answerer.cache_bytes,
                            self.answerer.super_map,
                            eviction=self.answerer.eviction,
                        ),
                        cells=cells,
                        direction=cluster.direction,
                    )
                    self._caches.append(live)
                    self.caches_created += 1
                else:
                    self.caches_reused += 1
                    live.cells |= cells
                cache = live.cache
                before_hits = cache.hits
                before_misses = cache.misses
                before_evictions = cache.evictions
                before_rejected = cache.rejected_inserts
                before_subpath = cache.subpath_hits
                before_bytes = cache.size_bytes
                pairs = self.answerer.answer_cluster(cluster, cache)
                batch.answers.extend(pairs)
                batch.visited += sum(r.visited for _, r in pairs)
                batch.cache_hits += cache.hits - before_hits
                batch.cache_misses += cache.misses - before_misses
                if len(cluster) == 1:
                    batch.singleton_queries += 1
                record_cache(
                    cache.hits - before_hits,
                    cache.misses - before_misses,
                    evictions=cache.evictions - before_evictions,
                    rejected_inserts=cache.rejected_inserts - before_rejected,
                    subpath_hits=cache.subpath_hits - before_subpath,
                    bytes_built=max(0, cache.size_bytes - before_bytes),
                )
        if reg.enabled:
            # Session-lifetime totals, so gauges (set, not add): re-publishing
            # after every batch keeps them current without double counting.
            reg.gauge("dynamic.live_caches").set(len(self._caches))
            reg.gauge("dynamic.caches_reused").set(self.caches_reused)
            reg.gauge("dynamic.caches_created").set(self.caches_created)
        batch.cache_bytes = sum(c.cache.size_bytes for c in self._caches)
        batch.answer_seconds = time.perf_counter() - start
        return batch

    @property
    def live_cache_count(self) -> int:
        return len(self._caches)
