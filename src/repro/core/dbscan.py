"""DBSCAN-based decomposition — the strawman of Section IV-A1.

The paper opens its decomposition design by rejecting "the most
straightforward method": clustering targets with DBSCAN.  Density clusters
can take any shape — a 180-degree arc around the source shares almost no
computation even though every target is pairwise close — which is exactly
why the AD (angle/distance) petals exist.

This module implements that strawman faithfully so the comparison can be
*measured* rather than asserted: a dependency-free DBSCAN over endpoint
coordinates, plus a decomposer that forms query clusters from the
(source-cluster, target-cluster) product — the naive two-way analogue.
The ablation benchmark pits it against the AD petals on the angular-spread
metric that predicts generalized-A* sharing.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import ConfigurationError
from ..queries.query import Query, QuerySet
from .clusters import Decomposition, QueryCluster

NOISE = -1


def dbscan(
    points: Sequence[Tuple[float, float]],
    eps: float,
    min_points: int = 3,
) -> List[int]:
    """Classic DBSCAN over 2-D points; returns a label per point.

    Noise points get label ``-1``; clusters are numbered from 0.  Uses a
    uniform grid hash for the eps-neighbourhood queries, so the expected
    complexity is near-linear for non-degenerate inputs.
    """
    if eps <= 0:
        raise ConfigurationError("eps must be positive")
    if min_points < 1:
        raise ConfigurationError("min_points must be at least 1")
    n = len(points)
    labels = [None] * n  # type: List[Optional[int]]

    # Grid hash with cell size eps: neighbours live in the 3x3 block.
    buckets: Dict[Tuple[int, int], List[int]] = {}
    for i, (x, y) in enumerate(points):
        buckets.setdefault((int(math.floor(x / eps)), int(math.floor(y / eps))), []).append(i)

    def neighbours(i: int) -> List[int]:
        x, y = points[i]
        ci, cj = int(math.floor(x / eps)), int(math.floor(y / eps))
        out = []
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                for j in buckets.get((ci + di, cj + dj), ()):  # includes i
                    dx = points[j][0] - x
                    dy = points[j][1] - y
                    if dx * dx + dy * dy <= eps * eps:
                        out.append(j)
        return out

    cluster_id = 0
    for i in range(n):
        if labels[i] is not None:
            continue
        seeds = neighbours(i)
        if len(seeds) < min_points:
            labels[i] = NOISE
            continue
        labels[i] = cluster_id
        frontier = [j for j in seeds if j != i]
        while frontier:
            j = frontier.pop()
            if labels[j] == NOISE:
                labels[j] = cluster_id  # border point
            if labels[j] is not None:
                continue
            labels[j] = cluster_id
            j_neigh = neighbours(j)
            if len(j_neigh) >= min_points:
                frontier.extend(k for k in j_neigh if labels[k] is None)
        cluster_id += 1
    return [NOISE if l is None else l for l in labels]


class DBSCANDecomposer:
    """The rejected baseline: density clusters of sources x targets.

    Every query is keyed by the pair (label of its source's density
    cluster, label of its target's density cluster); noise endpoints form
    singleton keys.  The result is a valid partition, but clusters carry
    no directional coherence — the property the ablation measures.
    """

    method = "dbscan"

    def __init__(self, graph, eps: float, min_points: int = 3) -> None:
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        self.graph = graph
        self.eps = eps
        self.min_points = min_points

    def decompose(self, queries: QuerySet) -> Decomposition:
        start = time.perf_counter()
        distinct = list(dict.fromkeys(queries))
        counts: Dict[Query, int] = {}
        for q in queries:
            counts[q] = counts.get(q, 0) + 1

        # Label all endpoint coordinates in one DBSCAN run per side.
        sources = sorted({q.source for q in distinct})
        targets = sorted({q.target for q in distinct})
        src_labels = dbscan(
            [self.graph.coord(v) for v in sources], self.eps, self.min_points
        )
        tgt_labels = dbscan(
            [self.graph.coord(v) for v in targets], self.eps, self.min_points
        )
        src_label = dict(zip(sources, src_labels))
        tgt_label = dict(zip(targets, tgt_labels))

        groups: Dict[Tuple, QueryCluster] = {}
        for q in distinct:
            ls = src_label[q.source]
            lt = tgt_label[q.target]
            # Noise endpoints do not share a density cluster with anyone:
            # key them by the vertex itself so they stay singleton-ish.
            key = (
                ("s", q.source) if ls == NOISE else ("c", ls),
                ("t", q.target) if lt == NOISE else ("c", lt),
            )
            cluster = groups.get(key)
            if cluster is None:
                cluster = QueryCluster(kind="dumbbell", center=q)
                groups[key] = cluster
            for _ in range(counts.get(q, 1)):
                cluster.add(q)
        elapsed = time.perf_counter() - start
        return Decomposition(list(groups.values()), self.method, elapsed).validate(
            queries
        )


def angular_spread(graph, cluster: QueryCluster) -> float:
    """Largest pairwise direction difference among a cluster's queries.

    The predictor of generalized-A* sharing the paper reasons with: beyond
    ~30 degrees batch processing starts losing to individual runs.
    Returns 0 for singletons.
    """
    from ..network.spatial import angular_difference, bearing_angle

    bearings = []
    for q in dict.fromkeys(cluster.queries):
        sx, sy = graph.coord(q.source)
        tx, ty = graph.coord(q.target)
        bearings.append(bearing_angle(tx - sx, ty - sy))
    worst = 0.0
    for i, a in enumerate(bearings):
        for b in bearings[i + 1 :]:
            worst = max(worst, angular_difference(a, b))
    return worst
