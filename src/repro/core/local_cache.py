"""Local Cache batch answering (Section V-A).

One :class:`~repro.core.cache.PathCache` is created per cloud-shaped query
cluster (from Zigzag or SSE decomposition) and destroyed when the cluster
finishes — each local cache has the same byte budget as the Global Cache,
so the *effective* cache across the batch is ``|Q̂| x |GC|`` without ever
holding more than one cluster's cache in play.

Within a cluster, queries are answered longest-first by default
(observation 2 of Section V-A: long paths enter the cache early and short
queries hit them).  A miss falls back to A* and the resulting path is
cached if it fits.  Super-vertex matching is optional and off by default so
results stay exact.
"""

from __future__ import annotations

import random
import time
from typing import Iterable, List, Optional

from ..exceptions import ConfigurationError
from ..network.supervertex import SuperVertexMap
from ..obs import get_registry, record_cache
from ..search.astar import a_star
from ..search.common import PathResult
from ..search.dijkstra import batch_dijkstra, np_batch_active, one_to_many
from .cache import PathCache
from .clusters import Decomposition, QueryCluster
from .results import BatchAnswer

ORDERS = ("longest", "random", "given")


class LocalCacheAnswerer:
    """Answer decomposed query sets with per-cluster caches.

    Parameters
    ----------
    graph:
        The road network.
    cache_bytes:
        Byte budget of *each* local cache (the paper sets it to |GC|).
    order:
        ``"longest"`` (SLC-S / ZLC), ``"random"`` (SLC-R) or ``"given"``
        (keep decomposition order).
    super_snap_radius:
        Radius in km for super-vertex matching; 0 disables it (exact).
    seed:
        RNG seed for ``order="random"``.
    eviction:
        Cache eviction policy on overflow: ``"none"`` (the paper's Local
        Cache rejects overflowing inserts), ``"lru"`` or ``"benefit"``
        (the [30] cache-refreshing extension).
    batch_one_to_many:
        Opt-in shared-execution mode: cache misses are grouped by source
        and each group is answered by one ``one_to_many`` sweep (leftover
        singletons go through ``batch_dijkstra`` when the joint numpy
        kernel is active).  Trade-off versus the sequential default: a
        query can no longer hit a path inserted *earlier in the same
        cluster*, in exchange for answering whole groups per sweep.
    """

    def __init__(
        self,
        graph,
        cache_bytes: Optional[int] = None,
        order: str = "longest",
        super_snap_radius: float = 0.0,
        seed: int = 0,
        eviction: str = "none",
        batch_one_to_many: bool = False,
    ) -> None:
        if order not in ORDERS:
            raise ConfigurationError(f"order must be one of {ORDERS}, got {order!r}")
        self.graph = graph
        self.cache_bytes = cache_bytes
        self.order = order
        self.seed = seed
        self.eviction = eviction
        self.batch_one_to_many = batch_one_to_many
        self.super_snap_radius = super_snap_radius
        self.super_map = (
            SuperVertexMap(graph, super_snap_radius) if super_snap_radius > 0 else None
        )

    def spec(self):
        """``(kind, kwargs)`` from which a worker process can rebuild me."""
        return "local-cache", {
            "cache_bytes": self.cache_bytes,
            "order": self.order,
            "super_snap_radius": self.super_snap_radius,
            "seed": self.seed,
            "eviction": self.eviction,
            "batch_one_to_many": self.batch_one_to_many,
        }

    # ------------------------------------------------------------------
    def _ordered(self, cluster: QueryCluster, rng: random.Random) -> List:
        if self.order == "longest":
            return cluster.sorted_longest_first(self.graph).queries
        if self.order == "random":
            queries = list(cluster.queries)
            rng.shuffle(queries)
            return queries
        return list(cluster.queries)

    def answer_cluster(
        self,
        cluster: QueryCluster,
        cache: PathCache,
        rng: Optional[random.Random] = None,
    ) -> List:
        """Answer one cluster against an existing cache; returns (q, result) pairs."""
        if rng is None:
            rng = random.Random(self.seed)
        if self.batch_one_to_many:
            return self._answer_cluster_batched(cluster, cache, rng)
        out = []
        for q in self._ordered(cluster, rng):
            hit = cache.lookup(q.source, q.target)
            if hit is not None:
                out.append(
                    (
                        q,
                        PathResult(
                            q.source,
                            q.target,
                            hit.distance,
                            hit.path,
                            visited=0,
                            exact=hit.exact,
                        ),
                    )
                )
                continue
            result = a_star(self.graph, q.source, q.target)
            if result.found:
                cache.insert(result.path)
            out.append((q, result))
        return out

    def _answer_cluster_batched(
        self, cluster: QueryCluster, cache: PathCache, rng: random.Random
    ) -> List:
        """Shared-execution cluster answering (``batch_one_to_many=True``).

        Cache misses group by source: groups of two or more targets are
        answered by one ``one_to_many`` sweep each (the sweep's visited
        count is attributed to the group's first query), leftover
        singletons by one joint ``batch_dijkstra`` when the numpy batch
        kernel is active, else per-query A*.  Every found path is still
        inserted, so cache metrics stay comparable.
        """
        ordered = self._ordered(cluster, rng)
        results: List[Optional[PathResult]] = [None] * len(ordered)
        by_source: dict = {}
        for i, q in enumerate(ordered):
            hit = cache.lookup(q.source, q.target)
            if hit is not None:
                results[i] = PathResult(
                    q.source, q.target, hit.distance, hit.path,
                    visited=0, exact=hit.exact,
                )
            else:
                by_source.setdefault(q.source, []).append(i)
        singles: List[int] = []
        for source, idxs in by_source.items():
            if len(idxs) == 1:
                singles.append(idxs[0])
                continue
            targets = [ordered[i].target for i in idxs]
            found, parents, visited = one_to_many(self.graph, source, targets)
            for j, i in enumerate(idxs):
                q = ordered[i]
                distance = found.get(q.target, float("inf"))
                path: List[int] = []
                if distance != float("inf"):
                    path = [q.target]
                    v = q.target
                    while v != source:
                        v = parents[v]
                        path.append(v)
                    path.reverse()
                    cache.insert(path)
                results[i] = PathResult(
                    q.source, q.target, distance, path,
                    visited=visited if j == 0 else 0,
                )
        if singles:
            pairs = [(ordered[i].source, ordered[i].target) for i in singles]
            if np_batch_active(self.graph, len(pairs)):
                answered = batch_dijkstra(self.graph, pairs)
            else:
                answered = [a_star(self.graph, s, t) for s, t in pairs]
            for i, result in zip(singles, answered):
                if result.found:
                    cache.insert(result.path)
                results[i] = result
        out = []
        for q, result in zip(ordered, results):
            assert result is not None
            out.append((q, result))
        return out

    def answer(self, decomposition: Decomposition, method: Optional[str] = None) -> BatchAnswer:
        """Answer every cluster of ``decomposition`` with a fresh local cache."""
        label = method or f"local-cache[{self.order}]"
        batch = BatchAnswer(
            method=label,
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
        )
        start = time.perf_counter()
        rng = random.Random(self.seed)
        with get_registry().span("answer", method=label):
            for cluster in decomposition:
                cache = PathCache(
                    self.graph, self.cache_bytes, self.super_map, eviction=self.eviction
                )
                pairs = self.answer_cluster(cluster, cache, rng)
                batch.answers.extend(pairs)
                batch.visited += sum(r.visited for _, r in pairs)
                batch.cache_hits += cache.hits
                batch.cache_misses += cache.misses
                batch.cache_bytes += cache.size_bytes
                if len(cluster) == 1:
                    batch.singleton_queries += 1
                if cache.size_bytes > batch.max_cluster_cache_bytes:
                    batch.max_cluster_cache_bytes = cache.size_bytes
                record_cache(
                    cache.hits,
                    cache.misses,
                    evictions=cache.evictions,
                    rejected_inserts=cache.rejected_inserts,
                    subpath_hits=cache.subpath_hits,
                    bytes_built=cache.size_bytes,
                )
                # The per-cluster cache is conceptually destroyed here;
                # dropping the reference is exactly that.
        batch.answer_seconds = time.perf_counter() - start
        return batch
