"""Cluster and decomposition result types shared by all three methods.

Definition 2 requires a decomposition to be a *partition* of the query set:
subsets are disjoint and their union is ``Q``.  :class:`Decomposition`
enforces exactly that via :meth:`Decomposition.validate`, which every
decomposer runs before returning (catching bookkeeping bugs early is worth
one O(|Q|) pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..exceptions import DecompositionError
from ..queries.query import Query, QuerySet

Cell = Tuple[int, int]


@dataclass
class QueryCluster:
    """One query subset ``Q_i`` produced by a decomposition.

    Attributes
    ----------
    queries:
        The member queries, in the order the answering algorithm should
        process them (the paper stresses intra-subset order matters).
    kind:
        ``"cloud"`` for cache-suited clusters (Zigzag / SSE) or
        ``"dumbbell"`` for R2R-suited clusters (Co-Clustering).
    direction:
        Representative direction in the paper's [0, 45] reference scale
        (SSE clusters) — ``None`` when not applicable.
    covered_cells:
        Grid cells of the estimated search space (SSE clusters).
    center:
        The representative query ``C_i`` (Co-Clustering) or the seed query.
    radius:
        Cluster radius ``r*`` on both endpoints (Co-Clustering).
    """

    queries: List[Query] = field(default_factory=list)
    kind: str = "cloud"
    direction: Optional[float] = None
    covered_cells: Set[Cell] = field(default_factory=set)
    center: Optional[Query] = None
    radius: Optional[float] = None

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    @property
    def sources(self) -> Set[int]:
        return {q.source for q in self.queries}

    @property
    def targets(self) -> Set[int]:
        return {q.target for q in self.queries}

    def add(self, query: Query) -> None:
        self.queries.append(query)

    def as_query_set(self) -> QuerySet:
        return QuerySet(self.queries)

    def sorted_longest_first(self, graph) -> "QueryCluster":
        """Copy with queries ordered by descending Euclidean length.

        The Local Cache answers longest queries first (Section V-A2,
        observation 2) so long paths enter the cache before the short
        queries that can hit them.
        """
        ordered = sorted(
            self.queries,
            key=lambda q: graph.euclidean(q.source, q.target),
            reverse=True,
        )
        return QueryCluster(
            queries=ordered,
            kind=self.kind,
            direction=self.direction,
            covered_cells=set(self.covered_cells),
            center=self.center,
            radius=self.radius,
        )


@dataclass
class Decomposition:
    """The output ``{Q_i}`` of a decomposition method, plus provenance."""

    clusters: List[QueryCluster]
    method: str
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    @property
    def num_queries(self) -> int:
        return sum(len(c) for c in self.clusters)

    @property
    def cluster_sizes(self) -> List[int]:
        return [len(c) for c in self.clusters]

    def validate(self, original: QuerySet) -> "Decomposition":
        """Assert the partition property of Definition 2 against ``original``.

        Multiplicity-aware: duplicated queries in the input must appear the
        same number of times across all clusters.
        """
        expected: Dict[Query, int] = {}
        for q in original:
            expected[q] = expected.get(q, 0) + 1
        seen: Dict[Query, int] = {}
        for cluster in self.clusters:
            for q in cluster:
                seen[q] = seen.get(q, 0) + 1
        if seen != expected:
            missing = {q: c for q, c in expected.items() if seen.get(q, 0) < c}
            extra = {q: c for q, c in seen.items() if expected.get(q, 0) < c}
            raise DecompositionError(
                f"{self.method}: not a partition "
                f"(missing={len(missing)}, duplicated/foreign={len(extra)})"
            )
        return self

    def summary(self) -> Dict[str, float]:
        """Small stats dict used by reports and the CLI."""
        sizes = self.cluster_sizes
        return {
            "clusters": float(len(sizes)),
            "queries": float(sum(sizes)),
            "max_cluster": float(max(sizes)) if sizes else 0.0,
            "mean_cluster": (sum(sizes) / len(sizes)) if sizes else 0.0,
            "singletons": float(sum(1 for s in sizes if s == 1)),
            "elapsed_seconds": self.elapsed_seconds,
        }
