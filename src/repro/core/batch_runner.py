"""High-level facade tying decomposition and answering together.

:class:`BatchProcessor` exposes every pipeline the paper evaluates under
the names used in Section VI:

===========  =================================  ==============================
name         decomposition                      answering
===========  =================================  ==============================
``astar``    none                               per-query A*
``dijkstra`` none                               per-query Dijkstra
``gc``       none (20 % log builds the cache)   Global Cache [29]
``zlc``      Zigzag                             Local Cache, longest-first
``slc-s``    Search-Space Estimation            Local Cache, longest-first
``slc-r``    Search-Space Estimation            Local Cache, random order
``r2r-s``    Co-Clustering                      R2R, longest representative
``r2r-r``    Co-Clustering                      R2R, random representative
``k-path``   Co-Clustering                      k-Path [21] (k = 1)
``zigzag-petal``  per-source petals             generalized A* [34]
``group``    Co-Clustering                      Group [25]
===========  =================================  ==============================
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..exceptions import ConfigurationError
from ..queries.query import QuerySet
from .coclustering import CoClusteringDecomposer
from .local_cache import LocalCacheAnswerer
from .r2r import RegionToRegionAnswerer
from .results import BatchAnswer
from .search_space import SearchSpaceDecomposer
from .zigzag import ZigzagDecomposer

METHODS = (
    "astar",
    "dijkstra",
    "gc",
    "zlc",
    "slc-s",
    "slc-r",
    "r2r-s",
    "r2r-r",
    "k-path",
    "zigzag-petal",
    "group",
)


class BatchProcessor:
    """One-stop runner for every batch method in the paper.

    Parameters
    ----------
    graph:
        The road network.
    cache_bytes:
        Per-cache byte budget for the local-cache methods; when ``None``
        it is taken from a Global Cache built on the same batch (the
        paper's |GC| protocol).
    eta:
        Error bound for co-clustering and R2R.
    delta:
        Angle threshold for Zigzag / SSE.
    seed:
        Seed for randomised variants.
    super_snap_radius:
        Super-vertex snap radius for the local caches (0 = exact).
    workers:
        Worker processes for answering.  ``workers > 1`` routes the
        deterministic decomposed pipelines (``zlc``, ``slc-s``, ``r2r-s``)
        through :class:`repro.parallel.ParallelBatchEngine`, one cluster
        per work unit; the merged answer is identical to the serial run.
        Methods whose processing order is randomised across clusters
        (``slc-r``, ``r2r-r``) and the undecomposed baselines stay
        single-process.
    frozen:
        When true (default) the graph is frozen to a CSR snapshot before
        answering, so every search runs the flat-array kernels and worker
        pools share the snapshot zero-copy (fork: copy-on-write; spawn:
        shared memory).  Answers are bit-identical either way; set false
        to force the mutable dict-graph paths.
    """

    #: Methods that ``workers > 1`` actually parallelises.
    PARALLEL_METHODS = ("zlc", "slc-s", "r2r-s")

    def __init__(
        self,
        graph,
        cache_bytes: Optional[int] = None,
        eta: float = 0.05,
        delta: float = 30.0,
        seed: int = 0,
        super_snap_radius: float = 0.0,
        log_fraction: float = 0.2,
        eviction: str = "none",
        workers: int = 1,
        engine_options: Optional[dict] = None,
        frozen: bool = True,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        self.graph = graph
        self.cache_bytes = cache_bytes
        self.eta = eta
        self.delta = delta
        self.seed = seed
        self.super_snap_radius = super_snap_radius
        self.log_fraction = log_fraction
        self.eviction = eviction
        self.workers = workers
        self.frozen = frozen
        #: Extra :class:`repro.parallel.ParallelBatchEngine` kwargs
        #: (retry_policy, fault_plan, unit_timeout, breaker...).
        self.engine_options = dict(engine_options or {})

    # ------------------------------------------------------------------
    def process(self, queries: QuerySet, method: str) -> BatchAnswer:
        """Run one named pipeline over ``queries`` and return its answer."""
        runner = self._runners().get(method)
        if runner is None:
            raise ConfigurationError(f"unknown method {method!r}; choose from {METHODS}")
        if self.frozen:
            # Cached by graph.version, so repeated process() calls on the
            # same snapshot freeze exactly once.
            self.graph.freeze()
        return runner(queries)

    def process_timed(
        self,
        arrivals,
        method: str = "slc-s",
        window_seconds: float = 1.0,
    ) -> List[BatchAnswer]:
        """Offline replay of a stamped arrival stream, window by window.

        Groups the stream into fixed scheduling windows (Definition 1)
        with :func:`~repro.queries.arrivals.window_batches` and runs each
        through :meth:`process`.  This is the batch-mode oracle the
        streaming service is differentially tested against: for exact
        methods the per-query distances must match the online run no
        matter how the micro-batcher sliced the stream.
        """
        from ..queries.arrivals import window_batches

        return [
            self.process(batch, method)
            for batch in window_batches(arrivals, window_seconds)
            if len(batch)
        ]

    def _runners(self) -> Dict[str, Callable[[QuerySet], BatchAnswer]]:
        # Imported here rather than at module scope: the baselines package
        # itself imports repro.core, so a top-level import would be circular.
        from ..baselines.one_by_one import OneByOneAnswerer
        from ..baselines.zigzag_petal import ZigzagPetalAnswerer

        return {
            "astar": lambda q: OneByOneAnswerer(self.graph, "astar").answer(q, "astar"),
            "dijkstra": lambda q: OneByOneAnswerer(self.graph, "dijkstra").answer(
                q, "dijkstra"
            ),
            "gc": self._run_gc,
            "zlc": lambda q: self._run_local_cache(q, "zigzag", "longest", "zlc"),
            "slc-s": lambda q: self._run_local_cache(q, "sse", "longest", "slc-s"),
            "slc-r": lambda q: self._run_local_cache(q, "sse", "random", "slc-r"),
            "r2r-s": lambda q: self._run_r2r(q, "longest", "r2r-s"),
            "r2r-r": lambda q: self._run_r2r(q, "random", "r2r-r"),
            "k-path": self._run_kpath,
            "zigzag-petal": lambda q: ZigzagPetalAnswerer(self.graph, self.delta).answer(q),
            "group": self._run_group,
        }

    # ------------------------------------------------------------------
    def _resolve_cache_bytes(self, queries: QuerySet) -> int:
        """The paper's |GC| protocol: size the local caches like a GC build."""
        from ..baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream

        if self.cache_bytes is not None:
            return self.cache_bytes
        log, _ = split_log_and_stream(queries, self.log_fraction)
        gc = GlobalCacheAnswerer(self.graph)
        gc.build(log)
        return max(gc.cache_bytes, 1)

    def _decomposer(self, kind: str):
        if kind == "zigzag":
            return ZigzagDecomposer(self.graph, delta=self.delta)
        if kind == "sse":
            return SearchSpaceDecomposer(self.graph, delta=self.delta)
        if kind == "cocluster":
            return CoClusteringDecomposer(self.graph, eta=self.eta)
        raise ConfigurationError(f"unknown decomposer kind {kind!r}")

    def _run_local_cache(self, queries: QuerySet, kind: str, order: str, label: str) -> BatchAnswer:
        cache_bytes = self._resolve_cache_bytes(queries)
        decomposition = self._decomposer(kind).decompose(queries)
        answerer = LocalCacheAnswerer(
            self.graph,
            cache_bytes=cache_bytes,
            order=order,
            super_snap_radius=self.super_snap_radius,
            seed=self.seed,
            eviction=self.eviction,
        )
        if self.workers > 1 and label in self.PARALLEL_METHODS:
            return self._run_parallel(answerer, decomposition, label)
        return answerer.answer(decomposition, method=label)

    def _run_r2r(self, queries: QuerySet, selection: str, label: str) -> BatchAnswer:
        decomposition = self._decomposer("cocluster").decompose(queries)
        answerer = RegionToRegionAnswerer(
            self.graph, eta=self.eta, selection=selection, seed=self.seed
        )
        if self.workers > 1 and label in self.PARALLEL_METHODS:
            return self._run_parallel(answerer, decomposition, label)
        return answerer.answer(decomposition, method=label)

    def _run_parallel(self, answerer, decomposition, label: str) -> BatchAnswer:
        # Imported lazily: repro.parallel pulls the answerers in, so a
        # module-scope import would be circular.
        from ..parallel import ParallelBatchEngine

        options = dict(self.engine_options)
        options.setdefault("shared_graph", self.frozen)
        with ParallelBatchEngine.from_answerer(
            answerer, workers=self.workers, **options
        ) as engine:
            return engine.execute(decomposition, method=label).answer

    def _run_kpath(self, queries: QuerySet) -> BatchAnswer:
        from ..baselines.kpath import KPathAnswerer

        decomposition = self._decomposer("cocluster").decompose(queries)
        return KPathAnswerer(self.graph).answer(decomposition)

    def _run_group(self, queries: QuerySet) -> BatchAnswer:
        from ..baselines.group import GroupAnswerer

        decomposition = self._decomposer("cocluster").decompose(queries)
        return GroupAnswerer(self.graph).answer(decomposition)

    def _run_gc(self, queries: QuerySet) -> BatchAnswer:
        from ..baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream

        log, stream = split_log_and_stream(queries, self.log_fraction)
        gc = GlobalCacheAnswerer(self.graph)
        gc.build(log)
        answer = gc.answer(stream, method="gc")
        answer.decompose_seconds = gc.build_seconds
        return answer
