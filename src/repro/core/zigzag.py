"""1-N Zigzag decomposition (Section IV-A).

Phase 1 — *AD decomposition*: every source's target set (and symmetrically
every target's source set) is split into angle/distance petals.  The
farthest unassigned endpoint seeds a petal whose axis is its direction; all
endpoints within +/- delta/2 of the axis join, and the process repeats.

Phase 2 — *zigzag merge*: the 1-N and N-1 petals are visited in descending
size order (max-heap).  A popped petal seeds a new query subset; for each of
its queries the counterpart petal on the other side (the N-1 petal of the
target for a 1-N seed, and vice versa) is pulled in — the "zigzag" between
the source side and the target side.  Merged queries are removed from every
remaining petal through an inverted query->petal index, and petal sizes are
maintained lazily in the heap.

Afterwards, leftover 1-1 subsets whose source falls in the convex hull of a
bigger subset's sources *and* whose target falls in the hull of its targets
are absorbed into that subset; a grid prefilter keeps this cheap
(Section IV-A2, last paragraph).
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import ConfigurationError
from ..network.convexhull import convex_hull, hull_bounding_box, point_in_hull
from ..obs import get_registry, record_decomposition
from ..network.spatial import angular_difference, bearing_angle
from ..queries.query import Query, QuerySet
from .clusters import Decomposition, QueryCluster

#: Default petal angle threshold; the paper reports 30 degrees is already
#: large enough to deteriorate batch performance, so petals stay below it.
DEFAULT_DELTA = 30.0


def ad_decompose(
    graph,
    anchor: int,
    queries: Sequence[Query],
    delta: float,
    anchor_is_source: bool,
) -> List[List[Query]]:
    """Angle/Distance petal decomposition of one 1-N (or N-1) query set.

    ``anchor`` is the shared endpoint; the free endpoints are clustered.
    Returns the petals as query lists; every input query lands in exactly
    one petal.
    """
    if delta <= 0 or delta > 360:
        raise ConfigurationError(f"delta must be in (0, 360], got {delta}")
    ax, ay = graph.coord(anchor)

    def free_endpoint(q: Query) -> int:
        return q.target if anchor_is_source else q.source

    # Sort by distance descending once: the farthest unassigned endpoint is
    # always the next seed, giving the O(n log n) bound of Section IV-A1.
    order = sorted(
        queries,
        key=lambda q: graph.euclidean(anchor, free_endpoint(q)),
        reverse=True,
    )
    bearings: Dict[Query, float] = {}
    for q in order:
        v = free_endpoint(q)
        bearings[q] = bearing_angle(graph.xs[v] - ax, graph.ys[v] - ay)

    assigned: Set[Query] = set()
    petals: List[List[Query]] = []
    half = delta / 2.0
    for seed in order:
        if seed in assigned:
            continue
        axis = bearings[seed]
        petal = []
        for q in order:
            if q in assigned:
                continue
            if angular_difference(bearings[q], axis) <= half:
                petal.append(q)
                assigned.add(q)
        petals.append(petal)
    return petals


class ZigzagDecomposer:
    """The full two-phase Zigzag decomposition.

    Parameters
    ----------
    graph:
        Road network supplying coordinates.
    delta:
        Petal angle threshold in degrees (default 30).
    absorb_singletons:
        Whether to run the convex-hull absorption of 1-1 subsets.
    grid:
        Optional prebuilt :class:`~repro.network.grid.GridIndex` reused for
        the absorption prefilter.
    """

    method = "zigzag"

    def __init__(
        self,
        graph,
        delta: float = DEFAULT_DELTA,
        absorb_singletons: bool = True,
        grid=None,
    ) -> None:
        if delta <= 0:
            raise ConfigurationError("delta must be positive")
        self.graph = graph
        self.delta = delta
        self.absorb_singletons = absorb_singletons
        self._grid = grid

    # ------------------------------------------------------------------
    def decompose(self, queries: QuerySet) -> Decomposition:
        """Run both phases and return a validated partition of ``queries``."""
        start = time.perf_counter()
        with get_registry().span("decompose", method=self.method, queries=len(queries)):
            distinct = queries.deduplicated()
            petals = self._build_petals(distinct)
            clusters = self._zigzag_merge(distinct, petals)
            if self.absorb_singletons:
                clusters = self._absorb_singletons(clusters)
            clusters = self._restore_multiplicity(queries, clusters)
        elapsed = time.perf_counter() - start
        decomposition = Decomposition(clusters, self.method, elapsed).validate(queries)
        record_decomposition(decomposition)
        return decomposition

    # ------------------------------------------------------------------
    # Phase 1
    # ------------------------------------------------------------------
    def _build_petals(self, queries: QuerySet) -> List[List[Query]]:
        petals: List[List[Query]] = []
        for source, group in queries.by_source().items():
            petals.extend(
                ad_decompose(self.graph, source, group, self.delta, anchor_is_source=True)
            )
        for target, group in queries.by_target().items():
            petals.extend(
                ad_decompose(self.graph, target, group, self.delta, anchor_is_source=False)
            )
        return petals

    # ------------------------------------------------------------------
    # Phase 2
    # ------------------------------------------------------------------
    def _zigzag_merge(
        self, queries: QuerySet, petals: List[List[Query]]
    ) -> List[QueryCluster]:
        # Inverted index: query -> ids of the petals containing it (one on
        # the source side, one on the target side).
        membership: Dict[Query, List[int]] = {q: [] for q in queries}
        for pid, petal in enumerate(petals):
            for q in petal:
                membership[q].append(pid)

        assigned: Set[Query] = set()
        live_size = [len(p) for p in petals]
        heap: List[Tuple[int, int]] = [
            (-size, pid) for pid, size in enumerate(live_size) if size
        ]
        heapq.heapify(heap)
        clusters: List[QueryCluster] = []

        def current_size(pid: int) -> int:
            return sum(1 for q in petals[pid] if q not in assigned)

        while heap:
            neg_size, pid = heapq.heappop(heap)
            actual = current_size(pid)
            if actual == 0:
                continue
            if actual != -neg_size:
                # Stale entry: re-queue with the true size (lazy max-heap).
                heapq.heappush(heap, (-actual, pid))
                continue
            cluster = QueryCluster(kind="cloud")
            frontier = [q for q in petals[pid] if q not in assigned]
            for q in frontier:
                assigned.add(q)
                cluster.add(q)
            # Zigzag step: pull in each member's counterpart petal.
            for q in frontier:
                for other_pid in membership[q]:
                    if other_pid == pid:
                        continue
                    for other in petals[other_pid]:
                        if other not in assigned:
                            assigned.add(other)
                            cluster.add(other)
            cluster.center = cluster.queries[0]
            clusters.append(cluster)
        return clusters

    # ------------------------------------------------------------------
    # 1-1 absorption
    # ------------------------------------------------------------------
    def _absorb_singletons(self, clusters: List[QueryCluster]) -> List[QueryCluster]:
        graph = self.graph
        multi = [c for c in clusters if len(c) > 1]
        singles = [c for c in clusters if len(c) == 1]
        if not multi or not singles:
            return clusters
        hulls = []
        for cluster in multi:
            src_pts = [graph.coord(v) for v in cluster.sources]
            tgt_pts = [graph.coord(v) for v in cluster.targets]
            src_hull = convex_hull(src_pts)
            tgt_hull = convex_hull(tgt_pts)
            hulls.append(
                (
                    cluster,
                    src_hull,
                    tgt_hull,
                    hull_bounding_box(src_hull),
                    hull_bounding_box(tgt_hull),
                )
            )
        remaining: List[QueryCluster] = []
        for single in singles:
            q = single.queries[0]
            sp = graph.coord(q.source)
            tp = graph.coord(q.target)
            host = None
            for cluster, src_hull, tgt_hull, src_box, tgt_box in hulls:
                if not _in_box(sp, src_box) or not _in_box(tp, tgt_box):
                    continue  # grid-style prefilter: cheap reject first
                if point_in_hull(sp, src_hull) and point_in_hull(tp, tgt_hull):
                    host = cluster
                    break
            if host is not None:
                host.add(q)
            else:
                remaining.append(single)
        return multi + remaining

    # ------------------------------------------------------------------
    @staticmethod
    def _restore_multiplicity(
        original: QuerySet, clusters: List[QueryCluster]
    ) -> List[QueryCluster]:
        """Re-inject duplicate queries into the cluster holding their key."""
        counts: Dict[Query, int] = {}
        for q in original:
            counts[q] = counts.get(q, 0) + 1
        for cluster in clusters:
            extras: List[Query] = []
            for q in cluster.queries:
                for _ in range(counts.get(q, 1) - 1):
                    extras.append(q)
            cluster.queries.extend(extras)
        return clusters


def _in_box(point: Tuple[float, float], box: Tuple[float, float, float, float]) -> bool:
    return box[0] <= point[0] <= box[2] and box[1] <= point[1] <= box[3]
