"""Coherence-Aware Co-Clustering decomposition (Section IV-C, Algorithm 1).

Two-way leader clustering: the first query assigned to a cluster becomes its
centre ``C_i``; a query ``q`` joins the first cluster whose centre is close
on *both* ends — ``d_euc(q.s, C_i.s) <= r_i*`` and
``d_euc(q.t, C_i.t) <= r_i*``.  The radius is not a tuning knob: it is
derived from the eta-approximation bound of Section IV-C2,

    r_i* = 1.2 * eta * d_euc(C_i.s, C_i.t) / (8 + 4 eta),

so the R2R answering algorithm downstream can honour a global error bound.
Long-centre clusters get proportionally wider radii, matching the intuition
that far-apart regions tolerate more endpoint spread.

Algorithm 1 scans clusters linearly; an optional grid over cluster centres
accelerates the membership test to the nearby-centre candidates only (the
result is identical because candidate order is preserved).
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from ..obs import get_registry, record_decomposition
from ..queries.query import Query, QuerySet
from .clusters import Decomposition, QueryCluster
from .wspd import DEFAULT_DETOUR_RATIO, cocluster_radius

Cell = Tuple[int, int]


class CoClusteringDecomposer:
    """Algorithm 1 with the eta-derived radius.

    Parameters
    ----------
    graph:
        Road network supplying coordinates.
    eta:
        Global relative error budget of the downstream R2R algorithm
        (paper uses 0.05).
    detour_ratio:
        Shortest-path / Euclidean calibration constant (paper: 1.2).
    accelerate:
        Use a uniform hash over cluster centres instead of Algorithm 1's
        linear scan.  Both produce identical clusterings.
    """

    method = "co-clustering"

    def __init__(
        self,
        graph,
        eta: float = 0.05,
        detour_ratio: float = DEFAULT_DETOUR_RATIO,
        accelerate: bool = True,
    ) -> None:
        if not 0.0 < eta < 1.0:
            raise ConfigurationError(f"eta must be in (0, 1), got {eta}")
        self.graph = graph
        self.eta = eta
        self.detour_ratio = detour_ratio
        self.accelerate = accelerate

    def radius_for(self, query: Query) -> float:
        """The cluster radius ``r*`` a cluster centred at ``query`` gets."""
        d_euc = self.graph.euclidean(query.source, query.target)
        return cocluster_radius(self.eta, d_euc, self.detour_ratio)

    # ------------------------------------------------------------------
    def decompose(self, queries: QuerySet) -> Decomposition:
        start = time.perf_counter()
        with get_registry().span("decompose", method=self.method, queries=len(queries)):
            if self.accelerate:
                clusters = self._decompose_accelerated(queries)
            else:
                clusters = self._decompose_linear(queries)
        elapsed = time.perf_counter() - start
        decomposition = Decomposition(clusters, self.method, elapsed).validate(queries)
        record_decomposition(decomposition)
        return decomposition

    # ------------------------------------------------------------------
    def _decompose_linear(self, queries: QuerySet) -> List[QueryCluster]:
        """Verbatim Algorithm 1: scan every existing cluster in order."""
        graph = self.graph
        clusters: List[QueryCluster] = []
        for q in queries:
            placed = False
            for cluster in clusters:
                center = cluster.center
                assert center is not None and cluster.radius is not None
                if (
                    graph.euclidean(q.source, center.source) <= cluster.radius
                    and graph.euclidean(q.target, center.target) <= cluster.radius
                ):
                    cluster.add(q)
                    placed = True
                    break
            if not placed:
                clusters.append(self._new_cluster(q))
        return clusters

    def _decompose_accelerated(self, queries: QuerySet) -> List[QueryCluster]:
        """Same semantics with a centre grid pruning non-nearby clusters.

        Buckets cluster ids by the source-centre cell in a uniform hash whose
        cell size adapts to the largest radius seen so far; candidate ids are
        checked in creation order, matching Algorithm 1's first-fit rule.
        """
        graph = self.graph
        clusters: List[QueryCluster] = []
        buckets: Dict[Cell, List[int]] = {}
        cell_size = [1.0]  # mutable: grows to max radius; rebuilt on growth

        def cell_of(x: float, y: float) -> Cell:
            size = cell_size[0]
            return (int(math.floor(x / size)), int(math.floor(y / size)))

        def rebuild(new_size: float) -> None:
            cell_size[0] = new_size
            buckets.clear()
            for cid, cluster in enumerate(clusters):
                center = cluster.center
                assert center is not None
                buckets.setdefault(
                    cell_of(graph.xs[center.source], graph.ys[center.source]), []
                ).append(cid)

        for q in queries:
            qx, qy = graph.xs[q.source], graph.ys[q.source]
            ci, cj = cell_of(qx, qy)
            candidates: List[int] = []
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    candidates.extend(buckets.get((ci + di, cj + dj), ()))
            placed = False
            for cid in sorted(candidates):  # creation order = Algorithm 1 order
                cluster = clusters[cid]
                center = cluster.center
                assert center is not None and cluster.radius is not None
                if (
                    graph.euclidean(q.source, center.source) <= cluster.radius
                    and graph.euclidean(q.target, center.target) <= cluster.radius
                ):
                    cluster.add(q)
                    placed = True
                    break
            if not placed:
                cluster = self._new_cluster(q)
                clusters.append(cluster)
                if cluster.radius is not None and cluster.radius > cell_size[0]:
                    rebuild(cluster.radius)
                else:
                    buckets.setdefault(cell_of(qx, qy), []).append(len(clusters) - 1)
        return clusters

    def _new_cluster(self, q: Query) -> QueryCluster:
        return QueryCluster(
            queries=[q],
            kind="dumbbell",
            center=q,
            radius=self.radius_for(q),
        )
