"""The path-cache structure of Section V-A1 (Figure 5).

A cache holds shortest paths.  Answering a query ``(s, t)`` from the cache
requires (1) deciding whether some cached path contains both endpoints with
``s`` before ``t`` — done with an inverted list from vertex to the ids of
the paths through it — and (2) extracting the sub-path, done here with
per-path position maps and weight prefix sums (equivalent to the paper's
subgraph walk along the cached path, but O(1) for the distance and O(k) for
the k-vertex sub-path, never re-searching).

The sub-path of a shortest path is itself a shortest path, so every cache
hit is exact — unless super-vertex matching (Section V-A2) is enabled, in
which case an endpoint may be represented by a co-located twin on the
cached path and the answer is exact only up to the snap radius; such
results are flagged ``exact=False``.

Capacity is accounted in bytes (8 per path vertex plus a fixed per-path
overhead) so cache-size sweeps can be expressed in the paper's MB units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import CacheError, GraphError
from ..network.supervertex import SuperVertexMap
from ..search.common import PathResult

#: Bytes charged per path vertex (one 64-bit id) and per path record.
BYTES_PER_VERTEX = 8
BYTES_PER_PATH = 64


def path_size_bytes(path: Sequence[int]) -> int:
    """Accounting size of one cached path."""
    return BYTES_PER_PATH + BYTES_PER_VERTEX * len(path)


@dataclass
class CacheHit:
    """A successful cache lookup."""

    distance: float
    path: List[int]
    path_id: int
    exact: bool


@dataclass
class _Entry:
    path: List[int]
    prefix: List[float]  # prefix[i] = distance from path[0] to path[i]
    pos: Dict[int, int]  # vertex -> index on path (first occurrence)


class PathCache:
    """Bounded path cache with inverted vertex lists (Figure 5).

    Parameters
    ----------
    graph:
        The road network (supplies edge weights for prefix sums).
    capacity_bytes:
        Maximum total accounting size; inserts that would exceed it are
        rejected (the Local Cache never evicts inside one cluster).
        ``None`` means unbounded (used by Global Cache construction).
    super_map:
        Optional :class:`SuperVertexMap`; when given, hit testing matches
        endpoints up to co-located super vertices.
    """

    #: Supported eviction policies when an insert does not fit:
    #: ``"none"`` rejects the insert (the paper's Local Cache behaviour),
    #: ``"lru"`` evicts the least-recently-hit path, and ``"benefit"``
    #: evicts the path with the lowest hits-per-byte score — the
    #: cache-refreshing direction of Thomsen et al. [30], provided as the
    #: extension feature DESIGN.md lists.
    EVICTION_POLICIES = ("none", "lru", "benefit")

    def __init__(
        self,
        graph,
        capacity_bytes: Optional[int] = None,
        super_map: Optional[SuperVertexMap] = None,
        eviction: str = "none",
    ) -> None:
        if capacity_bytes is not None and capacity_bytes < 0:
            raise CacheError("capacity_bytes must be non-negative")
        if eviction not in self.EVICTION_POLICIES:
            raise CacheError(
                f"eviction must be one of {self.EVICTION_POLICIES}, got {eviction!r}"
            )
        self.graph = graph
        self.capacity_bytes = capacity_bytes
        self.super_map = super_map
        self.eviction = eviction
        self._entries: Dict[int, _Entry] = {}
        self._inverted: Dict[int, List[int]] = {}  # key -> path ids
        self._next_id = 0
        self._clock = 0  # logical time for LRU
        self._last_used: Dict[int, int] = {}
        self._hit_count: Dict[int, int] = {}
        self.size_bytes = 0
        self.hits = 0
        self.misses = 0
        #: Hits answered from a *proper* sub-path of a cached path (the
        #: Figure 5 extraction), as opposed to returning a whole path.
        self.subpath_hits = 0
        self.rejected_inserts = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _key(self, vertex: int) -> int:
        if self.super_map is not None:
            return self.super_map.super_of(vertex)
        return vertex

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def num_paths(self) -> int:
        return len(self._entries)

    def would_fit(self, path: Sequence[int]) -> bool:
        if self.capacity_bytes is None:
            return True
        return self.size_bytes + path_size_bytes(path) <= self.capacity_bytes

    # ------------------------------------------------------------------
    def insert(self, path: Sequence[int]) -> Optional[int]:
        """Cache a path; returns its id, or ``None`` if it did not fit.

        The path must be a walk on the graph (consecutive edges must exist);
        a :class:`CacheError` is raised otherwise because caching a
        non-path would poison every sub-path answer derived from it.
        """
        if len(path) < 2:
            return None
        if not self.would_fit(path):
            if self.eviction == "none" or not self._make_room(path_size_bytes(path)):
                self.rejected_inserts += 1
                return None
        # Graph-agnostic: RoadNetwork and frozen CSRGraph both expose
        # path_prefix_weights, so caches work in shm-attached workers too.
        try:
            prefix = self.graph.path_prefix_weights(path)
        except GraphError as exc:
            raise CacheError(f"not a walk on the graph: {exc}") from None
        pos: Dict[int, int] = {}
        for i, v in enumerate(path):
            pos.setdefault(v, i)
        pid = self._next_id
        self._next_id += 1
        self._entries[pid] = _Entry(list(path), prefix, pos)
        self.size_bytes += path_size_bytes(path)
        self._clock += 1
        self._last_used[pid] = self._clock
        self._hit_count[pid] = 0
        for v in pos:  # one inverted-list entry per distinct vertex
            self._inverted.setdefault(self._key(v), []).append(pid)
        return pid

    # ------------------------------------------------------------------
    def _make_room(self, needed_bytes: int) -> bool:
        """Evict per the configured policy until ``needed_bytes`` fits.

        Returns ``False`` when the cache cannot possibly hold the path
        (capacity smaller than the path itself).
        """
        assert self.capacity_bytes is not None
        if needed_bytes > self.capacity_bytes:
            return False
        while self.size_bytes + needed_bytes > self.capacity_bytes and self._entries:
            if self.eviction == "lru":
                victim = min(self._entries, key=lambda pid: self._last_used[pid])
            else:  # benefit: fewest hits per byte, oldest breaks ties
                victim = min(
                    self._entries,
                    key=lambda pid: (
                        self._hit_count[pid] / path_size_bytes(self._entries[pid].path),
                        self._last_used[pid],
                    ),
                )
            self._remove(victim)
            self.evictions += 1
        return self.size_bytes + needed_bytes <= self.capacity_bytes

    def _remove(self, pid: int) -> None:
        entry = self._entries.pop(pid)
        self.size_bytes -= path_size_bytes(entry.path)
        self._last_used.pop(pid, None)
        self._hit_count.pop(pid, None)
        for v in entry.pos:
            key = self._key(v)
            ids = self._inverted.get(key)
            if ids is not None:
                try:
                    ids.remove(pid)
                except ValueError:
                    pass
                if not ids:
                    del self._inverted[key]

    # ------------------------------------------------------------------
    def lookup(self, source: int, target: int) -> Optional[CacheHit]:
        """Answer ``(source, target)`` from the cache, or ``None`` on miss.

        Finds a common path id in the endpoints' inverted lists with the
        source positioned before the target; among the qualifying paths the
        one with the smallest sub-path distance is returned (several cached
        paths may cover the pair).
        """
        lists_s = self._inverted.get(self._key(source))
        lists_t = self._inverted.get(self._key(target))
        if not lists_s or not lists_t:
            self.misses += 1
            return None
        common = set(lists_s) & set(lists_t)
        best: Optional[CacheHit] = None
        for pid in common:
            entry = self._entries[pid]
            pos_s, exact_s = self._position(entry, source)
            pos_t, exact_t = self._position(entry, target)
            if pos_s is None or pos_t is None or pos_s >= pos_t:
                continue
            distance = entry.prefix[pos_t] - entry.prefix[pos_s]
            if best is None or distance < best.distance:
                best = CacheHit(
                    distance=distance,
                    path=entry.path[pos_s : pos_t + 1],
                    path_id=pid,
                    exact=exact_s and exact_t,
                )
        if best is None:
            self.misses += 1
        else:
            self.hits += 1
            if len(best.path) < len(self._entries[best.path_id].path):
                self.subpath_hits += 1
            self._clock += 1
            self._last_used[best.path_id] = self._clock
            self._hit_count[best.path_id] = self._hit_count.get(best.path_id, 0) + 1
        return best

    def _position(self, entry: _Entry, vertex: int) -> Tuple[Optional[int], bool]:
        """Index of ``vertex`` on a path, exactly or via its super vertex."""
        idx = entry.pos.get(vertex)
        if idx is not None:
            return idx, True
        if self.super_map is None:
            return None, True
        wanted = self.super_map.super_of(vertex)
        for member in self.super_map.members(wanted):
            idx = entry.pos.get(member)
            if idx is not None:
                return idx, False
        return None, False

    # ------------------------------------------------------------------
    def contains_pair(self, source: int, target: int) -> bool:
        """Hit test without touching the hit/miss counters."""
        hits, misses, subpath = self.hits, self.misses, self.subpath_hits
        try:
            return self.lookup(source, target) is not None
        finally:
            self.hits, self.misses, self.subpath_hits = hits, misses, subpath

    def clear(self) -> None:
        """Drop every cached path (weights changed / cluster finished)."""
        self._entries.clear()
        self._inverted.clear()
        self._last_used.clear()
        self._hit_count.clear()
        self.size_bytes = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def paths(self) -> List[List[int]]:
        """Snapshot of all cached paths (tests and diagnostics)."""
        return [list(e.path) for e in self._entries.values()]


class VersionedPathCache:
    """A :class:`PathCache` pinned to a graph snapshot version.

    The streaming service reuses one path cache *across* micro-batch
    windows, which is only sound while the weights that built the cached
    paths are still in force.  Every operation first compares
    ``graph.version`` (the counter :meth:`RoadNetwork.set_weight` /
    :meth:`scale_weights` / :meth:`add_edge` bump, and the key
    :meth:`RoadNetwork.freeze` caches CSR snapshots under) against the
    version the entries were built at and self-clears on mismatch — so a
    stale hit is impossible by construction, not by caller discipline.

    Hit/miss totals survive invalidation (they describe the cache's whole
    life); ``invalidations`` counts the epoch flushes.
    """

    def __init__(
        self,
        graph,
        capacity_bytes: Optional[int] = None,
        super_map: Optional[SuperVertexMap] = None,
        eviction: str = "lru",
    ) -> None:
        self.graph = graph
        self._cache = PathCache(
            graph, capacity_bytes, super_map=super_map, eviction=eviction
        )
        self._version = graph.version
        self.invalidations = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Graph version the current entries were built against."""
        return self._version

    def _sync_version(self) -> None:
        if self.graph.version != self._version:
            self._cache.clear()
            self._version = self.graph.version
            self.invalidations += 1

    # ------------------------------------------------------------------
    def lookup(self, source: int, target: int) -> Optional[CacheHit]:
        self._sync_version()
        return self._cache.lookup(source, target)

    def insert(self, path: Sequence[int]) -> Optional[int]:
        self._sync_version()
        return self._cache.insert(path)

    def clear(self) -> None:
        self._cache.clear()
        self._version = self.graph.version

    def __len__(self) -> int:
        self._sync_version()
        return len(self._cache)

    # -- delegated statistics -------------------------------------------
    @property
    def hits(self) -> int:
        return self._cache.hits

    @property
    def misses(self) -> int:
        return self._cache.misses

    @property
    def hit_ratio(self) -> float:
        return self._cache.hit_ratio

    @property
    def size_bytes(self) -> int:
        self._sync_version()
        return self._cache.size_bytes

    @property
    def evictions(self) -> int:
        return self._cache.evictions
