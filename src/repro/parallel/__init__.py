"""Real multiprocess batch execution (the measured side of Figure 8).

The paper's scaling story is horizontal: a decomposed batch is
embarrassingly parallel because every cluster's cache state is private to
it.  :mod:`repro.analysis.parallel` *predicts* the k-server makespan with
an LPT simulation; this package *runs* the dispatch with real worker
processes and reports per-worker timing, queue waits and utilisation, so
the two can be compared side by side.

Quickstart::

    from repro import ParallelBatchEngine, SearchSpaceDecomposer

    decomposition = SearchSpaceDecomposer(graph).decompose(batch)
    with ParallelBatchEngine(graph, workers=4,
                             answerer_kwargs={"cache_bytes": 512 * 1024}) as engine:
        outcome = engine.execute(decomposition, method="slc-s")
    outcome.answer      # identical to the serial LocalCacheAnswerer output
    outcome.report      # measured makespan, queue waits, per-worker load
"""

from .engine import (
    ExecutionReport,
    ParallelBatchEngine,
    ParallelOutcome,
    UnitTrace,
    WorkerStats,
)
from .worker import ANSWERER_KINDS, build_answerer

__all__ = [
    "ANSWERER_KINDS",
    "ExecutionReport",
    "ParallelBatchEngine",
    "ParallelOutcome",
    "UnitTrace",
    "WorkerStats",
    "build_answerer",
]
