"""A real multiprocess execution engine for decomposed batches.

:mod:`repro.analysis.parallel` predicts the k-server makespan with an LPT
simulation; this engine actually runs the dispatch with ``k`` worker
processes and reports what happened, so prediction and measurement can be
compared side by side (Figure 8).

Design
------
* **Work units are indivisible.**  A unit is one query cluster (or a
  singleton query wrapped as a cluster): its Local Cache / R2R state is
  private to it, so a unit never crosses workers and workers never share
  mutable state.
* **Longest-estimated-first dispatch.**  Units are submitted in
  descending order of estimated cost (summed Euclidean query lengths — the
  same C(q) proxy the decomposers use), which is exactly the greedy that
  makes LPT's 4/3 bound apply to the pool's work-conserving schedule.
* **Fork-time graph sharing.**  On fork platforms the graph and answerer
  are inherited copy-on-write; on spawn platforms a pickled payload
  rebuilds them once per worker.  The pool is kept alive across
  :meth:`ParallelBatchEngine.execute` calls and transparently rebuilt when
  ``graph.version`` changes (a weight epoch invalidates worker snapshots).
* **Deterministic merge.**  Per-unit answers are merged in original
  cluster order, so for deterministic processing orders (``longest``) the
  merged :class:`~repro.core.results.BatchAnswer` is identical — paths,
  distances, and accounting — to the single-process answerer's output.
* **Resilience.**  A failed unit is retried under a bounded
  :class:`~repro.resilience.RetryPolicy` (exponential backoff,
  deterministic jitter); a unit that exhausts its retries is quarantined
  and walks the degradation ladder (in-process cache answerer, then
  singleton queries answered by plain Dijkstra), with unanswerable
  queries landing in the :class:`~repro.resilience.DeadLetterRecord` list
  of the :class:`ExecutionReport` instead of aborting the batch.  A
  :class:`~repro.resilience.CircuitBreaker` trips the engine to serial
  in-process execution after repeated pool failures.  A seeded
  :class:`~repro.resilience.FaultPlan` can inject unit crashes, hangs,
  worker exits, and pool-construction breaks to exercise all of it
  deterministically.  Queries are never silently dropped: every query is
  either answered or dead-lettered with a reason.
"""

from __future__ import annotations

import logging
import math
import multiprocessing as mp
import pickle
import time
from collections import deque
from concurrent.futures import CancelledError as FuturesCancelledError
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.clusters import Decomposition, QueryCluster
from ..core.results import BatchAnswer
from ..exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    FaultInjectionError,
    UnitTimeoutError,
)
from ..network.csr import SharedCSR, share_csr
from ..obs import (
    MetricsRegistry,
    MetricsSnapshot,
    TIME_BUCKETS,
    get_registry,
    record_deadline,
    record_spawn_payload,
    record_watchdog,
    use_registry,
)
from ..queries.query import QuerySet
from ..resilience import (
    CircuitBreaker,
    DeadLetterRecord,
    Deadline,
    FaultPlan,
    OPEN,
    REASON_DEADLINE_EXCEEDED,
    REASON_INVALID_QUERY,
    REASON_NO_PATH,
    REASON_QUARANTINE_FAILED,
    RetryPolicy,
    STAGE_DISPATCH,
    STAGE_QUARANTINE,
    STAGE_VALIDATION,
    WorkerHungError,
    WorkerWatchdog,
    use_deadline,
)
from . import worker

logger = logging.getLogger(__name__)


@dataclass
class UnitTrace:
    """What happened to one work unit."""

    index: int  #: position of the cluster in the decomposition
    queries: int
    estimate: float  #: dispatch priority (summed Euclidean lengths)
    worker: int  #: worker pid, or 0 for in-process execution
    queue_wait_seconds: float  #: submit-to-pickup latency
    busy_seconds: float  #: answering time inside the worker
    fallback: bool = False  #: answered in-process after a worker failure
    attempts: int = 1  #: dispatch attempts spent on the unit (1 = first try)
    quarantined: bool = False  #: exhausted retries; degradation ladder answered it


@dataclass
class WorkerStats:
    """Aggregate over the units one worker processed."""

    worker: int
    units: int
    busy_seconds: float


@dataclass
class ExecutionReport:
    """Measured counterpart of the LPT :class:`ScheduleResult`."""

    requested_workers: int
    workers: int
    start_method: str
    wall_seconds: float = 0.0
    units: List[UnitTrace] = field(default_factory=list)
    #: Fleet-wide metrics merged from the per-unit worker registries
    #: (``None`` when no registry was active during :meth:`execute`).
    metrics: Optional[MetricsSnapshot] = None
    #: Queries the engine gave up on (validation failures, no-path,
    #: exhausted quarantine ladder) — never silently dropped.
    dead_letters: List[DeadLetterRecord] = field(default_factory=list)
    #: The circuit breaker forced this batch to serial in-process mode.
    breaker_tripped: bool = False
    #: Injected faults that fired during this batch, by kind.
    faults_by_kind: Dict[str, int] = field(default_factory=dict)
    #: Unit attempts abandoned because ``unit_timeout`` expired.
    unit_timeouts: int = 0

    @property
    def fallbacks(self) -> int:
        return sum(1 for u in self.units if u.fallback)

    @property
    def retries(self) -> int:
        """Re-dispatches beyond each unit's first attempt."""
        return sum(max(0, u.attempts - 1) for u in self.units)

    @property
    def quarantined_units(self) -> int:
        return sum(1 for u in self.units if u.quarantined)

    @property
    def faults_injected(self) -> int:
        return sum(self.faults_by_kind.values())

    @property
    def total_busy_seconds(self) -> float:
        return sum(u.busy_seconds for u in self.units)

    @property
    def mean_queue_wait_seconds(self) -> float:
        if not self.units:
            return 0.0
        return sum(u.queue_wait_seconds for u in self.units) / len(self.units)

    @property
    def speedup(self) -> float:
        """Total busy time / wall time: achieved parallelism.

        An empty batch (zero wall time) reports 0.0 — not ``workers`` —
        so dashboards never show phantom full-parallel speedup for
        windows that did nothing.
        """
        if self.wall_seconds <= 0:
            return 0.0
        return self.total_busy_seconds / self.wall_seconds

    @property
    def utilisation(self) -> float:
        return self.speedup / self.workers if self.workers else 0.0

    def worker_stats(self) -> List[WorkerStats]:
        by_pid: Dict[int, WorkerStats] = {}
        for u in self.units:
            stats = by_pid.get(u.worker)
            if stats is None:
                stats = by_pid[u.worker] = WorkerStats(u.worker, 0, 0.0)
            stats.units += 1
            stats.busy_seconds += u.busy_seconds
        return sorted(by_pid.values(), key=lambda s: s.worker)

    def schedule_result(self):
        """This run as a measured :class:`~repro.analysis.parallel.ScheduleResult`.

        Plugs into the same reporting as the LPT simulation so measured and
        predicted makespans render side by side.
        """
        from ..analysis.parallel import ScheduleResult

        per_server = [s.busy_seconds for s in self.worker_stats()]
        while len(per_server) < self.workers:
            per_server.append(0.0)
        return ScheduleResult(
            num_servers=self.workers,
            makespan_seconds=self.wall_seconds,
            total_work_seconds=self.total_busy_seconds,
            per_server_seconds=per_server,
            source="measured",
            mean_queue_wait_seconds=self.mean_queue_wait_seconds,
            fallback_units=self.fallbacks,
            metrics=self.metrics,
        )


@dataclass
class ParallelOutcome:
    """An answered batch plus the execution trace that produced it."""

    answer: BatchAnswer
    report: ExecutionReport


@dataclass
class _Pending:
    """One in-flight pool submission awaiting its result."""

    index: int
    cluster: QueryCluster
    attempt: int
    submitted: float
    future: object


class ParallelBatchEngine:
    """Answer decomposed batches with ``workers`` processes.

    Parameters
    ----------
    graph:
        The road network (shared with workers at fork time, or pickled
        once per worker on spawn platforms).
    workers:
        Number of worker processes requested; clamped per batch to the
        number of work units.
    answerer_kind / answerer_kwargs:
        Worker-side answering algorithm: ``"local-cache"``, ``"r2r"`` or
        ``"one-by-one"``, with constructor kwargs (the graph argument is
        injected).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` when
        the platform offers it, else the platform default (shared-memory
        CSR attach, or pickle fallback).
    shared_graph:
        When true (default) the engine freezes the graph before sharing it
        with workers: fork pools inherit the CSR snapshot copy-on-write,
        and spawn/forkserver pools receive only a
        :class:`~repro.network.csr.CSRHandle` (shm segment names +
        metadata) and attach the parent's buffers zero-copy.  The engine
        owns the segment and unlinks it on shutdown, worker crash and
        breaker fallback alike.  Set false to force the legacy
        pickled-graph payload (mutable dict-graph search paths).
    unit_timeout:
        Optional per-attempt cap in seconds on the *additional* wait for a
        worker result; on expiry the attempt counts as failed and the
        retry policy decides what happens next.
    min_queries_per_worker:
        Fewer total queries than ``workers * min_queries_per_worker``
        shrinks the effective worker count so tiny batches are not
        dominated by dispatch overhead.
    retry_policy:
        Bounded-attempt :class:`~repro.resilience.RetryPolicy` applied to
        failed units (default: one retry with a short backoff).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` injecting
        deterministic failures for chaos testing.
    breaker:
        :class:`~repro.resilience.CircuitBreaker` guarding the pool path;
        a default breaker (3 failures, 30 s cooldown) is created when not
        given.
    watchdog:
        Optional :class:`~repro.resilience.WorkerWatchdog`.  When set, the
        engine slices its future waits into ``watchdog.poll_interval``
        steps, drains worker heartbeats between slices, and treats a dead
        or hung worker like a broken pool (teardown + requeue through the
        retry ladder) — with the watchdog bounding the rebuilds and
        tripping ``breaker`` on a restart storm.
    """

    def __init__(
        self,
        graph,
        workers: int = 2,
        answerer_kind: str = "local-cache",
        answerer_kwargs: Optional[dict] = None,
        start_method: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        min_queries_per_worker: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        breaker: Optional[CircuitBreaker] = None,
        shared_graph: bool = True,
        watchdog: Optional[WorkerWatchdog] = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if unit_timeout is not None and unit_timeout < 0:
            raise ConfigurationError("unit_timeout must be non-negative")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available on this platform"
            )
        self.graph = graph
        self.workers = workers
        self.answerer_kind = answerer_kind
        self.answerer_kwargs = dict(answerer_kwargs or {})
        self.start_method = start_method
        self.unit_timeout = unit_timeout
        self.min_queries_per_worker = max(1, min_queries_per_worker)
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.shared_graph = shared_graph
        self.watchdog = watchdog
        self._hb_queue = None
        self._shared: Optional[SharedCSR] = None
        self._shared_version: Optional[int] = None
        # Validates the kind eagerly and doubles as the in-process fallback
        # answerer and the fork-inherited template.
        self._answerer = worker.build_answerer(
            graph, answerer_kind, self.answerer_kwargs
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._pool_version: Optional[int] = None
        #: Construction attempts so far; doubles as the pool generation id.
        self._pool_builds = 0
        self._pool_generation = -1
        # Distinct from the initial generation so a failure before the
        # first successful build still counts against the breaker.
        self._failed_generation = -2

    # ------------------------------------------------------------------
    @classmethod
    def from_answerer(cls, answerer, workers: int = 2, **options) -> "ParallelBatchEngine":
        """Build an engine that replicates an existing answerer per worker."""
        kind, kwargs = answerer.spec()
        return cls(
            answerer.graph,
            workers=workers,
            answerer_kind=kind,
            answerer_kwargs=kwargs,
            **options,
        )

    def __enter__(self) -> "ParallelBatchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc timing dependent
        try:
            # Never wait on the GC path: a blocking shutdown during
            # interpreter teardown can deadlock against dying worker
            # machinery.  Explicit close()/context-manager exits still wait.
            self._shutdown(wait=False)
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        self._shutdown(wait=True)

    def warm(self) -> bool:
        """Pre-build the worker pool before the first batch arrives.

        A streaming service calls this while the line is still quiet so
        the first busy window does not pay pool construction (and, on
        spawn platforms, the shared-memory segment publication) on its
        own latency.  Returns ``True`` when a pool is up afterwards;
        construction failures are absorbed into the circuit breaker
        exactly like a dispatch-time failure, so a broken pool degrades
        to in-process execution rather than failing the caller.
        """
        if self.workers <= 1:
            return False
        if self._pool is not None:
            return True
        # Fault accounting during warm goes to a throwaway report: there
        # is no active batch to charge the fault against yet.
        self._active_report = ExecutionReport(
            requested_workers=self.workers,
            workers=self.workers,
            start_method=self._resolved_start_method(),
        )
        try:
            self._ensure_pool(self.workers)
            return True
        except Exception as exc:
            self._note_pool_failure()
            logger.warning(
                "pool warm-up failed (%s: %s); first batch will retry",
                type(exc).__name__,
                exc,
            )
            return False
        finally:
            self._active_report = None

    def _shutdown(self, wait: bool) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=wait, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0
            self._pool_version = None
        if self._hb_queue is not None:
            try:
                self._hb_queue.close()
                self._hb_queue.cancel_join_thread()
            except Exception:  # pragma: no cover - teardown best effort
                pass
            self._hb_queue = None
        if self.watchdog is not None:
            self.watchdog.forget()
        self._release_shared()

    def _release_shared(self) -> None:
        """Close + unlink the engine-owned shm segment (idempotent).

        Runs on every pool teardown: clean shutdown, pool rebuild after a
        version bump, worker-crash recovery (:meth:`_note_pool_failure`)
        and the circuit breaker's serial fallback all come through
        :meth:`_shutdown`, so the segment can never outlive its pool.
        """
        shared, self._shared = self._shared, None
        self._shared_version = None
        if shared is not None:
            try:
                shared.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def _ensure_shared_segment(self, version) -> Optional[SharedCSR]:
        """The engine-owned shared CSR segment for the current graph version."""
        if self._shared is not None and self._shared_version != version:
            self._release_shared()
        if self._shared is None:
            freeze = getattr(self.graph, "freeze", None)
            if freeze is None:
                return None
            try:
                self._shared = share_csr(freeze())
            except Exception:
                # Out of shm space (or an exotic graph): fall back to the
                # pickled-graph payload rather than failing dispatch.
                return None
            self._shared_version = version
        return self._shared

    # ------------------------------------------------------------------
    def execute(
        self,
        work: Union[Decomposition, QuerySet],
        method: Optional[str] = None,
        deadline: Optional[Deadline] = None,
    ) -> ParallelOutcome:
        """Answer ``work`` across the pool and merge deterministically.

        ``work`` is a :class:`Decomposition` (clusters become work units)
        or a plain :class:`QuerySet` (each query becomes a singleton
        unit).  Returns the merged answer plus the execution report.
        Queries with out-of-range endpoints are dead-lettered up front;
        everything else is answered or dead-lettered with a reason —
        never silently dropped.

        ``deadline`` caps the whole batch: units are shipped with the
        remaining budget (workers re-arm it locally and the search
        kernels cut themselves off cooperatively), an already-expired
        budget dead-letters a unit without dispatching it, and a
        :class:`~repro.exceptions.DeadlineExceededError` is never
        retried — the unit's queries are dead-lettered with reason
        ``deadline-exceeded``.
        """
        decomposition = self._as_decomposition(work)
        dead_letters: List[DeadLetterRecord] = []
        units: List[Tuple[int, QueryCluster]] = []
        for index, cluster in enumerate(decomposition.clusters):
            cluster = self._validated_cluster(index, cluster, dead_letters)
            if len(cluster):
                units.append((index, cluster))
        num_valid = sum(len(cluster) for _, cluster in units)
        estimates = {index: self._estimate(cluster) for index, cluster in units}
        # Longest-estimated-first, index-stable for determinism.
        order = sorted(units, key=lambda item: (-estimates[item[0]], item[0]))
        effective = self._effective_workers(len(units), num_valid)
        breaker_tripped = False
        if effective > 1 and self.breaker.state == OPEN:
            # Repeated pool failures: stay serial until the cooldown allows
            # a half-open probe.
            breaker_tripped = True
            effective = 1
        report = ExecutionReport(
            requested_workers=self.workers,
            workers=effective,
            start_method=(
                "in-process" if effective <= 1 else self._resolved_start_method()
            ),
            breaker_tripped=breaker_tripped,
        )
        report.dead_letters.extend(dead_letters)
        merged = BatchAnswer(
            method=method or f"parallel[{self.answerer_kind}]",
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
            workers=effective,
        )
        registry = get_registry()
        if registry.enabled:
            # Fleet accumulator: every unit (worker or in-process) runs
            # under its own registry and its snapshot is folded in here.
            report.metrics = MetricsSnapshot()
        wall0 = time.perf_counter()
        with registry.span(
            "dispatch", units=len(units), workers=effective, mode=report.start_method
        ):
            if effective <= 1:
                results = self._run_in_process(order, estimates, report, deadline)
            else:
                results = self._run_pool(order, estimates, report, effective, deadline)
        report.wall_seconds = time.perf_counter() - wall0
        with registry.span("merge", units=len(results)):
            for index in sorted(results):
                unit_answer = results[index]
                merged.answers.extend(unit_answer.answers)
                merged.visited += unit_answer.visited
                merged.cache_hits += unit_answer.cache_hits
                merged.cache_misses += unit_answer.cache_misses
                merged.cache_bytes += unit_answer.cache_bytes
                merged.singleton_queries += unit_answer.singleton_queries
                if unit_answer.max_cluster_cache_bytes > merged.max_cluster_cache_bytes:
                    merged.max_cluster_cache_bytes = unit_answer.max_cluster_cache_bytes
        if report.metrics is not None:
            report.metrics.merge(self._dispatch_metrics(report))
            # Fold the fleet totals into the caller's registry so one
            # snapshot covers the run regardless of the worker count.
            registry.merge_snapshot(report.metrics)
        merged.answer_seconds = report.wall_seconds
        merged.execution_report = report
        return ParallelOutcome(answer=merged, report=report)

    def _dispatch_metrics(self, report: ExecutionReport) -> MetricsSnapshot:
        """Engine-level metrics for one execute() round as a snapshot."""
        engine_reg = MetricsRegistry()
        engine_reg.counter("parallel.units").add(len(report.units))
        engine_reg.counter("parallel.fallbacks").add(report.fallbacks)
        engine_reg.gauge("parallel.workers").track_max(report.workers)
        engine_reg.counter("resilience.retries_total").add(report.retries)
        engine_reg.counter("resilience.quarantined_units_total").add(
            report.quarantined_units
        )
        engine_reg.counter("resilience.dead_letters_total").add(
            len(report.dead_letters)
        )
        engine_reg.counter("resilience.faults_injected_total").add(
            report.faults_injected
        )
        for kind, count in report.faults_by_kind.items():
            engine_reg.counter(f"resilience.faults.{kind}").add(count)
        engine_reg.counter("resilience.unit_timeouts_total").add(report.unit_timeouts)
        if report.breaker_tripped:
            engine_reg.counter("resilience.breaker_short_circuits_total").add(1)
        engine_reg.gauge("resilience.breaker_state").set(self.breaker.state_value)
        busy = engine_reg.histogram("parallel.unit_seconds", TIME_BUCKETS)
        wait = engine_reg.histogram("parallel.queue_wait_seconds", TIME_BUCKETS)
        for u in report.units:
            busy.observe(u.busy_seconds)
            wait.observe(max(0.0, u.queue_wait_seconds))
        return engine_reg.snapshot()

    # ------------------------------------------------------------------
    def _as_decomposition(self, work) -> Decomposition:
        if isinstance(work, Decomposition):
            return work
        if isinstance(work, QuerySet):
            clusters = [QueryCluster(queries=[q]) for q in work]
            return Decomposition(clusters, "singletons", 0.0)
        raise ConfigurationError(
            f"cannot execute {type(work).__name__}; pass a Decomposition or QuerySet"
        )

    def _validated_cluster(
        self,
        index: int,
        cluster: QueryCluster,
        dead_letters: List[DeadLetterRecord],
    ) -> QueryCluster:
        """Strip queries with out-of-range endpoints into dead letters.

        A malformed query must never reach a search heap (where it would
        surface as a bare ``KeyError``/``IndexError`` and kill the whole
        unit); it is recorded and the rest of the cluster proceeds.
        """
        n = self.graph.num_vertices
        if all(q.source < n and q.target < n for q in cluster.queries):
            return cluster
        valid = []
        for q in cluster.queries:
            if q.source < n and q.target < n:
                valid.append(q)
            else:
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_INVALID_QUERY,
                        stage=STAGE_VALIDATION,
                        detail=f"vertex id out of range (|V| = {n})",
                        unit=index,
                    )
                )
        return QueryCluster(
            queries=valid,
            kind=cluster.kind,
            direction=cluster.direction,
            covered_cells=cluster.covered_cells,
            center=cluster.center,
            radius=cluster.radius,
        )

    def _estimate(self, cluster: QueryCluster) -> float:
        graph = self.graph
        return sum(graph.euclidean(q.source, q.target) for q in cluster.queries)

    def _effective_workers(self, num_units: int, num_queries: int) -> int:
        by_queries = num_queries // self.min_queries_per_worker
        return max(1, min(self.workers, num_units, by_queries))

    def _resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = mp.get_all_start_methods()
        return "fork" if "fork" in methods else mp.get_start_method()

    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        version = getattr(self.graph, "version", None)
        if self._pool is not None and (
            self._pool_workers != workers or self._pool_version != version
        ):
            # A weight epoch (graph.version bump) invalidates the snapshot
            # the workers hold; re-fork so they see the new weights.
            self.close()
        if self._pool is None:
            build = self._pool_builds
            self._pool_builds += 1
            self._pool_generation = build
            if self.fault_plan is not None and self.fault_plan.pool_fault(build):
                self._note_fault("break")
                raise FaultInjectionError(
                    f"injected pool construction failure (build {build})"
                )
            method = self._resolved_start_method()
            context = mp.get_context(method)
            if self.watchdog is not None and self._hb_queue is None:
                # One queue per pool lifetime; workers inherit it at fork
                # or receive it through the spawn initialiser (mp queues
                # pickle over the Process-args channel).
                self._hb_queue = context.Queue()
            if method == "fork":
                if self.shared_graph:
                    freeze = getattr(self.graph, "freeze", None)
                    if freeze is not None:
                        # Freeze before forking so every child inherits the
                        # CSR snapshot copy-on-write and runs the kernels.
                        freeze()
                # Workers fork lazily at first submit; the state installed
                # here (and re-asserted before each submit round) is what
                # they inherit.
                worker.set_parent_state(self.graph, self._answerer)
                worker.set_heartbeat(self._hb_queue)
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            else:
                payload: Optional[bytes] = None
                initializer = worker.init_spawn
                if self.shared_graph:
                    shared = self._ensure_shared_segment(version)
                    if shared is not None:
                        payload = pickle.dumps(
                            (shared.handle, self.answerer_kind, self.answerer_kwargs)
                        )
                        initializer = worker.init_spawn_shared
                if payload is None:
                    payload = pickle.dumps(
                        (self.graph, self.answerer_kind, self.answerer_kwargs)
                    )
                record_spawn_payload(len(payload))
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=initializer,
                    initargs=(payload, self._hb_queue),
                )
            self._pool_workers = workers
            self._pool_version = version
        return self._pool

    def _run_in_process(
        self,
        order: List[Tuple[int, QueryCluster]],
        estimates: Dict[int, float],
        report: ExecutionReport,
        deadline: Optional[Deadline] = None,
    ) -> Dict[int, BatchAnswer]:
        results: Dict[int, BatchAnswer] = {}
        with use_deadline(deadline):
            for index, cluster in order:
                if deadline is not None and deadline.expired():
                    self._dead_letter_deadline(report, cluster, index, attempts=1)
                    continue
                results[index] = self._guarded_local(
                    index, cluster, estimates[index], report,
                    fallback=False, attempts=1, quarantined=False,
                )
        return results

    def _answer_locally(
        self,
        index: int,
        cluster: QueryCluster,
        estimate: float,
        report: ExecutionReport,
        fallback: bool,
        attempts: int = 1,
        quarantined: bool = False,
    ) -> BatchAnswer:
        t0 = time.perf_counter()
        if report.metrics is not None:
            # Mirror the worker path: run the unit under its own registry
            # and fold the snapshot into the fleet accumulator, so serial
            # and parallel runs report identical counter totals.
            unit_registry = MetricsRegistry()
            with use_registry(unit_registry):
                answer = worker.answer_one(self._answerer, cluster)
            snapshot = unit_registry.snapshot()
            for span in snapshot.spans:
                span["attrs"].update({"pid": 0, "unit": index})
            report.metrics.merge(snapshot)
        else:
            answer = worker.answer_one(self._answerer, cluster)
        busy = time.perf_counter() - t0
        report.units.append(
            UnitTrace(
                index=index,
                queries=len(cluster),
                estimate=estimate,
                worker=0,
                queue_wait_seconds=0.0,
                busy_seconds=busy,
                fallback=fallback,
                attempts=attempts,
                quarantined=quarantined,
            )
        )
        return answer

    # -- degradation ladder ---------------------------------------------
    def _guarded_local(
        self,
        index: int,
        cluster: QueryCluster,
        estimate: float,
        report: ExecutionReport,
        fallback: bool,
        attempts: int,
        quarantined: bool,
    ) -> BatchAnswer:
        """In-process answer with the ladder's last rung as a safety net."""
        try:
            return self._answer_locally(
                index, cluster, estimate, report,
                fallback=fallback, attempts=attempts, quarantined=quarantined,
            )
        except DeadlineExceededError:
            # Out of budget mid-unit: dead-letter, never degrade (the
            # ladder's rungs would just re-raise at their first check).
            self._dead_letter_deadline(report, cluster, index, attempts)
            return BatchAnswer(method=f"deadline[{self.answerer_kind}]")
        except Exception as exc:
            logger.warning(
                "unit %d failed in-process (%s: %s); degrading to singleton "
                "Dijkstra queries",
                index,
                type(exc).__name__,
                exc,
            )
            return self._answer_singletons(index, cluster, estimate, report, attempts)

    def _quarantine_unit(
        self,
        index: int,
        cluster: QueryCluster,
        estimate: float,
        report: ExecutionReport,
        attempts: int,
        cause: BaseException,
    ) -> BatchAnswer:
        """Retries exhausted: walk the degradation ladder.

        Rung 1 re-answers the whole unit in-process with the engine's own
        (cache) answerer; rung 2 splits the unit into singleton queries;
        rung 3 answers each singleton with plain Dijkstra.  Queries that
        still fail (no path, structural errors) become dead letters.
        """
        logger.warning(
            "unit %d (%d queries) quarantined after %d attempts (%s: %s)",
            index,
            len(cluster),
            attempts,
            type(cause).__name__,
            cause,
        )
        return self._guarded_local(
            index, cluster, estimate, report,
            fallback=True, attempts=attempts, quarantined=True,
        )

    def _answer_singletons(
        self,
        index: int,
        cluster: QueryCluster,
        estimate: float,
        report: ExecutionReport,
        attempts: int,
    ) -> BatchAnswer:
        """The ladder's bottom: each query alone, plain Dijkstra at the end."""
        from ..search.dijkstra import dijkstra

        t0 = time.perf_counter()
        answer = BatchAnswer(method=f"quarantine[{self.answerer_kind}]")
        for q in cluster.queries:
            try:
                singleton = QueryCluster(queries=[q], kind=cluster.kind)
                unit_answer = worker.answer_one(self._answerer, singleton)
                answer.answers.extend(unit_answer.answers)
                answer.visited += unit_answer.visited
                answer.singleton_queries += 1
                continue
            except DeadlineExceededError:
                self._dead_letter_query(
                    report, q, index, attempts,
                    reason=REASON_DEADLINE_EXCEEDED,
                    error="DeadlineExceededError",
                    detail="budget spent walking the degradation ladder",
                )
                record_deadline(expired=1, preempted=1)
                continue
            except Exception:
                pass  # fall through to the most conservative answerer
            try:
                result = dijkstra(self.graph, q.source, q.target)
                if not math.isfinite(result.distance):
                    self._dead_letter_query(
                        report, q, index, attempts,
                        reason=REASON_NO_PATH,
                        error="NoPathError",
                        detail=f"no path from {q.source} to {q.target}",
                    )
                    continue
                answer.answers.append((q, result))
                answer.visited += result.visited
                answer.singleton_queries += 1
            except DeadlineExceededError:
                self._dead_letter_query(
                    report, q, index, attempts,
                    reason=REASON_DEADLINE_EXCEEDED,
                    error="DeadlineExceededError",
                    detail="budget spent walking the degradation ladder",
                )
                record_deadline(expired=1, preempted=1)
            except Exception as exc:
                self._dead_letter_query(
                    report, q, index, attempts,
                    reason=REASON_QUARANTINE_FAILED,
                    error=type(exc).__name__,
                    detail=str(exc),
                )
        busy = time.perf_counter() - t0
        report.units.append(
            UnitTrace(
                index=index,
                queries=len(cluster),
                estimate=estimate,
                worker=0,
                queue_wait_seconds=0.0,
                busy_seconds=busy,
                fallback=True,
                attempts=attempts,
                quarantined=True,
            )
        )
        return answer

    def _dead_letter_query(
        self,
        report: ExecutionReport,
        query,
        unit: int,
        attempts: int,
        reason: str,
        error: str,
        detail: str,
    ) -> None:
        report.dead_letters.append(
            DeadLetterRecord(
                source=query.source,
                target=query.target,
                reason=reason,
                stage=STAGE_QUARANTINE,
                error=error,
                detail=detail,
                unit=unit,
                attempts=attempts,
            )
        )

    def _dead_letter_deadline(
        self,
        report: ExecutionReport,
        cluster: QueryCluster,
        unit: int,
        attempts: int,
        detail: str = "batch deadline expired",
    ) -> None:
        """Dead-letter every query of a unit whose time budget is spent."""
        for q in cluster.queries:
            report.dead_letters.append(
                DeadLetterRecord(
                    source=q.source,
                    target=q.target,
                    reason=REASON_DEADLINE_EXCEEDED,
                    stage=STAGE_DISPATCH,
                    error="DeadlineExceededError",
                    detail=detail,
                    unit=unit,
                    attempts=attempts,
                )
            )
        record_deadline(expired=len(cluster.queries))

    # -- pool path -------------------------------------------------------
    def _note_fault(self, kind: str) -> None:
        self._active_report.faults_by_kind[kind] = (
            self._active_report.faults_by_kind.get(kind, 0) + 1
        )

    def _note_pool_failure(self) -> None:
        """Account one pool-level failure against the breaker (per generation)."""
        if self._pool_generation != self._failed_generation:
            self._failed_generation = self._pool_generation
            self.breaker.record_failure()
        self._shutdown(wait=False)

    def _submit_unit(
        self, workers: int, index: int, cluster: QueryCluster, attempt: int,
        collect: bool, budget: Optional[float] = None,
    ) -> _Pending:
        directive = None
        if self.fault_plan is not None:
            directive = self.fault_plan.unit_fault(index, attempt)
            if directive is not None:
                self._note_fault(directive.kind)
        pool = self._ensure_pool(workers)
        if self._resolved_start_method() == "fork":
            # Re-assert in case another engine replaced the globals since
            # this pool was created (workers fork on first submit).
            worker.set_parent_state(self.graph, self._answerer)
            worker.set_heartbeat(self._hb_queue)
        submitted = time.time()
        future = pool.submit(
            worker.answer_unit, (index, cluster, collect, directive, budget)
        )
        return _Pending(index, cluster, attempt, submitted, future)

    def _try_submit(
        self,
        workers: int,
        index: int,
        cluster: QueryCluster,
        attempt: int,
        collect: bool,
        estimates: Dict[int, float],
        report: ExecutionReport,
        results: Dict[int, BatchAnswer],
        deadline: Optional[Deadline] = None,
    ) -> Optional[_Pending]:
        """Submit a unit, retrying pool construction; local answer as last resort.

        Returns the pending submission, or ``None`` when the unit was
        answered in-process (breaker denied the pool, or construction kept
        failing past the retry budget) or dead-lettered (budget already
        spent before dispatch).
        """
        while True:
            budget: Optional[float] = None
            if deadline is not None:
                budget = deadline.remaining()
                if budget <= 0:
                    self._dead_letter_deadline(report, cluster, index, attempt)
                    return None
            if not self.breaker.allow():
                # Open breaker (or half-open with the probe slot taken):
                # stay off the pool for this unit.  The caller's
                # use_deadline scope covers this local work.
                results[index] = self._guarded_local(
                    index, cluster, estimates[index], report,
                    fallback=True, attempts=attempt, quarantined=False,
                )
                return None
            try:
                return self._submit_unit(
                    workers, index, cluster, attempt, collect, budget
                )
            except Exception as exc:
                self._note_pool_failure()
                logger.warning(
                    "pool unavailable for unit %d attempt %d (%s: %s)",
                    index,
                    attempt,
                    type(exc).__name__,
                    exc,
                )
                if self.retry_policy.allows_retry(attempt):
                    self._sleep_backoff(attempt, index)
                    attempt += 1
                    continue
                results[index] = self._quarantine_unit(
                    index, cluster, estimates[index], report, attempt, exc
                )
                return None

    def _sleep_backoff(self, attempt: int, key: int) -> None:
        delay = self.retry_policy.delay_seconds(attempt, key=key)
        if delay > 0:
            time.sleep(delay)

    def _await_result(self, item: _Pending):
        """Wait for one unit result, interleaving watchdog scans.

        Without a watchdog this is a plain ``future.result(unit_timeout)``.
        With one, the wait is sliced into ``poll_interval`` steps; between
        slices the heartbeat queue is drained and the pool's processes are
        scanned, so a worker that died or wedged on a *different* unit is
        caught while this one is still waiting.  An unhealthy scan raises
        :class:`~repro.resilience.WorkerHungError` (treated by the caller
        like a broken pool).
        """
        wd = self.watchdog
        if wd is None:
            return item.future.result(timeout=self.unit_timeout)
        waited = 0.0
        while True:
            step = wd.poll_interval
            if self.unit_timeout is not None:
                step = min(step, self.unit_timeout - waited)
                if step <= 0:
                    raise FuturesTimeoutError()
            try:
                return item.future.result(timeout=step)
            except FuturesTimeoutError:
                waited += step
                wd.drain(self._hb_queue)
                processes = getattr(self._pool, "_processes", None) or {}
                wd_report = wd.scan(processes)
                if not wd_report.healthy:
                    record_watchdog(
                        dead=len(wd_report.dead), hung=len(wd_report.hung)
                    )
                    raise WorkerHungError(wd_report.describe()) from None

    def _note_watchdog_restart(self) -> None:
        """Pool teardown was watchdog-triggered: spend one restart.

        Within budget the normal rebuild-on-next-submit path applies; past
        it the watchdog declared a storm and the breaker is tripped
        outright so every remaining unit goes serial in-process.
        """
        record_watchdog(restarts=1)
        if self.watchdog is not None and not self.watchdog.note_restart():
            logger.warning(
                "watchdog restart storm (%d restarts); tripping breaker",
                self.watchdog.restarts,
            )
            self.breaker.trip()

    def _run_pool(
        self,
        order: List[Tuple[int, QueryCluster]],
        estimates: Dict[int, float],
        report: ExecutionReport,
        workers: int,
        deadline: Optional[Deadline] = None,
    ) -> Dict[int, BatchAnswer]:
        self._active_report = report
        registry = get_registry()
        collect = report.metrics is not None
        results: Dict[int, BatchAnswer] = {}
        pending: deque = deque()
        pool_ok = True
        with use_deadline(deadline):
            for index, cluster in order:
                item = self._try_submit(
                    workers, index, cluster, 1, collect, estimates, report,
                    results, deadline,
                )
                if item is not None:
                    pending.append(item)
            while pending:
                item = pending.popleft()
                try:
                    with registry.span(
                        "unit_attempt", unit=item.index, attempt=item.attempt
                    ):
                        r_index, answer, pid, started, busy, snapshot = (
                            self._await_result(item)
                        )
                except (Exception, FuturesCancelledError) as exc:
                    if isinstance(exc, FuturesTimeoutError):
                        exc = UnitTimeoutError(
                            item.index, item.attempt, self.unit_timeout or 0.0
                        )
                        report.unit_timeouts += 1
                    if not item.future.cancelled() and not item.future.done():
                        item.future.cancel()
                    if isinstance(exc, DeadlineExceededError):
                        # The worker cut itself off: the unit's budget is
                        # gone, so a retry could only expire again.
                        record_deadline(preempted=1)
                        self._dead_letter_deadline(
                            report, item.cluster, item.index, item.attempt,
                            detail=str(exc),
                        )
                        continue
                    if isinstance(exc, WorkerHungError):
                        pool_ok = False
                        self._note_pool_failure()
                        self._note_watchdog_restart()
                    elif _is_pool_fatal(exc):
                        pool_ok = False
                        self._note_pool_failure()
                    logger.warning(
                        "unit %d (%d queries) attempt %d failed in worker (%s: %s)",
                        item.index,
                        len(item.cluster),
                        item.attempt,
                        type(exc).__name__,
                        exc,
                    )
                    if self.retry_policy.allows_retry(item.attempt):
                        self._sleep_backoff(item.attempt, item.index)
                        retry = self._try_submit(
                            workers, item.index, item.cluster, item.attempt + 1,
                            collect, estimates, report, results, deadline,
                        )
                        if retry is not None:
                            pending.append(retry)
                    else:
                        results[item.index] = self._quarantine_unit(
                            item.index, item.cluster, estimates[item.index],
                            report, item.attempt, exc,
                        )
                    continue
                results[r_index] = answer
                if snapshot is not None and report.metrics is not None:
                    report.metrics.merge(snapshot)
                report.units.append(
                    UnitTrace(
                        index=r_index,
                        queries=len(item.cluster),
                        estimate=estimates[r_index],
                        worker=pid,
                        queue_wait_seconds=max(0.0, started - item.submitted),
                        busy_seconds=busy,
                        attempts=item.attempt,
                    )
                )
        if pool_ok and self._pool is not None:
            self.breaker.record_success()
        self._active_report = None
        return results

    #: The report the current _run_pool round accounts faults against.
    _active_report: Optional[ExecutionReport] = None


def _is_pool_fatal(exc: BaseException) -> bool:
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(exc, (BrokenProcessPool, FuturesCancelledError))
