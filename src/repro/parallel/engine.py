"""A real multiprocess execution engine for decomposed batches.

:mod:`repro.analysis.parallel` predicts the k-server makespan with an LPT
simulation; this engine actually runs the dispatch with ``k`` worker
processes and reports what happened, so prediction and measurement can be
compared side by side (Figure 8).

Design
------
* **Work units are indivisible.**  A unit is one query cluster (or a
  singleton query wrapped as a cluster): its Local Cache / R2R state is
  private to it, so a unit never crosses workers and workers never share
  mutable state.
* **Longest-estimated-first dispatch.**  Units are submitted in
  descending order of estimated cost (summed Euclidean query lengths — the
  same C(q) proxy the decomposers use), which is exactly the greedy that
  makes LPT's 4/3 bound apply to the pool's work-conserving schedule.
* **Fork-time graph sharing.**  On fork platforms the graph and answerer
  are inherited copy-on-write; on spawn platforms a pickled payload
  rebuilds them once per worker.  The pool is kept alive across
  :meth:`ParallelBatchEngine.execute` calls and transparently rebuilt when
  ``graph.version`` changes (a weight epoch invalidates worker snapshots).
* **Deterministic merge.**  Per-unit answers are merged in original
  cluster order, so for deterministic processing orders (``longest``) the
  merged :class:`~repro.core.results.BatchAnswer` is identical — paths,
  distances, and accounting — to the single-process answerer's output.
* **Graceful degradation.**  A worker crash, a broken pool, or a unit
  timeout falls back to answering the affected units in the parent
  process: queries are never dropped.
"""

from __future__ import annotations

import logging
import multiprocessing as mp
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..core.clusters import Decomposition, QueryCluster
from ..core.results import BatchAnswer
from ..exceptions import ConfigurationError
from ..obs import (
    MetricsRegistry,
    MetricsSnapshot,
    TIME_BUCKETS,
    get_registry,
    use_registry,
)
from ..queries.query import QuerySet
from . import worker

logger = logging.getLogger(__name__)


@dataclass
class UnitTrace:
    """What happened to one work unit."""

    index: int  #: position of the cluster in the decomposition
    queries: int
    estimate: float  #: dispatch priority (summed Euclidean lengths)
    worker: int  #: worker pid, or 0 for in-process execution
    queue_wait_seconds: float  #: submit-to-pickup latency
    busy_seconds: float  #: answering time inside the worker
    fallback: bool = False  #: answered in-process after a worker failure


@dataclass
class WorkerStats:
    """Aggregate over the units one worker processed."""

    worker: int
    units: int
    busy_seconds: float


@dataclass
class ExecutionReport:
    """Measured counterpart of the LPT :class:`ScheduleResult`."""

    requested_workers: int
    workers: int
    start_method: str
    wall_seconds: float = 0.0
    units: List[UnitTrace] = field(default_factory=list)
    #: Fleet-wide metrics merged from the per-unit worker registries
    #: (``None`` when no registry was active during :meth:`execute`).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def fallbacks(self) -> int:
        return sum(1 for u in self.units if u.fallback)

    @property
    def total_busy_seconds(self) -> float:
        return sum(u.busy_seconds for u in self.units)

    @property
    def mean_queue_wait_seconds(self) -> float:
        if not self.units:
            return 0.0
        return sum(u.queue_wait_seconds for u in self.units) / len(self.units)

    @property
    def speedup(self) -> float:
        """Total busy time / wall time: achieved parallelism."""
        if self.wall_seconds <= 0:
            return float(self.workers)
        return self.total_busy_seconds / self.wall_seconds

    @property
    def utilisation(self) -> float:
        return self.speedup / self.workers if self.workers else 0.0

    def worker_stats(self) -> List[WorkerStats]:
        by_pid: Dict[int, WorkerStats] = {}
        for u in self.units:
            stats = by_pid.get(u.worker)
            if stats is None:
                stats = by_pid[u.worker] = WorkerStats(u.worker, 0, 0.0)
            stats.units += 1
            stats.busy_seconds += u.busy_seconds
        return sorted(by_pid.values(), key=lambda s: s.worker)

    def schedule_result(self):
        """This run as a measured :class:`~repro.analysis.parallel.ScheduleResult`.

        Plugs into the same reporting as the LPT simulation so measured and
        predicted makespans render side by side.
        """
        from ..analysis.parallel import ScheduleResult

        per_server = [s.busy_seconds for s in self.worker_stats()]
        while len(per_server) < self.workers:
            per_server.append(0.0)
        return ScheduleResult(
            num_servers=self.workers,
            makespan_seconds=self.wall_seconds,
            total_work_seconds=self.total_busy_seconds,
            per_server_seconds=per_server,
            source="measured",
            mean_queue_wait_seconds=self.mean_queue_wait_seconds,
            fallback_units=self.fallbacks,
            metrics=self.metrics,
        )


@dataclass
class ParallelOutcome:
    """An answered batch plus the execution trace that produced it."""

    answer: BatchAnswer
    report: ExecutionReport


class ParallelBatchEngine:
    """Answer decomposed batches with ``workers`` processes.

    Parameters
    ----------
    graph:
        The road network (shared with workers at fork time, or pickled
        once per worker on spawn platforms).
    workers:
        Number of worker processes requested; clamped per batch to the
        number of work units.
    answerer_kind / answerer_kwargs:
        Worker-side answering algorithm: ``"local-cache"``, ``"r2r"`` or
        ``"one-by-one"``, with constructor kwargs (the graph argument is
        injected).
    start_method:
        ``multiprocessing`` start method; default prefers ``fork`` when
        the platform offers it, else the platform default (pickle
        fallback).
    unit_timeout:
        Optional per-unit cap in seconds on the *additional* wait for a
        worker result; on expiry the unit is answered in-process.
    min_queries_per_worker:
        Fewer total queries than ``workers * min_queries_per_worker``
        shrinks the effective worker count so tiny batches are not
        dominated by dispatch overhead.
    """

    def __init__(
        self,
        graph,
        workers: int = 2,
        answerer_kind: str = "local-cache",
        answerer_kwargs: Optional[dict] = None,
        start_method: Optional[str] = None,
        unit_timeout: Optional[float] = None,
        min_queries_per_worker: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be at least 1")
        if unit_timeout is not None and unit_timeout < 0:
            raise ConfigurationError("unit_timeout must be non-negative")
        if start_method is not None and start_method not in mp.get_all_start_methods():
            raise ConfigurationError(
                f"start method {start_method!r} not available on this platform"
            )
        self.graph = graph
        self.workers = workers
        self.answerer_kind = answerer_kind
        self.answerer_kwargs = dict(answerer_kwargs or {})
        self.start_method = start_method
        self.unit_timeout = unit_timeout
        self.min_queries_per_worker = max(1, min_queries_per_worker)
        # Validates the kind eagerly and doubles as the in-process fallback
        # answerer and the fork-inherited template.
        self._answerer = worker.build_answerer(
            graph, answerer_kind, self.answerer_kwargs
        )
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        self._pool_version: Optional[int] = None

    # ------------------------------------------------------------------
    @classmethod
    def from_answerer(cls, answerer, workers: int = 2, **options) -> "ParallelBatchEngine":
        """Build an engine that replicates an existing answerer per worker."""
        kind, kwargs = answerer.spec()
        return cls(
            answerer.graph,
            workers=workers,
            answerer_kind=kind,
            answerer_kwargs=kwargs,
            **options,
        )

    def __enter__(self) -> "ParallelBatchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc timing dependent
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_workers = 0
            self._pool_version = None

    # ------------------------------------------------------------------
    def execute(
        self,
        work: Union[Decomposition, QuerySet],
        method: Optional[str] = None,
    ) -> ParallelOutcome:
        """Answer ``work`` across the pool and merge deterministically.

        ``work`` is a :class:`Decomposition` (clusters become work units)
        or a plain :class:`QuerySet` (each query becomes a singleton
        unit).  Returns the merged answer plus the execution report.
        """
        decomposition = self._as_decomposition(work)
        units = [
            (index, cluster)
            for index, cluster in enumerate(decomposition.clusters)
            if len(cluster)
        ]
        estimates = {index: self._estimate(cluster) for index, cluster in units}
        # Longest-estimated-first, index-stable for determinism.
        order = sorted(units, key=lambda item: (-estimates[item[0]], item[0]))
        effective = self._effective_workers(len(units), decomposition.num_queries)
        report = ExecutionReport(
            requested_workers=self.workers,
            workers=effective,
            start_method=(
                "in-process" if effective <= 1 else self._resolved_start_method()
            ),
        )
        merged = BatchAnswer(
            method=method or f"parallel[{self.answerer_kind}]",
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
            workers=effective,
        )
        registry = get_registry()
        if registry.enabled:
            # Fleet accumulator: every unit (worker or in-process) runs
            # under its own registry and its snapshot is folded in here.
            report.metrics = MetricsSnapshot()
        wall0 = time.perf_counter()
        with registry.span(
            "dispatch", units=len(units), workers=effective, mode=report.start_method
        ):
            if effective <= 1:
                results = self._run_in_process(order, estimates, report)
            else:
                results = self._run_pool(order, estimates, report, effective)
        report.wall_seconds = time.perf_counter() - wall0
        with registry.span("merge", units=len(results)):
            for index in sorted(results):
                unit_answer = results[index]
                merged.answers.extend(unit_answer.answers)
                merged.visited += unit_answer.visited
                merged.cache_hits += unit_answer.cache_hits
                merged.cache_misses += unit_answer.cache_misses
                merged.cache_bytes += unit_answer.cache_bytes
                merged.singleton_queries += unit_answer.singleton_queries
                if unit_answer.max_cluster_cache_bytes > merged.max_cluster_cache_bytes:
                    merged.max_cluster_cache_bytes = unit_answer.max_cluster_cache_bytes
        if report.metrics is not None:
            report.metrics.merge(self._dispatch_metrics(report))
            # Fold the fleet totals into the caller's registry so one
            # snapshot covers the run regardless of the worker count.
            registry.merge_snapshot(report.metrics)
        merged.answer_seconds = report.wall_seconds
        merged.execution_report = report
        return ParallelOutcome(answer=merged, report=report)

    def _dispatch_metrics(self, report: ExecutionReport) -> MetricsSnapshot:
        """Engine-level metrics for one execute() round as a snapshot."""
        engine_reg = MetricsRegistry()
        engine_reg.counter("parallel.units").add(len(report.units))
        engine_reg.counter("parallel.fallbacks").add(report.fallbacks)
        engine_reg.gauge("parallel.workers").track_max(report.workers)
        busy = engine_reg.histogram("parallel.unit_seconds", TIME_BUCKETS)
        wait = engine_reg.histogram("parallel.queue_wait_seconds", TIME_BUCKETS)
        for u in report.units:
            busy.observe(u.busy_seconds)
            wait.observe(max(0.0, u.queue_wait_seconds))
        return engine_reg.snapshot()

    # ------------------------------------------------------------------
    def _as_decomposition(self, work) -> Decomposition:
        if isinstance(work, Decomposition):
            return work
        if isinstance(work, QuerySet):
            clusters = [QueryCluster(queries=[q]) for q in work]
            return Decomposition(clusters, "singletons", 0.0)
        raise ConfigurationError(
            f"cannot execute {type(work).__name__}; pass a Decomposition or QuerySet"
        )

    def _estimate(self, cluster: QueryCluster) -> float:
        graph = self.graph
        return sum(graph.euclidean(q.source, q.target) for q in cluster.queries)

    def _effective_workers(self, num_units: int, num_queries: int) -> int:
        by_queries = num_queries // self.min_queries_per_worker
        return max(1, min(self.workers, num_units, by_queries))

    def _resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = mp.get_all_start_methods()
        return "fork" if "fork" in methods else mp.get_start_method()

    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        version = getattr(self.graph, "version", None)
        if self._pool is not None and (
            self._pool_workers != workers or self._pool_version != version
        ):
            # A weight epoch (graph.version bump) invalidates the snapshot
            # the workers hold; re-fork so they see the new weights.
            self.close()
        if self._pool is None:
            method = self._resolved_start_method()
            context = mp.get_context(method)
            if method == "fork":
                # Workers fork lazily at first submit; the state installed
                # here (and re-asserted before each submit round) is what
                # they inherit.
                worker.set_parent_state(self.graph, self._answerer)
                self._pool = ProcessPoolExecutor(
                    max_workers=workers, mp_context=context
                )
            else:
                payload = pickle.dumps(
                    (self.graph, self.answerer_kind, self.answerer_kwargs)
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=context,
                    initializer=worker.init_spawn,
                    initargs=(payload,),
                )
            self._pool_workers = workers
            self._pool_version = version
        return self._pool

    def _run_in_process(
        self,
        order: List[Tuple[int, QueryCluster]],
        estimates: Dict[int, float],
        report: ExecutionReport,
    ) -> Dict[int, BatchAnswer]:
        results: Dict[int, BatchAnswer] = {}
        for index, cluster in order:
            results[index] = self._answer_locally(
                index, cluster, estimates[index], report, fallback=False
            )
        return results

    def _answer_locally(
        self,
        index: int,
        cluster: QueryCluster,
        estimate: float,
        report: ExecutionReport,
        fallback: bool,
    ) -> BatchAnswer:
        t0 = time.perf_counter()
        if report.metrics is not None:
            # Mirror the worker path: run the unit under its own registry
            # and fold the snapshot into the fleet accumulator, so serial
            # and parallel runs report identical counter totals.
            unit_registry = MetricsRegistry()
            with use_registry(unit_registry):
                answer = worker.answer_one(self._answerer, cluster)
            snapshot = unit_registry.snapshot()
            for span in snapshot.spans:
                span["attrs"].update({"pid": 0, "unit": index})
            report.metrics.merge(snapshot)
        else:
            answer = worker.answer_one(self._answerer, cluster)
        busy = time.perf_counter() - t0
        report.units.append(
            UnitTrace(
                index=index,
                queries=len(cluster),
                estimate=estimate,
                worker=0,
                queue_wait_seconds=0.0,
                busy_seconds=busy,
                fallback=fallback,
            )
        )
        return answer

    def _run_pool(
        self,
        order: List[Tuple[int, QueryCluster]],
        estimates: Dict[int, float],
        report: ExecutionReport,
        workers: int,
    ) -> Dict[int, BatchAnswer]:
        pool = self._ensure_pool(workers)
        if self._resolved_start_method() == "fork":
            # Re-assert in case another engine replaced the globals since
            # this pool was created (workers fork on first submit).
            worker.set_parent_state(self.graph, self._answerer)
        collect = report.metrics is not None
        submits: List[Tuple[int, QueryCluster, float, object]] = []
        for index, cluster in order:
            submitted = time.time()
            future = pool.submit(worker.answer_unit, (index, cluster, collect))
            submits.append((index, cluster, submitted, future))

        results: Dict[int, BatchAnswer] = {}
        pool_broken = False
        for index, cluster, submitted, future in submits:
            try:
                r_index, answer, pid, started, busy, snapshot = future.result(
                    timeout=self.unit_timeout
                )
            except Exception as exc:
                if not future.cancelled() and not future.done():
                    future.cancel()
                pool_broken = pool_broken or _is_pool_fatal(exc)
                logger.warning(
                    "unit %d (%d queries) failed in worker (%s: %s); "
                    "answering in-process",
                    index,
                    len(cluster),
                    type(exc).__name__,
                    exc,
                )
                results[index] = self._answer_locally(
                    index, cluster, estimates[index], report, fallback=True
                )
                continue
            results[r_index] = answer
            if snapshot is not None and report.metrics is not None:
                report.metrics.merge(snapshot)
            report.units.append(
                UnitTrace(
                    index=r_index,
                    queries=len(cluster),
                    estimate=estimates[r_index],
                    worker=pid,
                    queue_wait_seconds=max(0.0, started - submitted),
                    busy_seconds=busy,
                )
            )
        if pool_broken:
            # Drop the broken pool; the next execute() builds a fresh one.
            self.close()
        return results


def _is_pool_fatal(exc: BaseException) -> bool:
    from concurrent.futures.process import BrokenProcessPool

    return isinstance(exc, BrokenProcessPool)
