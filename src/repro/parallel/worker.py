"""Worker-side state and entry points for the multiprocess engine.

The engine shares the road network with its workers in one of three ways:

* **fork** (Linux default): the parent sets the module globals below just
  before the pool forks, so every child inherits the graph and a ready
  answerer copy-on-write — the graph is never pickled.
* **spawn / forkserver + shared memory** (default when the engine holds a
  frozen graph): the pool initialiser receives a pickled
  ``(CSRHandle, answerer_kind, answerer_kwargs)`` payload — shm segment
  *names* plus metadata, a few hundred bytes — and each worker attaches the
  parent's CSR buffers zero-copy via :meth:`CSRGraph.attach`.
* **spawn / forkserver fallback**: a pickled
  ``(graph, answerer_kind, answerer_kwargs)`` payload rebuilds the whole
  graph once per worker process.

Either way a worker only ever answers whole work units (one query cluster
per call), so all cache state stays private to the unit — exactly the
locality argument that makes the paper's decomposed batches
embarrassingly parallel.
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from typing import Tuple

from ..core.clusters import Decomposition, QueryCluster
from ..core.results import BatchAnswer
from ..exceptions import ConfigurationError, FaultInjectionError
from ..obs import MetricsRegistry, use_registry
from ..resilience.deadline import Deadline, use_deadline
from ..resilience.faults import FAULT_EXIT_CODE, FaultDirective
from ..resilience.watchdog import HEARTBEAT_DONE, HEARTBEAT_START

#: Answerer kinds a worker knows how to build.
ANSWERER_KINDS = ("local-cache", "r2r", "one-by-one")

# Per-process state: set in the parent before a fork pool starts, or by
# :func:`init_spawn` / :func:`init_spawn_shared` inside each spawned worker.
_GRAPH = None
_ANSWERER = None
# Shm-attached CSR snapshot (spawn + shared-memory path), kept for cleanup.
_ATTACHED = None
# One-shot flag: the first metrics-collecting unit after an attach folds the
# attach event into its snapshot so the parent's registry sees it.
_ATTACH_PENDING = False
# Heartbeat queue for the parent's watchdog: set in the parent before a
# fork pool starts (inherited), or via the spawn initialisers' second
# initarg (mp queues pickle through the Process-args channel).
_HEARTBEAT = None


def build_answerer(graph, kind: str, kwargs: dict):
    """Construct the named answerer over ``graph``."""
    kwargs = dict(kwargs or {})
    if kind == "local-cache":
        from ..core.local_cache import LocalCacheAnswerer

        return LocalCacheAnswerer(graph, **kwargs)
    if kind == "r2r":
        from ..core.r2r import RegionToRegionAnswerer

        return RegionToRegionAnswerer(graph, **kwargs)
    if kind == "one-by-one":
        from ..baselines.one_by_one import OneByOneAnswerer

        return OneByOneAnswerer(graph, **kwargs)
    raise ConfigurationError(
        f"unknown answerer kind {kind!r}; choose from {ANSWERER_KINDS}"
    )


def set_parent_state(graph, answerer) -> None:
    """Install fork-inherited state (called in the parent process)."""
    global _GRAPH, _ANSWERER
    _GRAPH = graph
    _ANSWERER = answerer


def clear_parent_state() -> None:
    set_parent_state(None, None)


def set_heartbeat(queue) -> None:
    """Install the watchdog heartbeat queue for this process."""
    global _HEARTBEAT
    _HEARTBEAT = queue


def _beat(event: str, unit: int) -> None:
    """Best-effort heartbeat: a lost beat only delays watchdog detection."""
    if _HEARTBEAT is not None:
        try:
            _HEARTBEAT.put((os.getpid(), unit, event))
        except Exception:  # pragma: no cover - queue torn down mid-unit
            pass


def init_spawn(payload: bytes, heartbeat=None) -> None:
    """Pool initialiser for spawn platforms: rebuild state from a pickle."""
    graph, kind, kwargs = pickle.loads(payload)
    set_heartbeat(heartbeat)
    set_parent_state(graph, build_answerer(graph, kind, kwargs))


def init_spawn_shared(payload: bytes, heartbeat=None) -> None:
    """Pool initialiser for spawn platforms with a shared-memory CSR graph.

    ``payload`` pickles ``(CSRHandle, answerer_kind, answerer_kwargs)`` —
    no graph data crosses the process boundary; the worker attaches the
    parent's buffers by segment name.  The attachment is closed at worker
    exit; the parent owns (and unlinks) the segment.
    """
    global _ATTACHED, _ATTACH_PENDING
    handle, kind, kwargs = pickle.loads(payload)
    set_heartbeat(heartbeat)
    from ..network.csr import CSRGraph

    graph = CSRGraph.attach(handle)
    _ATTACHED = graph
    _ATTACH_PENDING = True
    atexit.register(release_attached)
    # Build the numpy kernel view over the attached buffers eagerly: the
    # first query unit should not pay view construction, and a buffer
    # export that cannot be taken over the shm attachment fails at pool
    # init rather than mid-unit.
    from ..search import np_kernels

    np_kernels.warm_view(graph)
    set_parent_state(graph, build_answerer(graph, kind, kwargs))


def release_attached() -> None:
    """Close this process's shm attachment (idempotent; atexit hook)."""
    global _ATTACHED
    attached, _ATTACHED = _ATTACHED, None
    if attached is not None:
        try:
            attached.release()
        except Exception:  # pragma: no cover - teardown best effort
            pass


def answer_one(answerer, cluster: QueryCluster) -> BatchAnswer:
    """Answer one work unit with ``answerer`` (any supported kind)."""
    from ..baselines.one_by_one import OneByOneAnswerer

    if isinstance(answerer, OneByOneAnswerer):
        return answerer.answer(cluster.as_query_set())
    return answerer.answer(Decomposition([cluster], "unit", 0.0))


def execute_directive(directive: FaultDirective, unit: int) -> None:
    """Carry out one injected fault inside the worker process.

    ``hang`` sleeps and then lets the unit proceed (a slowdown the parent
    may or may not have timed out on); ``crash`` raises so the unit fails
    cleanly; ``exit`` kills the whole process without cleanup, which
    breaks the pool — the parent-side signal for a dead worker.
    """
    if directive.kind == "hang":
        time.sleep(directive.delay_seconds)
    elif directive.kind == "crash":
        raise FaultInjectionError(f"injected crash in unit {unit}")
    elif directive.kind == "exit":
        os._exit(FAULT_EXIT_CODE)
    else:  # pragma: no cover - plan validation rejects unknown kinds
        raise ConfigurationError(f"unknown fault directive {directive.kind!r}")


def answer_unit(payload: Tuple[int, QueryCluster, bool, object, object]):
    """Pool task: answer one ``(index, cluster, collect_metrics, fault,
    deadline_budget)`` unit.

    Returns ``(index, BatchAnswer, pid, started_wall, busy_seconds,
    metrics_snapshot_or_None)``; ``started_wall`` is ``time.time()`` so the
    parent can compute the queue wait against its own submit stamp.  When
    ``collect_metrics`` is set (the parent has a live registry), the unit
    runs under a fresh per-unit :class:`~repro.obs.MetricsRegistry` and its
    snapshot rides home with the answer, spans tagged with this worker's
    pid — the parent merges snapshots so ``workers=k`` reports fleet-wide
    totals.  ``fault`` is ``None`` or the :class:`FaultDirective` the
    parent's :class:`~repro.resilience.FaultPlan` scheduled for this
    attempt; the plan itself never crosses the process boundary.
    ``deadline_budget`` is ``None`` or remaining seconds, re-armed against
    this process's own monotonic clock (a :class:`Deadline` holds an
    absolute instant, which does not transfer between processes); the
    resulting :class:`~repro.exceptions.DeadlineExceededError` pickles
    home through the result pipe.

    Heartbeats bracket the unit (start/done) so the parent's watchdog can
    tell a busy worker from a hung one.
    """
    index, cluster, collect, fault, *rest = payload
    budget = rest[0] if rest else None  # legacy 4-tuple: no deadline
    if _ANSWERER is None:  # pragma: no cover - engine always initialises
        raise ConfigurationError("worker used before initialisation")
    _beat(HEARTBEAT_START, index)
    try:
        if fault is not None:
            execute_directive(fault, index)
        deadline = Deadline(budget) if budget is not None else None
        started = time.time()
        t0 = time.perf_counter()
        if not collect:
            with use_deadline(deadline):
                answer = answer_one(_ANSWERER, cluster)
            busy = time.perf_counter() - t0
            return index, answer, os.getpid(), started, busy, None
        global _ATTACH_PENDING
        registry = MetricsRegistry()
        if _ATTACH_PENDING and _ATTACHED is not None:
            # Report this worker's zero-copy attach exactly once, riding home
            # with the first collected unit's snapshot.
            registry.counter("csr.shm_attaches").add(1)
            registry.counter("csr.shm_attached_bytes").add(_ATTACHED.nbytes)
            _ATTACH_PENDING = False
        with use_registry(registry), use_deadline(deadline):
            answer = answer_one(_ANSWERER, cluster)
        busy = time.perf_counter() - t0
        pid = os.getpid()
        snapshot = registry.snapshot()
        for span in snapshot.spans:
            span["attrs"].update({"pid": pid, "unit": index})
        return index, answer, pid, started, busy, snapshot
    finally:
        _beat(HEARTBEAT_DONE, index)
