"""Super-vertices: collapsing co-located intersection vertices.

Real road networks represent one logical intersection with several graph
vertices (a four-way crossing of dual carriageways uses four, a roundabout
tens).  Section V-A2 observes these are interchangeable for cache hit
testing, so the Local Cache maps every vertex to a *super vertex* — the
representative of all vertices within a snap radius — which raises the hit
ratio and shrinks the cache.

The mapping is built with a uniform spatial hash: vertices are bucketed by
``snap_radius``-sized cells and each vertex joins the super vertex of the
first already-assigned vertex within ``snap_radius`` in its 3x3 cell
neighbourhood (a greedy leader clustering, deterministic in vertex order).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from ..exceptions import ConfigurationError

Cell = Tuple[int, int]


class SuperVertexMap:
    """Vertex -> super-vertex mapping based on spatial proximity."""

    def __init__(self, graph, snap_radius: float) -> None:
        if snap_radius < 0:
            raise ConfigurationError("snap_radius must be non-negative")
        self.graph = graph
        self.snap_radius = snap_radius
        self._super_of: List[int] = list(range(graph.num_vertices))
        self._members: Dict[int, List[int]] = {}
        if snap_radius > 0:
            self._build()
        else:
            self._members = {v: [v] for v in range(graph.num_vertices)}

    def _build(self) -> None:
        graph = self.graph
        r = self.snap_radius
        cell_size = r if r > 0 else 1.0
        buckets: Dict[Cell, List[int]] = {}
        for v in range(graph.num_vertices):
            x, y = graph.xs[v], graph.ys[v]
            ci = int(math.floor(x / cell_size))
            cj = int(math.floor(y / cell_size))
            leader = -1
            for di in (-1, 0, 1):
                for dj in (-1, 0, 1):
                    for u in buckets.get((ci + di, cj + dj), ()):  # assigned earlier
                        if graph.euclidean(u, v) <= r:
                            leader = self._super_of[u]
                            break
                    if leader >= 0:
                        break
                if leader >= 0:
                    break
            if leader < 0:
                leader = v
            self._super_of[v] = leader
            self._members.setdefault(leader, []).append(v)
            buckets.setdefault((ci, cj), []).append(v)

    def super_of(self, v: int) -> int:
        """The super vertex representing ``v`` (possibly ``v`` itself)."""
        return self._super_of[v]

    def members(self, super_vertex: int) -> List[int]:
        """All vertices collapsed into ``super_vertex``."""
        return self._members.get(super_vertex, [])

    def same_super(self, u: int, v: int) -> bool:
        return self._super_of[u] == self._super_of[v]

    @property
    def num_super_vertices(self) -> int:
        return len(self._members)

    @property
    def compression_ratio(self) -> float:
        """Vertices per super vertex (1.0 means no compression happened)."""
        if not self._members:
            return 1.0
        return self.graph.num_vertices / len(self._members)
