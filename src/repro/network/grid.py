"""The adaptive multi-level grid index of Section IV-B1.

The road network is split into ``2^n x 2^n`` equal grids over its bounding
square.  Each finest-level cell stores

* ``n``      — the number of vertices inside it,
* ``theta``  — the weighted average road direction (Eq. 2), and
* ``weight`` — the total edge weight assigned to it,

and coarser levels aggregate their four children (quad-tree style), so a
regional direction summary (Eq. 3) is a constant number of lookups.  The
index also supports the geometric primitives the Search-Space Estimation
decomposition needs: mapping points to cells, listing the cells a query
segment traverses, and finding the cells covered by a search-space ellipse
(a cell counts as covered when at least two of its corners fall inside the
ellipse, plus the traversed cells themselves — Section IV-B2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

try:  # numpy is an optional extra; the ellipse cover has a scalar fallback
    import numpy as np
except ImportError:  # pragma: no cover - exercised via monkeypatched tests
    np = None  # type: ignore[assignment]

from ..exceptions import ConfigurationError
from .spatial import Ellipse, segment_cells

Cell = Tuple[int, int]


@dataclass
class CellSummary:
    """Per-cell aggregates: vertex count, direction, edge-weight mass."""

    n: int = 0
    weight: float = 0.0
    _direction_mass: float = 0.0  # sum of w(e) * e.theta
    vertices: List[int] = field(default_factory=list)

    @property
    def theta(self) -> float:
        """Weighted average road direction in [0, 45] degrees (Eq. 2)."""
        if self.weight <= 0.0:
            return 0.0
        return self._direction_mass / self.weight


def auto_levels(graph, target_vertices_per_cell: float = 4.0) -> int:
    """Pick the grid depth adaptively from the vertex count.

    The paper's grid is "adaptive multi-level": the useful finest level
    keeps a handful of vertices per non-empty cell — fine enough that
    direction summaries are local, coarse enough that ellipse coverage
    stays cheap.  Solving ``4^levels * target = |V|`` and clamping to the
    supported range gives the depth.
    """
    import math as _math

    if target_vertices_per_cell <= 0:
        raise ConfigurationError("target_vertices_per_cell must be positive")
    n = max(graph.num_vertices, 1)
    levels = int(round(_math.log(n / target_vertices_per_cell, 4))) if n > target_vertices_per_cell else 1
    return max(1, min(8, levels))


class GridIndex:
    """Uniform ``2^levels x 2^levels`` grid with quad-tree level summaries."""

    def __init__(self, graph, levels: int = 5, pad: float = 1e-6) -> None:
        if levels < 1 or levels > 12:
            raise ConfigurationError("levels must be in [1, 12]")
        if graph.num_vertices == 0:
            raise ConfigurationError("cannot index an empty network")
        self.graph = graph
        self.levels = levels
        self.cells_per_side = 1 << levels
        min_x, min_y, max_x, max_y = graph.extent()
        side = max(max_x - min_x, max_y - min_y) + pad
        if side <= 0:
            side = pad
        self.origin = (min_x, min_y)
        self.side = side
        self.cell_size = side / self.cells_per_side
        self._cells: Dict[Cell, CellSummary] = {}
        # Coarser summaries: _level_cells[l][(i, j)] for l in 0..levels.
        self._level_cells: List[Dict[Cell, CellSummary]] = [
            {} for _ in range(levels + 1)
        ]
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        for v in range(graph.num_vertices):
            cell = self.cell_of_point(graph.xs[v], graph.ys[v])
            summary = self._cells.setdefault(cell, CellSummary())
            summary.n += 1
            summary.vertices.append(v)
        for u, v, w in graph.edges():
            # An edge contributes its direction to the cell of its midpoint.
            mx = (graph.xs[u] + graph.xs[v]) / 2.0
            my = (graph.ys[u] + graph.ys[v]) / 2.0
            cell = self.cell_of_point(mx, my)
            summary = self._cells.setdefault(cell, CellSummary())
            summary.weight += w
            summary._direction_mass += w * graph.edge_direction(u, v)
        # Aggregate upward: level `levels` is the finest.
        self._level_cells[self.levels] = self._cells
        for level in range(self.levels - 1, -1, -1):
            coarse: Dict[Cell, CellSummary] = {}
            for (i, j), child in self._level_cells[level + 1].items():
                key = (i >> 1, j >> 1)
                agg = coarse.setdefault(key, CellSummary())
                agg.n += child.n
                agg.weight += child.weight
                agg._direction_mass += child._direction_mass
            self._level_cells[level] = coarse

    # ------------------------------------------------------------------
    # Point / cell geometry
    # ------------------------------------------------------------------
    def cell_of_point(self, x: float, y: float) -> Cell:
        """Finest-level cell containing ``(x, y)``, clamped to the grid."""
        i = int((x - self.origin[0]) / self.cell_size)
        j = int((y - self.origin[1]) / self.cell_size)
        last = self.cells_per_side - 1
        return (max(0, min(last, i)), max(0, min(last, j)))

    def cell_of_vertex(self, v: int) -> Cell:
        return self.cell_of_point(self.graph.xs[v], self.graph.ys[v])

    def cell_corners(self, cell: Cell) -> List[Tuple[float, float]]:
        i, j = cell
        x0 = self.origin[0] + i * self.cell_size
        y0 = self.origin[1] + j * self.cell_size
        x1 = x0 + self.cell_size
        y1 = y0 + self.cell_size
        return [(x0, y0), (x1, y0), (x1, y1), (x0, y1)]

    def cell_center(self, cell: Cell) -> Tuple[float, float]:
        i, j = cell
        return (
            self.origin[0] + (i + 0.5) * self.cell_size,
            self.origin[1] + (j + 0.5) * self.cell_size,
        )

    def vertices_in_cell(self, cell: Cell) -> List[int]:
        summary = self._cells.get(cell)
        return summary.vertices if summary else []

    def summary(self, cell: Cell, level: Optional[int] = None) -> CellSummary:
        """The :class:`CellSummary` of ``cell`` at ``level`` (default finest)."""
        lvl = self.levels if level is None else level
        if not 0 <= lvl <= self.levels:
            raise ConfigurationError(f"level {lvl} out of range [0, {self.levels}]")
        return self._level_cells[lvl].get(cell, CellSummary())

    # ------------------------------------------------------------------
    # Direction summarisation (Eqs. 2-3)
    # ------------------------------------------------------------------
    def direction_of_cells(self, cells: Iterable[Cell]) -> float:
        """Weighted average direction of a cell set, in [0, 45] (Eq. 3)."""
        mass = 0.0
        weight = 0.0
        for cell in cells:
            summary = self._cells.get(cell)
            if summary is None:
                continue
            mass += summary._direction_mass
            weight += summary.weight
        if weight <= 0.0:
            return 0.0
        return mass / weight

    # ------------------------------------------------------------------
    # Query-segment and ellipse coverage
    # ------------------------------------------------------------------
    def traversed_cells(self, sx: float, sy: float, tx: float, ty: float) -> List[Cell]:
        """Cells crossed by the straight segment from ``s`` to ``t``."""
        return segment_cells(
            sx, sy, tx, ty, self.origin, self.cell_size, self.cells_per_side
        )

    def covered_cells(self, ellipse: Ellipse, extra: Iterable[Cell] = ()) -> Set[Cell]:
        """Cells covered by a search-space ellipse (Section IV-B2).

        A cell is covered when at least two of its corners lie inside the
        ellipse.  ``extra`` cells (the traversed cells that defined the
        angle) are always included.  Only cells within the ellipse's
        bounding box are examined; corner membership is evaluated for the
        whole sub-grid at once with numpy.
        """
        covered: Set[Cell] = set(extra)
        min_x, min_y, max_x, max_y = ellipse.bounding_box()
        lo = self.cell_of_point(min_x, min_y)
        hi = self.cell_of_point(max_x, max_y)
        ni = hi[0] - lo[0] + 1
        nj = hi[1] - lo[1] + 1
        if ni <= 0 or nj <= 0:
            return covered
        f1x, f1y = ellipse.f1
        f2x, f2y = ellipse.f2
        bound = ellipse.distance_sum + 1e-12
        if np is None:
            # Scalar fallback: same corner lattice, one membership test per
            # point, memoised row-by-row so each corner is evaluated once.
            def inside_at(i: int, j: int) -> int:
                x = self.origin[0] + i * self.cell_size
                y = self.origin[1] + j * self.cell_size
                return int(
                    math.hypot(x - f1x, y - f1y) + math.hypot(x - f2x, y - f2y)
                    <= bound
                )

            prev = [inside_at(lo[0], j) for j in range(lo[1], hi[1] + 2)]
            for i in range(lo[0], hi[0] + 1):
                cur = [inside_at(i + 1, j) for j in range(lo[1], hi[1] + 2)]
                for dj, j in enumerate(range(lo[1], hi[1] + 1)):
                    corners = prev[dj] + prev[dj + 1] + cur[dj] + cur[dj + 1]
                    if corners >= 2:
                        covered.add((i, j))
                prev = cur
            return covered
        # Corner lattice of the (ni x nj) sub-grid: (ni+1) x (nj+1) points.
        xs = self.origin[0] + np.arange(lo[0], hi[0] + 2) * self.cell_size
        ys = self.origin[1] + np.arange(lo[1], hi[1] + 2) * self.cell_size
        gx = xs[:, None]
        gy = ys[None, :]
        inside = (
            np.hypot(gx - f1x, gy - f1y) + np.hypot(gx - f2x, gy - f2y)
            <= bound
        ).astype(np.int8)
        # Per cell: the number of its four corners inside the ellipse.
        corner_count = (
            inside[:-1, :-1] + inside[1:, :-1] + inside[:-1, 1:] + inside[1:, 1:]
        )
        ii, jj = np.nonzero(corner_count >= 2)
        covered.update(zip((ii + lo[0]).tolist(), (jj + lo[1]).tolist()))
        return covered

    def cells_in_box(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> List[Cell]:
        """All cells intersecting an axis-aligned box (clamped to the grid)."""
        lo = self.cell_of_point(min_x, min_y)
        hi = self.cell_of_point(max_x, max_y)
        return [
            (i, j)
            for i in range(lo[0], hi[0] + 1)
            for j in range(lo[1], hi[1] + 1)
        ]

    @property
    def nonempty_cells(self) -> int:
        """Number of finest-level cells holding at least one vertex or edge."""
        return len(self._cells)
