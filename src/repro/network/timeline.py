"""Traffic timelines: the dynamic graph as a series of static snapshots.

Section I: "we use the dynamic graph in this work by viewing it as a
series of static snapshots and using the latest one to describe the
current traffic condition."  :class:`TrafficTimeline` makes that concrete:
a schedule of weight perturbations applied to a live
:class:`~repro.network.graph.RoadNetwork` as simulated time advances.
Every application bumps the graph version, which is what the dynamic batch
session keys its cache flushes on.

Two perturbation models are provided:

* :func:`congestion_snapshot` — multiplicative slowdowns on a random edge
  subset (rush-hour congestion), always keeping ``w >= euclid`` so A*
  stays admissible;
* :func:`incident_snapshot` — a localized incident: edges within a radius
  of a point get slowed hard (an accident or closure-lite).
"""

from __future__ import annotations

import logging
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError

Perturbation = Callable[["object", random.Random], int]

logger = logging.getLogger(__name__)


def congestion_snapshot(fraction: float = 0.15, low: float = 1.2, high: float = 2.5) -> Perturbation:
    """A snapshot that slows a random ``fraction`` of edges by [low, high]x."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must be in (0, 1]")
    if low < 1.0 or high < low:
        raise ConfigurationError("need 1 <= low <= high (slowdowns only)")

    def apply(graph, rng: random.Random) -> int:
        edges = list(graph.edges())
        chosen = rng.sample(edges, max(1, int(len(edges) * fraction)))
        for u, v, w in chosen:
            graph.set_weight(u, v, w * rng.uniform(low, high))
        return len(chosen)

    return apply


def incident_snapshot(radius: float, factor: float = 4.0) -> Perturbation:
    """A snapshot with one localized incident slowing nearby edges.

    The incident centre is a random vertex; every edge whose midpoint lies
    within ``radius`` of it is slowed by ``factor``.
    """
    if radius <= 0:
        raise ConfigurationError("radius must be positive")
    if factor < 1.0:
        raise ConfigurationError("factor must be >= 1 (slowdowns only)")

    def apply(graph, rng: random.Random) -> int:
        centre = rng.randrange(graph.num_vertices)
        cx, cy = graph.coord(centre)
        touched = 0
        for u, v, w in list(graph.edges()):
            mx = (graph.xs[u] + graph.xs[v]) / 2.0
            my = (graph.ys[u] + graph.ys[v]) / 2.0
            if (mx - cx) ** 2 + (my - cy) ** 2 <= radius * radius:
                graph.set_weight(u, v, w * factor)
                touched += 1
        return touched

    return apply


def recovery_snapshot() -> Perturbation:
    """A snapshot restoring every edge toward free flow (cannot go below
    the admissible floor because weights only shrink back to the recorded
    baseline)."""

    def apply(graph, rng: random.Random) -> int:
        # Recovery needs the baseline: stored lazily on first use.
        baseline = getattr(graph, "_timeline_baseline", None)
        if baseline is None:
            return 0
        count = 0
        for (u, v), w in baseline.items():
            if graph.weight(u, v) != w:
                graph.set_weight(u, v, w)
                count += 1
        return count

    return apply


@dataclass
class TimelineEvent:
    """One scheduled snapshot change."""

    at_seconds: float
    perturbation: Perturbation
    label: str = ""


class TrafficTimeline:
    """Replays scheduled weight snapshots onto a live road network.

    Usage::

        timeline = TrafficTimeline(graph, seed=1)
        timeline.schedule(30.0, congestion_snapshot(0.2), "rush hour")
        timeline.schedule(90.0, recovery_snapshot(), "clears")
        ...
        timeline.advance_to(current_seconds)   # applies due events

    ``advance_to`` is monotonic; events fire exactly once, in order.
    """

    def __init__(self, graph, seed: int = 0) -> None:
        self.graph = graph
        self._rng = random.Random(seed)
        self._events: List[TimelineEvent] = []
        self._next = 0
        self.clock = 0.0
        self.applied: List[Tuple[float, str, int]] = []
        # Record the free-flow baseline for recovery snapshots.
        graph._timeline_baseline = {  # noqa: SLF001 - cooperative attribute
            (u, v): w for u, v, w in graph.edges()
        }

    def schedule(self, at_seconds: float, perturbation: Perturbation, label: str = "") -> None:
        """Add an event; events may be scheduled in any order."""
        if at_seconds < 0:
            raise ConfigurationError("event time must be non-negative")
        if at_seconds < self.clock:
            raise ConfigurationError(
                f"cannot schedule at {at_seconds}s: clock already at {self.clock}s"
            )
        self._events.append(TimelineEvent(at_seconds, perturbation, label))
        # Keep the pending suffix sorted; fired events stay in place.
        pending = sorted(self._events[self._next :], key=lambda e: e.at_seconds)
        self._events[self._next :] = pending

    def advance_to(self, seconds: float) -> int:
        """Fire all events due at or before ``seconds``; returns how many."""
        if seconds < self.clock:
            raise ConfigurationError("the timeline clock cannot go backwards")
        fired = 0
        while self._next < len(self._events) and self._events[self._next].at_seconds <= seconds:
            event = self._events[self._next]
            touched = event.perturbation(self.graph, self._rng)
            self.applied.append((event.at_seconds, event.label, touched))
            logger.info(
                "traffic snapshot at t=%.1fs%s: %d edges changed",
                event.at_seconds,
                f" ({event.label})" if event.label else "",
                touched,
            )
            self._next += 1
            fired += 1
        self.clock = seconds
        return fired

    @property
    def pending_events(self) -> int:
        return len(self._events) - self._next
