"""The road-network substrate: a directed spatial graph with dynamic weights.

The paper models a road network as a directed graph ``G(V, E)`` where each
vertex carries a longitude/latitude coordinate and each edge a non-negative
travel cost, and treats the *dynamic* network as a series of static snapshots
(Section I).  :class:`RoadNetwork` implements exactly that: adjacency is
mutable in O(1) per edge so a new snapshot is just a round of
:meth:`RoadNetwork.set_weight` calls, and a monotonically increasing
``version`` lets downstream caches detect that their entries became stale.

Coordinates are kilometres on a local tangent plane.  For A*-style searches
to stay admissible the graph exposes :attr:`RoadNetwork.heuristic_scale`,
the largest ``c`` such that ``c * euclidean(u, v) <= w(u, v)`` for every
edge; multiplying the Euclidean heuristic by it keeps A* exact even when
weights are travel times rather than distances.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..exceptions import GraphError
from .spatial import euclidean, reference_angle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .csr import CSRGraph

EdgeTuple = Tuple[int, int, float]


class RoadNetwork:
    """A directed, spatially embedded road network with mutable edge weights.

    Parameters
    ----------
    xs, ys:
        Vertex coordinates in kilometres; ``len(xs) == len(ys)`` defines the
        number of vertices, numbered ``0 .. n-1``.
    edges:
        Optional iterable of ``(u, v, w)`` tuples to insert at construction.
    """

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        edges: Optional[Iterable[EdgeTuple]] = None,
    ) -> None:
        if len(xs) != len(ys):
            raise GraphError("xs and ys must have the same length")
        self.xs: List[float] = [float(x) for x in xs]
        self.ys: List[float] = [float(y) for y in ys]
        n = len(self.xs)
        # Forward and reverse adjacency: adj[u] is a list of [v, w] pairs.
        # The inner pairs are lists (not tuples) so that set_weight can patch
        # them in place without rebuilding the rows.
        self._adj: List[List[List[float]]] = [[] for _ in range(n)]
        self._radj: List[List[List[float]]] = [[] for _ in range(n)]
        self._edge_pos: Dict[Tuple[int, int], int] = {}
        self._redge_pos: Dict[Tuple[int, int], int] = {}
        self._weight_sum = 0.0
        self._min_ratio: Optional[float] = None
        self._min_ratio_dirty = False
        #: Incremented on every mutation; caches key their validity on it.
        self.version = 0
        self._frozen: Optional["CSRGraph"] = None
        if edges is not None:
            for u, v, w in edges:
                self.add_edge(u, v, w)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.xs)

    @property
    def num_edges(self) -> int:
        return len(self._edge_pos)

    def __len__(self) -> int:
        return self.num_vertices

    def coord(self, v: int) -> Tuple[float, float]:
        """The ``(x, y)`` coordinate of vertex ``v``."""
        return (self.xs[v], self.ys[v])

    def neighbors(self, u: int) -> List[List[float]]:
        """Outgoing ``[v, w]`` pairs of ``u``.  Treat as read-only."""
        return self._adj[u]

    def in_neighbors(self, v: int) -> List[List[float]]:
        """Incoming ``[u, w]`` pairs of ``v``.  Treat as read-only."""
        return self._radj[v]

    def out_degree(self, u: int) -> int:
        return len(self._adj[u])

    def in_degree(self, v: int) -> int:
        return len(self._radj[v])

    def degree(self, v: int) -> int:
        return len(self._adj[v]) + len(self._radj[v])

    def has_edge(self, u: int, v: int) -> bool:
        return (u, v) in self._edge_pos

    def weight(self, u: int, v: int) -> float:
        """Current weight of edge ``(u, v)``; raises if the edge is absent."""
        try:
            pos = self._edge_pos[(u, v)]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None
        return self._adj[u][pos][1]

    def edges(self) -> Iterator[EdgeTuple]:
        """Iterate over all ``(u, v, w)`` edges in insertion order per vertex."""
        for u, row in enumerate(self._adj):
            for v, w in row:
                yield (u, int(v), w)

    def euclidean(self, u: int, v: int) -> float:
        """Euclidean distance between vertices ``u`` and ``v``."""
        return euclidean(self.xs[u], self.ys[u], self.xs[v], self.ys[v])

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < len(self.xs):
            raise GraphError(f"vertex {v} out of range [0, {len(self.xs)})")

    def add_edge(self, u: int, v: int, w: float) -> None:
        """Insert directed edge ``(u, v)`` with weight ``w`` (>= 0)."""
        # Normalise endpoints to int up front: rows store [int, float] so
        # downstream consumers (kernels, ratio recompute) never see a float
        # vertex id even when callers pass numpy scalars or floats.
        u, v = int(u), int(v)
        self._check_vertex(u)
        self._check_vertex(v)
        if w < 0:
            raise GraphError(f"negative weight {w} on edge ({u}, {v})")
        if u == v:
            raise GraphError(f"self-loop on vertex {u} is not allowed")
        if (u, v) in self._edge_pos:
            raise GraphError(f"edge ({u}, {v}) already exists")
        self._edge_pos[(u, v)] = len(self._adj[u])
        self._adj[u].append([v, float(w)])
        self._redge_pos[(u, v)] = len(self._radj[v])
        self._radj[v].append([u, float(w)])
        self._weight_sum += w
        self._note_ratio(u, v, w)
        self.version += 1

    def set_weight(self, u: int, v: int, w: float) -> None:
        """Update the weight of an existing edge in O(1) (dynamic snapshot)."""
        if w < 0:
            raise GraphError(f"negative weight {w} on edge ({u}, {v})")
        try:
            pos = self._edge_pos[(u, v)]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) does not exist") from None
        old = self._adj[u][pos][1]
        self._adj[u][pos][1] = float(w)
        self._radj[v][self._redge_pos[(u, v)]][1] = float(w)
        self._weight_sum += w - old
        # Keep the cached min weight/euclid ratio exact, not merely
        # admissible.  A new ratio at or below the cached minimum *is* the
        # new minimum; a raised ratio on an edge that may have been the
        # argmin (old ratio <= cached min) forces a lazy recompute.
        if not self._min_ratio_dirty:
            d = self.euclidean(u, v)
            if d > 0:
                ratio = float(w) / d
                if self._min_ratio is None or ratio <= self._min_ratio:
                    self._min_ratio = ratio
                elif old / d <= self._min_ratio:
                    self._min_ratio_dirty = True
        self.version += 1

    def scale_weights(self, factor: float, edges: Optional[Iterable[Tuple[int, int]]] = None) -> None:
        """Multiply the weight of ``edges`` (or all edges) by ``factor``.

        A convenience for simulating a traffic snapshot change: congestion is
        an epoch-wide multiplicative perturbation.
        """
        if factor < 0:
            raise GraphError("scale factor must be non-negative")
        if edges is None:
            pairs = list(self._edge_pos.keys())
        else:
            pairs = list(edges)
        for u, v in pairs:
            self.set_weight(u, v, self.weight(u, v) * factor)

    # ------------------------------------------------------------------
    # Heuristic admissibility support
    # ------------------------------------------------------------------
    def _note_ratio(self, u: int, v: int, w: float) -> None:
        d = self.euclidean(u, v)
        if d <= 0:
            return
        ratio = w / d
        if self._min_ratio is None or ratio < self._min_ratio:
            self._min_ratio = ratio

    @property
    def heuristic_scale(self) -> float:
        """Largest ``c`` with ``c * euclid(u, v) <= w(u, v)`` for all edges.

        Multiplying the Euclidean distance by this scale yields an admissible
        and consistent A* heuristic regardless of whether weights are metres,
        minutes or toll dollars.  Returns ``0.0`` for an edgeless graph, which
        degrades A* to Dijkstra.
        """
        if self._min_ratio_dirty:
            self._min_ratio = None
            for u, row in enumerate(self._adj):
                for v, w in row:
                    self._note_ratio(u, int(v), w)
            self._min_ratio_dirty = False
        if self._min_ratio is None:
            return 0.0
        return max(0.0, min(self._min_ratio, 1e18))

    def heuristic(self, u: int, v: int) -> float:
        """Admissible lower bound on the travel cost from ``u`` to ``v``."""
        return self.euclidean(u, v) * self.heuristic_scale

    # ------------------------------------------------------------------
    # Derived spatial summaries
    # ------------------------------------------------------------------
    def extent(self) -> Tuple[float, float, float, float]:
        """Bounding box ``(min_x, min_y, max_x, max_y)`` of all vertices."""
        if not self.xs:
            raise GraphError("extent of an empty network")
        return (min(self.xs), min(self.ys), max(self.xs), max(self.ys))

    def edge_direction(self, u: int, v: int) -> float:
        """Offset of edge ``(u, v)`` from the lat/lon reference, in [0, 45]."""
        return reference_angle(self.xs[v] - self.xs[u], self.ys[v] - self.ys[u])

    def total_weight(self) -> float:
        """Sum of all current edge weights."""
        return self._weight_sum

    def path_prefix_weights(self, path: Sequence[int]) -> List[float]:
        """Cumulative weights along ``path``: ``prefix[i] = d(path[0], path[i])``.

        Raises :class:`GraphError` if any consecutive pair is not an edge.
        """
        adj = self._adj
        edge_pos = self._edge_pos
        prefix = [0.0]
        total = 0.0
        for u, v in zip(path, path[1:]):
            try:
                total += adj[u][edge_pos[(u, v)]][1]
            except KeyError:
                raise GraphError(f"edge ({u}, {v}) does not exist") from None
            prefix.append(total)
        return prefix

    # ------------------------------------------------------------------
    # Frozen CSR snapshots
    # ------------------------------------------------------------------
    def freeze(self) -> "CSRGraph":
        """Return a flat-array :class:`~repro.network.csr.CSRGraph` snapshot.

        The snapshot is cached and keyed to :attr:`version`: repeated calls
        return the *same object* until the network mutates, so answerers and
        the parallel engine can freeze eagerly without duplicating work.
        Freezing also recomputes :attr:`total_weight` exactly, flushing any
        float drift accumulated by incremental ``set_weight`` updates.
        """
        frozen = self._frozen
        if frozen is not None and frozen.version == self.version:
            return frozen
        from .csr import freeze_network

        # Exact (fsum) recompute of the incrementally maintained weight sum:
        # each set_weight adds `w - old` in floating point, and over long
        # churn the rounding errors drift.
        self._weight_sum = math.fsum(w for row in self._adj for _, w in row)
        frozen, seconds = freeze_network(self)
        self._frozen = frozen
        from .. import obs

        obs.record_freeze(frozen.num_vertices, frozen.num_edges, seconds)
        return frozen

    def frozen_or_none(self) -> Optional["CSRGraph"]:
        """The cached frozen snapshot if still valid for :attr:`version`."""
        frozen = self._frozen
        if frozen is not None and frozen.version == self.version:
            return frozen
        return None

    def __getstate__(self) -> Dict[str, object]:
        # Never ship the frozen snapshot inside a pickled network: it is
        # derived state, may be shm-backed (unpicklable by design), and
        # spawn workers re-freeze or attach explicitly.
        state = self.__dict__.copy()
        state["_frozen"] = None
        return state

    def reversed_copy(self) -> "RoadNetwork":
        """A new network with every edge direction flipped."""
        rev = RoadNetwork(self.xs, self.ys)
        for u, v, w in self.edges():
            rev.add_edge(v, u, w)
        return rev

    def copy(self) -> "RoadNetwork":
        """Deep copy (independent weights)."""
        return RoadNetwork(self.xs, self.ys, self.edges())

    def is_strongly_connected_sample(self, samples: int = 5, seed: int = 0) -> bool:
        """Cheap probe: can a few random vertices reach/be reached by vertex 0?

        Not a full SCC check (that is ``repro.search.dijkstra.sssp`` territory)
        but a fast sanity guard used by the generators' self-tests.
        """
        import random

        from ..search.dijkstra import sssp_distances

        if self.num_vertices == 0:
            return True
        rng = random.Random(seed)
        fwd = sssp_distances(self, 0)
        bwd = sssp_distances(self, 0, backward=True)
        for _ in range(samples):
            v = rng.randrange(self.num_vertices)
            if math.isinf(fwd[v]) or math.isinf(bwd[v]):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RoadNetwork(|V|={self.num_vertices}, |E|={self.num_edges}, "
            f"version={self.version})"
        )
