"""Frozen CSR (compressed-sparse-row) snapshots of a :class:`RoadNetwork`.

The dict-of-lists adjacency in :mod:`repro.network.graph` is the *mutable*
representation: O(1) weight updates make dynamic snapshots cheap, which is
what the paper's Section I model needs.  But every search pays for that
flexibility — per-call ``dict`` distance maps, boxed ``[v, w]`` pair lists,
and (on spawn platforms) a full graph unpickle per pool worker.

:class:`CSRGraph` is the *frozen* counterpart: forward and reverse adjacency
as flat ``array('i')``/``array('d')`` offset+target+weight arrays plus the
coordinate arrays and a precomputed ``heuristic_scale``, all keyed to the
source network's ``version``.  ``RoadNetwork.freeze()`` builds (and caches)
one; the search layer transparently switches to the index-based kernels in
:mod:`repro.search.csr_kernels` whenever it is handed a frozen graph.

Because the payload is a handful of flat typed buffers, a snapshot can be
placed in :mod:`multiprocessing.shared_memory` and *attached* by spawn
workers instead of unpickled: :func:`share_csr` publishes the buffers under
one segment, :meth:`CSRGraph.attach` maps them zero-copy from the segment
name.  Ownership stays with the parent (:class:`SharedCSR` closes *and*
unlinks); workers only ever ``close`` their attachment.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..exceptions import GraphError
from .spatial import euclidean as _point_euclidean

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.shared_memory import SharedMemory

    from .graph import RoadNetwork

__all__ = [
    "CSRGraph",
    "CSRHandle",
    "SharedCSR",
    "share_csr",
    "shared_size",
]

#: Decoded adjacency: ``rows[u]`` is a tuple of ``(v, w)`` pairs.  Tuples of
#: tuples iterate measurably faster than indexing the flat arrays from
#: CPython, so the kernels run over this per-process decode while the flat
#: arrays stay the canonical (and shareable) representation.
Rows = Tuple[Tuple[Tuple[int, float], ...], ...]

IntBuffer = Union["array[int]", memoryview]
FloatBuffer = Union["array[float]", memoryview]

_ITEMSIZE = {"d": 8, "i": 4}


def _layout(n: int, m: int) -> Tuple[Tuple[str, str, int], ...]:
    """Segment layout: ``(attribute, typecode, count)`` in storage order.

    All doubles precede all int32s so every block stays naturally aligned
    for ``memoryview.cast`` without padding bookkeeping.
    """
    return (
        ("fweight", "d", m),
        ("rweight", "d", m),
        ("xs", "d", n),
        ("ys", "d", n),
        ("findptr", "i", n + 1),
        ("ftarget", "i", m),
        ("rindptr", "i", n + 1),
        ("rtarget", "i", m),
    )


def shared_size(n: int, m: int) -> int:
    """Exact byte size of the shared-memory segment for an ``n``/``m`` graph."""
    return sum(count * _ITEMSIZE[code] for _, code, count in _layout(n, m))


@dataclass(frozen=True)
class CSRHandle:
    """Everything a worker needs to attach a shared snapshot: names, not data."""

    name: str
    num_vertices: int
    num_edges: int
    heuristic_scale: float
    version: int


class CSRGraph:
    """Read-only flat-array snapshot of a road network.

    Exposes the read-only subset of the :class:`RoadNetwork` API that the
    search kernels, answerers and decomposers consume (``xs``/``ys``,
    ``coord``, ``euclidean``, ``heuristic``, ``weight``, ``neighbors``,
    ``extent`` ...), so it can stand in for the mutable graph anywhere no
    mutation happens — in particular inside pool workers.
    """

    __slots__ = (
        "findptr",
        "ftarget",
        "fweight",
        "rindptr",
        "rtarget",
        "rweight",
        "xs",
        "ys",
        "heuristic_scale",
        "version",
        "_n",
        "_m",
        "_frows",
        "_rrows",
        "_coords",
        "_scratch",
        "_npview",
        "_shm",
        "_views",
    )

    def __init__(
        self,
        *,
        num_vertices: int,
        num_edges: int,
        findptr: IntBuffer,
        ftarget: IntBuffer,
        fweight: FloatBuffer,
        rindptr: IntBuffer,
        rtarget: IntBuffer,
        rweight: FloatBuffer,
        xs: FloatBuffer,
        ys: FloatBuffer,
        heuristic_scale: float,
        version: int,
    ) -> None:
        self._n = num_vertices
        self._m = num_edges
        self.findptr = findptr
        self.ftarget = ftarget
        self.fweight = fweight
        self.rindptr = rindptr
        self.rtarget = rtarget
        self.rweight = rweight
        self.xs = xs
        self.ys = ys
        self.heuristic_scale = heuristic_scale
        self.version = version
        self._frows: Optional[Rows] = None
        self._rrows: Optional[Rows] = None
        self._coords: Optional[Tuple[List[float], List[float]]] = None
        #: Per-snapshot search workspace, lazily attached by the kernels.
        self._scratch: Optional[object] = None
        #: Lazily-built numpy views of the flat buffers (np_kernels).
        self._npview: Optional[object] = None
        self._shm: Optional["SharedMemory"] = None
        self._views: List[memoryview] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_network(cls, net: "RoadNetwork") -> "CSRGraph":
        """Build a frozen snapshot of ``net`` (prefer ``net.freeze()``)."""
        n = net.num_vertices
        findptr: List[int] = [0] * (n + 1)
        ftarget: List[int] = []
        fweight: List[float] = []
        for u, row in enumerate(net._adj):  # noqa: SLF001 - snapshot build
            for v, w in row:
                ftarget.append(int(v))
                fweight.append(w)
            findptr[u + 1] = len(ftarget)
        rindptr: List[int] = [0] * (n + 1)
        rtarget: List[int] = []
        rweight: List[float] = []
        for v, row in enumerate(net._radj):  # noqa: SLF001 - snapshot build
            for u, w in row:
                rtarget.append(int(u))
                rweight.append(w)
            rindptr[v + 1] = len(rtarget)
        return cls(
            num_vertices=n,
            num_edges=len(ftarget),
            findptr=array("i", findptr),
            ftarget=array("i", ftarget),
            fweight=array("d", fweight),
            rindptr=array("i", rindptr),
            rtarget=array("i", rtarget),
            rweight=array("d", rweight),
            xs=array("d", net.xs),
            ys=array("d", net.ys),
            heuristic_scale=net.heuristic_scale,
            version=net.version,
        )

    # ------------------------------------------------------------------
    # RoadNetwork-compatible read-only API
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return self._m

    def __len__(self) -> int:
        return self._n

    def coord(self, v: int) -> Tuple[float, float]:
        return (self.xs[v], self.ys[v])

    def euclidean(self, u: int, v: int) -> float:
        return _point_euclidean(self.xs[u], self.ys[u], self.xs[v], self.ys[v])

    def heuristic(self, u: int, v: int) -> float:
        return self.euclidean(u, v) * self.heuristic_scale

    def neighbors(self, u: int) -> Sequence[Tuple[int, float]]:
        """Outgoing ``(v, w)`` pairs of ``u`` (immutable)."""
        return self.forward_rows()[u]

    def in_neighbors(self, v: int) -> Sequence[Tuple[int, float]]:
        """Incoming ``(u, w)`` pairs of ``v`` (immutable)."""
        return self.reverse_rows()[v]

    def out_degree(self, u: int) -> int:
        return self.findptr[u + 1] - self.findptr[u]

    def in_degree(self, v: int) -> int:
        return self.rindptr[v + 1] - self.rindptr[v]

    def degree(self, v: int) -> int:
        return self.out_degree(v) + self.in_degree(v)

    def has_edge(self, u: int, v: int) -> bool:
        for t, _ in self.forward_rows()[u]:
            if t == v:
                return True
        return False

    def weight(self, u: int, v: int) -> float:
        for t, w in self.forward_rows()[u]:
            if t == v:
                return w
        raise GraphError(f"edge ({u}, {v}) does not exist")

    def edges(self) -> Iterator[Tuple[int, int, float]]:
        rows = self.forward_rows()
        for u in range(self._n):
            for v, w in rows[u]:
                yield (u, v, w)

    def extent(self) -> Tuple[float, float, float, float]:
        if self._n == 0:
            raise GraphError("extent of an empty network")
        return (min(self.xs), min(self.ys), max(self.xs), max(self.ys))

    def total_weight(self) -> float:
        import math

        return math.fsum(self.fweight)

    def path_prefix_weights(self, path: Sequence[int]) -> List[float]:
        """Cumulative weights along ``path``: ``prefix[i] = d(path[0], path[i])``."""
        rows = self.forward_rows()
        prefix = [0.0]
        total = 0.0
        for u, v in zip(path, path[1:]):
            for t, w in rows[u]:
                if t == v:
                    total += w
                    break
            else:
                raise GraphError(f"edge ({u}, {v}) does not exist")
            prefix.append(total)
        return prefix

    # A CSRGraph is its own frozen form, so code holding either kind of
    # graph can call freeze()/frozen_or_none() unconditionally.
    def freeze(self) -> "CSRGraph":
        return self

    def frozen_or_none(self) -> Optional["CSRGraph"]:
        return self

    # ------------------------------------------------------------------
    # Kernel-facing decoded views (per-process, lazily built)
    # ------------------------------------------------------------------
    def forward_rows(self) -> Rows:
        if self._frows is None:
            self._frows = self._decode(self.findptr, self.ftarget, self.fweight)
        return self._frows

    def reverse_rows(self) -> Rows:
        if self._rrows is None:
            self._rrows = self._decode(self.rindptr, self.rtarget, self.rweight)
        return self._rrows

    def coord_lists(self) -> Tuple[List[float], List[float]]:
        if self._coords is None:
            self._coords = (list(self.xs), list(self.ys))
        return self._coords

    def _decode(self, indptr: IntBuffer, target: IntBuffer, weight: FloatBuffer) -> Rows:
        targets = target.tolist()
        weights = weight.tolist()
        offsets = indptr.tolist()
        return tuple(
            tuple(zip(targets[offsets[u] : offsets[u + 1]], weights[offsets[u] : offsets[u + 1]]))
            for u in range(self._n)
        )

    # ------------------------------------------------------------------
    # Shared-memory attachment (worker side)
    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        """Byte size of the flat buffers (== shared segment payload)."""
        return shared_size(self._n, self._m)

    @property
    def is_attached(self) -> bool:
        return self._shm is not None

    @classmethod
    def attach(cls, handle: CSRHandle) -> "CSRGraph":
        """Map a parent-published snapshot zero-copy from shared memory."""
        from multiprocessing import resource_tracker, shared_memory

        shm = shared_memory.SharedMemory(name=handle.name)
        # SharedMemory(name=...) registers the segment with this process's
        # resource tracker, which would unlink it when the *worker* exits.
        # Ownership stays with the parent, so untrack the attachment.
        try:
            resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
        except Exception:  # pragma: no cover - tracker impl detail
            pass
        n, m = handle.num_vertices, handle.num_edges
        root = memoryview(shm.buf)
        views: List[memoryview] = [root]
        buffers: Dict[str, Any] = {}
        offset = 0
        for attr, code, count in _layout(n, m):
            nbytes = count * _ITEMSIZE[code]
            view = root[offset : offset + nbytes].cast(code)
            views.append(view)
            buffers[attr] = view
            offset += nbytes
        csr = cls(
            num_vertices=n,
            num_edges=m,
            heuristic_scale=handle.heuristic_scale,
            version=handle.version,
            **buffers,
        )
        csr._shm = shm
        csr._views = views
        from .. import obs

        obs.record_shm_attach(shm.size)
        return csr

    def release(self) -> None:
        """Drop all buffer views and close the shm attachment (idempotent).

        A no-op on local (non-attached) snapshots.  After release every
        buffer of an attached snapshot is an empty array, so accidental use
        raises ``IndexError`` instead of touching unmapped memory.
        """
        shm, self._shm = self._shm, None
        views, self._views = self._views, []
        # numpy views hold buffer exports over the memoryviews below; they
        # must be dropped first or ``view.release()`` raises BufferError.
        self._npview = None
        if shm is not None:
            self._frows = None
            self._rrows = None
            self._coords = None
            self._scratch = None
            for attr, code, _ in _layout(self._n, self._m):
                setattr(self, attr, array(code))
        for view in views:
            view.release()
        if shm is not None:
            shm.close()

    # ------------------------------------------------------------------
    # Pickle support: drop per-process caches, forbid attached instances
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        if self._shm is not None:
            raise GraphError(
                "cannot pickle an shm-attached CSRGraph; ship the CSRHandle instead"
            )
        state: Dict[str, Any] = {
            "num_vertices": self._n,
            "num_edges": self._m,
            "heuristic_scale": self.heuristic_scale,
            "version": self.version,
        }
        for attr, code, _ in _layout(self._n, self._m):
            value = getattr(self, attr)
            state[attr] = value if isinstance(value, array) else array(code, value)
        return state

    def __reduce__(self) -> Tuple[Any, ...]:
        return (_rebuild_csr, (self.__getstate__(),))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "shm" if self._shm is not None else "local"
        return (
            f"CSRGraph(|V|={self._n}, |E|={self._m}, version={self.version}, "
            f"{kind})"
        )


def _rebuild_csr(state: Dict[str, Any]) -> CSRGraph:
    return CSRGraph(**state)


class SharedCSR:
    """Parent-side owner of one shared-memory CSR segment.

    The owner is the only party that ``unlink``s; :meth:`close` is
    idempotent and wired through the engine's shutdown/degradation ladder
    so the segment is reclaimed on clean shutdown, worker crash and
    circuit-breaker serial fallback alike.
    """

    def __init__(self, shm: "SharedMemory", handle: CSRHandle) -> None:
        self._shm: Optional["SharedMemory"] = shm
        self.handle = handle
        self.nbytes = shm.size

    @property
    def is_open(self) -> bool:
        return self._shm is not None

    def close(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        from multiprocessing import resource_tracker

        try:
            shm.close()
        finally:
            # A same-process attach (tests, diagnostics) unregisters the
            # name from this process's resource tracker; re-register it so
            # unlink's own unregister always has something to remove.
            try:
                resource_tracker.register(shm._name, "shared_memory")  # noqa: SLF001
            except Exception:  # pragma: no cover - tracker impl detail
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reclaimed
                try:
                    resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
                except Exception:
                    pass

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.is_open else "closed"
        return f"SharedCSR({self.handle.name!r}, {self.nbytes} bytes, {state})"


def share_csr(csr: CSRGraph) -> SharedCSR:
    """Publish ``csr``'s flat buffers under one shared-memory segment."""
    from multiprocessing import shared_memory

    n, m = csr.num_vertices, csr.num_edges
    size = shared_size(n, m)
    shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
    buf = shm.buf
    offset = 0
    for attr, code, count in _layout(n, m):
        nbytes = count * _ITEMSIZE[code]
        raw = getattr(csr, attr).tobytes()
        if len(raw) != nbytes:  # pragma: no cover - structural invariant
            raise GraphError(f"buffer {attr!r} has {len(raw)} bytes, expected {nbytes}")
        buf[offset : offset + nbytes] = raw
        offset += nbytes
    handle = CSRHandle(
        name=shm.name,
        num_vertices=n,
        num_edges=m,
        heuristic_scale=csr.heuristic_scale,
        version=csr.version,
    )
    from .. import obs

    obs.record_shm_share(size)
    return SharedCSR(shm, handle)


def freeze_network(net: "RoadNetwork") -> Tuple[CSRGraph, float]:
    """Build a snapshot of ``net`` and report the build time (seconds)."""
    start = perf_counter()
    csr = CSRGraph.from_network(net)
    return csr, perf_counter() - start
