"""Synthetic road-network generators.

The paper evaluates on a proprietary NavInfo Beijing network (312,350
intersections over 184 km x 185 km).  These generators build networks with
the structural properties the paper's algorithms actually exploit:

* a planar spatial embedding with mostly axis-aligned / locally parallel
  roads (the Search-Space Estimation method summarises road directions per
  grid cell and assumes they cluster, Section IV-B1);
* edge weights that dominate the Euclidean distance (A* admissibility);
* ring + arterial structure that concentrates traffic and creates the path
  coherence batch processing feeds on.

``grid_city`` is the deterministic benchmark workhorse; ``ring_radial_city``
adds the Beijing-style ring-road topology; ``random_geometric_city`` gives
an irregular network for robustness testing.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConfigurationError
from .graph import RoadNetwork


def _two_way(
    graph: RoadNetwork,
    u: int,
    v: int,
    rng: random.Random,
    min_detour: float,
    max_detour: float,
) -> None:
    """Add both directions of a road with independent detour factors >= 1."""
    d = graph.euclidean(u, v)
    graph.add_edge(u, v, d * rng.uniform(min_detour, max_detour))
    graph.add_edge(v, u, d * rng.uniform(min_detour, max_detour))


def grid_city(
    rows: int,
    cols: int,
    spacing: float = 1.0,
    jitter: float = 0.15,
    min_detour: float = 1.0,
    max_detour: float = 1.4,
    diagonal_avenues: int = 0,
    seed: int = 0,
) -> RoadNetwork:
    """A jittered Manhattan grid: ``rows x cols`` intersections.

    Every lattice neighbour pair is connected by a two-way road whose weight
    is the Euclidean length times a detour factor in
    ``[min_detour, max_detour]``.  ``jitter`` displaces intersections by up
    to that fraction of ``spacing`` so the network is not degenerate.
    ``diagonal_avenues`` adds that many random diagonal shortcut chains,
    emulating arterial avenues.
    """
    if rows < 2 or cols < 2:
        raise ConfigurationError("grid_city needs at least a 2x2 grid")
    if jitter < 0 or jitter >= 0.5:
        raise ConfigurationError("jitter must be in [0, 0.5) to keep the grid planar")
    if min_detour < 1.0 or max_detour < min_detour:
        raise ConfigurationError("detour factors must satisfy 1 <= min <= max")
    rng = random.Random(seed)
    xs: List[float] = []
    ys: List[float] = []
    for r in range(rows):
        for c in range(cols):
            xs.append(c * spacing + rng.uniform(-jitter, jitter) * spacing)
            ys.append(r * spacing + rng.uniform(-jitter, jitter) * spacing)
    graph = RoadNetwork(xs, ys)

    def vid(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                _two_way(graph, vid(r, c), vid(r, c + 1), rng, min_detour, max_detour)
            if r + 1 < rows:
                _two_way(graph, vid(r, c), vid(r + 1, c), rng, min_detour, max_detour)

    for _ in range(diagonal_avenues):
        r = rng.randrange(rows - 1)
        c = rng.randrange(cols - 1)
        length = rng.randrange(2, max(3, min(rows, cols) // 2))
        for _step in range(length):
            if r + 1 >= rows or c + 1 >= cols:
                break
            u, v = vid(r, c), vid(r + 1, c + 1)
            if not graph.has_edge(u, v):
                # Avenues are faster: detour close to 1.
                _two_way(graph, u, v, rng, 1.0, 1.05)
            r += 1
            c += 1
    return graph


def ring_radial_city(
    rings: int = 6,
    spokes: int = 16,
    ring_spacing: float = 4.0,
    points_between_spokes: int = 3,
    jitter: float = 0.05,
    min_detour: float = 1.0,
    max_detour: float = 1.3,
    seed: int = 0,
) -> RoadNetwork:
    """A Beijing-like ring-road network.

    ``rings`` concentric rings at radii ``ring_spacing * (1..rings)`` are
    subdivided at every spoke angle plus ``points_between_spokes`` extra
    points per arc; consecutive ring points are connected along the ring and
    spoke points are connected radially (including a central hub vertex).
    The result is strongly connected by construction.
    """
    if rings < 1 or spokes < 3:
        raise ConfigurationError("need at least 1 ring and 3 spokes")
    rng = random.Random(seed)
    xs: List[float] = [0.0]
    ys: List[float] = [0.0]
    # ring_ids[r][k] = vertex at ring r (0-based), angular slot k.
    slots = spokes * (points_between_spokes + 1)
    ring_ids: List[List[int]] = []
    for r in range(rings):
        radius = ring_spacing * (r + 1)
        row: List[int] = []
        for k in range(slots):
            angle = 2.0 * math.pi * k / slots
            jr = radius * (1.0 + rng.uniform(-jitter, jitter))
            xs.append(jr * math.cos(angle))
            ys.append(jr * math.sin(angle))
            row.append(len(xs) - 1)
        ring_ids.append(row)
    graph = RoadNetwork(xs, ys)

    for r in range(rings):
        row = ring_ids[r]
        for k in range(slots):
            _two_way(graph, row[k], row[(k + 1) % slots], rng, min_detour, max_detour)

    step = points_between_spokes + 1
    for s in range(spokes):
        k = s * step
        # Hub to innermost ring: fast arterial.
        _two_way(graph, 0, ring_ids[0][k], rng, 1.0, 1.05)
        for r in range(rings - 1):
            _two_way(graph, ring_ids[r][k], ring_ids[r + 1][k], rng, 1.0, 1.1)
    return graph


def random_geometric_city(
    num_vertices: int,
    side: float = 50.0,
    min_detour: float = 1.0,
    max_detour: float = 1.5,
    seed: int = 0,
) -> RoadNetwork:
    """An irregular network: Delaunay triangulation of random points.

    Delaunay edges guarantee connectivity and planarity, approximating an
    organically grown road network.  Requires :mod:`scipy`; used mainly by
    robustness tests, not by the headline benchmarks.
    """
    if num_vertices < 4:
        raise ConfigurationError("random_geometric_city needs >= 4 vertices")
    try:
        import numpy as np
        from scipy.spatial import Delaunay
    except ImportError as exc:  # pragma: no cover - scipy is a test extra
        raise ConfigurationError("random_geometric_city requires scipy") from exc
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0.0, side, size=(num_vertices, 2))
    tri = Delaunay(pts)
    graph = RoadNetwork(pts[:, 0].tolist(), pts[:, 1].tolist())
    py_rng = random.Random(seed)
    seen = set()
    for simplex in tri.simplices:
        for i in range(3):
            a = int(simplex[i])
            b = int(simplex[(i + 1) % 3])
            key = (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            _two_way(graph, a, b, py_rng, min_detour, max_detour)
    return graph


def beijing_like(scale: str = "small", seed: int = 0) -> RoadNetwork:
    """Pre-tuned ring-radial networks standing in for the Beijing dataset.

    ============ ============ ============== =================
    scale        ~vertices    extent (diam)  intended use
    ============ ============ ============== =================
    ``tiny``     ~145         32 km          unit tests
    ``small``    ~960         80 km          fast benchmarks
    ``medium``   ~2.9k        128 km         headline benchmarks
    ``large``    ~6.9k        192 km         stress runs
    ``xlarge``   ~20.7k       288 km         kernel benchmarks
    ============ ============ ============== =================
    """
    presets: Dict[str, Tuple[int, int, float, int]] = {
        "tiny": (4, 12, 4.0, 2),
        "small": (10, 24, 4.0, 3),
        "medium": (16, 36, 4.0, 4),
        "large": (24, 48, 4.0, 5),
        "xlarge": (36, 64, 4.0, 8),
    }
    try:
        rings, spokes, spacing, between = presets[scale]
    except KeyError:
        raise ConfigurationError(
            f"unknown scale {scale!r}; choose from {sorted(presets)}"
        ) from None
    return ring_radial_city(
        rings=rings,
        spokes=spokes,
        ring_spacing=spacing,
        points_between_spokes=between,
        seed=seed,
    )
