"""Road-network substrate: graphs, generators, spatial indexes, geometry."""

from .convexhull import convex_hull, hull_bounding_box, point_in_hull
from .csr import CSRGraph, CSRHandle, SharedCSR, share_csr
from .generators import (
    beijing_like,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from .graph import RoadNetwork
from .grid import CellSummary, GridIndex, auto_levels
from .io import load_json, load_text, save_json, save_text
from .spatial import (
    Ellipse,
    angular_difference,
    bearing_angle,
    euclidean,
    fold_theta,
    reference_angle,
    search_space_ellipse,
)
from .supervertex import SuperVertexMap
from .timeline import (
    TrafficTimeline,
    congestion_snapshot,
    incident_snapshot,
    recovery_snapshot,
)

__all__ = [
    "CSRGraph",
    "CSRHandle",
    "CellSummary",
    "Ellipse",
    "GridIndex",
    "RoadNetwork",
    "SharedCSR",
    "SuperVertexMap",
    "share_csr",
    "TrafficTimeline",
    "angular_difference",
    "auto_levels",
    "bearing_angle",
    "beijing_like",
    "congestion_snapshot",
    "convex_hull",
    "euclidean",
    "fold_theta",
    "grid_city",
    "hull_bounding_box",
    "incident_snapshot",
    "load_json",
    "load_text",
    "point_in_hull",
    "random_geometric_city",
    "recovery_snapshot",
    "reference_angle",
    "ring_radial_city",
    "save_json",
    "save_text",
    "search_space_ellipse",
]
