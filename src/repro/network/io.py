"""Serialisation of road networks.

Two formats are supported:

* a human-readable text format close to the DIMACS challenge files
  (``p`` header, ``v id x y`` vertex lines, ``a u v w`` arc lines), and
* JSON, convenient for small fixtures checked into test suites.

Both round-trip exactly (weights are written with ``repr`` precision).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Tuple, Union

from ..exceptions import GraphError
from .graph import RoadNetwork

PathLike = Union[str, Path]


def save_text(graph: RoadNetwork, path: PathLike) -> None:
    """Write ``graph`` in the DIMACS-like text format."""
    lines: List[str] = [f"p sp {graph.num_vertices} {graph.num_edges}"]
    for v in range(graph.num_vertices):
        lines.append(f"v {v} {graph.xs[v]!r} {graph.ys[v]!r}")
    for u, v, w in graph.edges():
        lines.append(f"a {u} {v} {w!r}")
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_text(path: PathLike) -> RoadNetwork:
    """Read a network written by :func:`save_text`."""
    xs: List[float] = []
    ys: List[float] = []
    edges: List[Tuple[int, int, float]] = []
    declared_vertices = declared_edges = None
    with open(path, encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            kind = parts[0]
            try:
                if kind == "p":
                    declared_vertices = int(parts[2])
                    declared_edges = int(parts[3])
                    xs = [0.0] * declared_vertices
                    ys = [0.0] * declared_vertices
                elif kind == "v":
                    vid = int(parts[1])
                    xs[vid] = float(parts[2])
                    ys[vid] = float(parts[3])
                elif kind == "a":
                    edges.append((int(parts[1]), int(parts[2]), float(parts[3])))
                else:
                    raise GraphError(f"unknown record {kind!r}")
            except (IndexError, ValueError) as exc:
                raise GraphError(f"{path}:{line_no}: malformed line {line!r}") from exc
    if declared_vertices is None:
        raise GraphError(f"{path}: missing 'p' header")
    if declared_edges is not None and declared_edges != len(edges):
        raise GraphError(
            f"{path}: header declares {declared_edges} edges, found {len(edges)}"
        )
    return RoadNetwork(xs, ys, edges)


def save_json(graph: RoadNetwork, path: PathLike) -> None:
    """Write ``graph`` as a JSON object with ``xs``, ``ys`` and ``edges``."""
    payload = {
        "xs": graph.xs,
        "ys": graph.ys,
        "edges": [[u, v, w] for u, v, w in graph.edges()],
    }
    Path(path).write_text(json.dumps(payload), encoding="utf-8")


def load_json(path: PathLike) -> RoadNetwork:
    """Read a network written by :func:`save_json`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
        return RoadNetwork(
            payload["xs"],
            payload["ys"],
            [(int(u), int(v), float(w)) for u, v, w in payload["edges"]],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise GraphError(f"{path}: malformed network JSON") from exc
