"""Planar geometry helpers shared across the package.

The paper's search-space model (Section IV-B) reasons about query and road
*directions* relative to the latitude/longitude reference lines, and about
elliptic search spaces.  All of that geometry lives here, on a flat plane:
coordinates are kilometres on a local tangent plane, which is how the paper's
184 km x 185 km Beijing extent is treated as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

Point = Tuple[float, float]

#: Maximum meaningful offset angle between a direction and the nearest
#: reference axis, in degrees (paper Section IV-B1: directions are folded
#: into [0, 45] because roads parallel and perpendicular to each other are
#: equivalent for search-space estimation).
MAX_REFERENCE_ANGLE = 45.0


def euclidean(ax: float, ay: float, bx: float, by: float) -> float:
    """Euclidean distance between ``(ax, ay)`` and ``(bx, by)``."""
    return math.hypot(bx - ax, by - ay)


def reference_angle(dx: float, dy: float) -> float:
    """Fold a direction vector onto the paper's [0, 45] degree scale.

    The angle of ``(dx, dy)`` is measured against both the latitude line
    (x axis) and the longitude line (y axis); the smaller of the two is the
    direction (paper Eq. for ``e.theta``).  A zero vector maps to ``0.0``.
    """
    if dx == 0.0 and dy == 0.0:
        return 0.0
    theta = math.degrees(math.atan2(abs(dy), abs(dx)))  # in [0, 90]
    return min(theta, 90.0 - theta)


def bearing_angle(dx: float, dy: float) -> float:
    """Full-circle direction of ``(dx, dy)`` in degrees within [0, 360)."""
    if dx == 0.0 and dy == 0.0:
        return 0.0
    deg = math.degrees(math.atan2(dy, dx)) % 360.0
    # A tiny negative angle can round up to exactly 360.0 under the modulo.
    return 0.0 if deg >= 360.0 else deg


def angular_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two bearings, in [0, 180]."""
    diff = abs(a - b) % 360.0
    return min(diff, 360.0 - diff)


@dataclass(frozen=True)
class Ellipse:
    """An ellipse described by its two foci and the constant distance sum.

    A point ``p`` lies inside the ellipse iff
    ``d(p, f1) + d(p, f2) <= distance_sum``.
    """

    f1: Point
    f2: Point
    distance_sum: float

    def contains(self, x: float, y: float) -> bool:
        """Whether ``(x, y)`` lies inside (or on) the ellipse."""
        d = euclidean(x, y, *self.f1) + euclidean(x, y, *self.f2)
        return d <= self.distance_sum + 1e-12

    @property
    def center(self) -> Point:
        return ((self.f1[0] + self.f2[0]) / 2.0, (self.f1[1] + self.f2[1]) / 2.0)

    @property
    def semi_major(self) -> float:
        return self.distance_sum / 2.0

    @property
    def semi_minor(self) -> float:
        c = euclidean(*self.f1, *self.f2) / 2.0
        a = self.semi_major
        return math.sqrt(max(a * a - c * c, 0.0))

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``.

        The box of a rotated ellipse with semi-axes ``a, b`` and axis
        direction ``phi`` has half-extents ``sqrt(a^2 cos^2 + b^2 sin^2)``.
        """
        cx, cy = self.center
        a = self.semi_major
        b = self.semi_minor
        dx = self.f2[0] - self.f1[0]
        dy = self.f2[1] - self.f1[1]
        if dx == 0.0 and dy == 0.0:
            half_x = half_y = a
        else:
            phi = math.atan2(dy, dx)
            cos2 = math.cos(phi) ** 2
            sin2 = math.sin(phi) ** 2
            half_x = math.sqrt(a * a * cos2 + b * b * sin2)
            half_y = math.sqrt(a * a * sin2 + b * b * cos2)
        return (cx - half_x, cy - half_y, cx + half_x, cy + half_y)


def search_space_ellipse(
    sx: float,
    sy: float,
    tx: float,
    ty: float,
    theta_deg: float,
) -> Ellipse:
    """Build the generalized-A* search-space ellipse of the paper (Eqs. 4-5).

    ``s`` is one focus.  The other focus ``f`` sits along the direction from
    ``s`` to ``t`` at distance ``2 h cos(theta) / (1 + cos(theta))``, and the
    constant distance sum is ``2 h / (1 + cos(theta))``, where ``h`` is the
    Euclidean distance from ``s`` to ``t`` and ``theta`` is the offset between
    the query direction and the underlying road directions (clamped to
    [0, 45] degrees; the paper notes theta > 45 folds to 90 - theta).
    """
    theta = fold_theta(theta_deg)
    h = euclidean(sx, sy, tx, ty)
    if h == 0.0:
        return Ellipse((sx, sy), (sx, sy), 0.0)
    cos_t = math.cos(math.radians(theta))
    d_fs = 2.0 * h * cos_t / (1.0 + cos_t)
    d_sum = 2.0 * h / (1.0 + cos_t)
    # Unit vector from s towards t fixes the +/- sign of Eq. 5.
    ux = (tx - sx) / h
    uy = (ty - sy) / h
    f = (sx + d_fs * ux, sy + d_fs * uy)
    return Ellipse((sx, sy), f, d_sum)


def fold_theta(theta_deg: float) -> float:
    """Clamp an offset angle into the paper's [0, 45] degree range."""
    theta = abs(theta_deg) % 90.0
    if theta > MAX_REFERENCE_ANGLE:
        theta = 90.0 - theta
    return theta


def segment_cells(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    origin: Point,
    cell_size: float,
    cells_per_side: int,
) -> List[Tuple[int, int]]:
    """Grid cells traversed by the segment from ``a`` to ``b``.

    Uses an Amanatides-Woo style traversal over a uniform grid anchored at
    ``origin`` with square cells of ``cell_size``.  The result is clipped to
    ``[0, cells_per_side)`` in both axes and returned in visiting order.
    """
    if cell_size <= 0:
        raise ValueError("cell_size must be positive")

    def clamp(i: int) -> int:
        return max(0, min(cells_per_side - 1, i))

    def cell_of(x: float, y: float) -> Tuple[int, int]:
        return (
            clamp(int((x - origin[0]) / cell_size)),
            clamp(int((y - origin[1]) / cell_size)),
        )

    cx, cy = cell_of(ax, ay)
    ex, ey = cell_of(bx, by)
    cells = [(cx, cy)]
    dx = bx - ax
    dy = by - ay
    step_x = 1 if dx > 0 else -1
    step_y = 1 if dy > 0 else -1

    def boundary_t(pos: float, cell: int, step: int, o: float, d: float) -> float:
        edge = o + (cell + (1 if step > 0 else 0)) * cell_size
        return (edge - pos) / d if d != 0 else math.inf

    t_max_x = boundary_t(ax, cx, step_x, origin[0], dx)
    t_max_y = boundary_t(ay, cy, step_y, origin[1], dy)
    t_delta_x = abs(cell_size / dx) if dx != 0 else math.inf
    t_delta_y = abs(cell_size / dy) if dy != 0 else math.inf

    guard = 4 * cells_per_side + 4
    while (cx, cy) != (ex, ey) and guard > 0:
        if t_max_x < t_max_y:
            cx += step_x
            t_max_x += t_delta_x
        else:
            cy += step_y
            t_max_y += t_delta_y
        cx = clamp(cx)
        cy = clamp(cy)
        if cells[-1] != (cx, cy):
            cells.append((cx, cy))
        guard -= 1
    if cells[-1] != (ex, ey):
        cells.append((ex, ey))
    return cells


def bounding_box(points: Iterable[Point]) -> Tuple[float, float, float, float]:
    """Axis-aligned bounding box of ``points`` as ``(min_x, min_y, max_x, max_y)``."""
    it: Iterator[Point] = iter(points)
    try:
        x0, y0 = next(it)
    except StopIteration:
        raise ValueError("bounding_box of an empty point set") from None
    min_x = max_x = x0
    min_y = max_y = y0
    for x, y in it:
        min_x = min(min_x, x)
        max_x = max(max_x, x)
        min_y = min(min_y, y)
        max_y = max(max_y, y)
    return (min_x, min_y, max_x, max_y)


def centroid(points: Sequence[Point]) -> Point:
    """Arithmetic mean of a non-empty point sequence."""
    if not points:
        raise ValueError("centroid of an empty point set")
    sx = sum(p[0] for p in points)
    sy = sum(p[1] for p in points)
    n = float(len(points))
    return (sx / n, sy / n)
