"""Convex hulls and point-in-convex-polygon tests.

Used by the Zigzag merge phase (Section IV-A2): leftover 1-1 clusters are
absorbed into a query subset when their source falls inside the hull of the
subset's sources and their target inside the hull of its targets.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

Point = Tuple[float, float]


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z component of (a - o) x (b - o); >0 means a left turn."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Andrew's monotone-chain hull, counter-clockwise, no duplicate closing point.

    Degenerate inputs are handled: fewer than three distinct points return
    the distinct points themselves (a point or a segment).
    """
    pts = sorted(set(points))
    if len(pts) <= 2:
        return list(pts)
    lower: List[Point] = []
    for p in pts:
        while len(lower) >= 2 and _cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: List[Point] = []
    for p in reversed(pts):
        while len(upper) >= 2 and _cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:  # all points collinear
        return [pts[0], pts[-1]]
    return hull


def point_in_hull(point: Point, hull: Sequence[Point], eps: float = 1e-9) -> bool:
    """Whether ``point`` lies inside or on a convex hull from :func:`convex_hull`.

    Handles the degenerate hulls that function can return: a single point
    (containment = coincidence) and a segment (containment = on-segment).
    """
    n = len(hull)
    if n == 0:
        return False
    if n == 1:
        return (
            abs(point[0] - hull[0][0]) <= eps and abs(point[1] - hull[0][1]) <= eps
        )
    if n == 2:
        a, b = hull
        if abs(_cross(a, b, point)) > eps:
            return False
        lo_x, hi_x = min(a[0], b[0]) - eps, max(a[0], b[0]) + eps
        lo_y, hi_y = min(a[1], b[1]) - eps, max(a[1], b[1]) + eps
        return lo_x <= point[0] <= hi_x and lo_y <= point[1] <= hi_y
    for i in range(n):
        a = hull[i]
        b = hull[(i + 1) % n]
        if _cross(a, b, point) < -eps:
            return False
    return True


def hull_bounding_box(hull: Sequence[Point]) -> Tuple[float, float, float, float]:
    """Bounding box ``(min_x, min_y, max_x, max_y)`` of a non-empty hull."""
    if not hull:
        raise ValueError("bounding box of an empty hull")
    xs = [p[0] for p in hull]
    ys = [p[1] for p in hull]
    return (min(xs), min(ys), max(xs), max(ys))
