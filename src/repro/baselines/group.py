"""Group baseline (Reza et al. [25]) — provided for completeness.

The paper's experiments exclude Group because it is "essentially an
inaccurate multi-run A*" whose running time degrades with batch size; we
implement a faithful-in-spirit reconstruction so the claim can be checked.

Reconstruction: queries are grouped by co-clustering; each group is
answered by *one* generalized A* from the group's representative source to
all member targets, and every member query ``(s, t)`` is approximated by
the representative's distance ``d(s*, t)`` corrected with the (admissible)
heuristic gap between ``s`` and ``s*`` — the "average/representative
distance" flavour of [25].  Approximate answers carry ``exact=False`` and,
as in the original, no error bound holds.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.clusters import Decomposition
from ..core.results import BatchAnswer
from ..queries.query import QuerySet
from ..search.common import PathResult
from ..search.generalized_astar import generalized_a_star


class GroupAnswerer:
    """Shared 1-N runs from a representative source per cluster."""

    def __init__(self, graph) -> None:
        self.graph = graph

    def answer(self, decomposition: Decomposition, method: str = "group") -> BatchAnswer:
        batch = BatchAnswer(
            method=method,
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
        )
        graph = self.graph
        start = time.perf_counter()
        for cluster in decomposition:
            rep = cluster.center if cluster.center is not None else cluster.queries[0]
            targets = sorted(cluster.targets)
            results, visited = generalized_a_star(graph, rep.source, targets)
            batch.visited += visited
            for q in cluster.queries:
                base = results[q.target]
                if q.source == rep.source:
                    batch.answers.append(
                        (
                            q,
                            PathResult(
                                q.source, q.target, base.distance, base.path, 0, True
                            ),
                        )
                    )
                    continue
                # Detour through the representative source: admissible
                # correction via the scaled Euclidean gap, no error bound.
                correction = graph.heuristic(q.source, rep.source)
                batch.answers.append(
                    (
                        q,
                        PathResult(
                            q.source,
                            q.target,
                            base.distance + correction,
                            [],
                            0,
                            False,
                        ),
                    )
                )
        batch.answer_seconds = time.perf_counter() - start
        return batch
