"""Global Cache baseline (Thomsen et al. [29], Section V-A2 comparison).

The global cache is *static* and built from a historical query log — the
experiments use the first 20 % of each test set (Section VI-A2).  During
construction every log query is answered; a path enters the cache when the
log query missed (so the cache holds a non-redundant set of log paths).
When a byte budget is given, candidate paths are ranked by *benefit* — the
number of log queries each path can answer as a sub-path, the essence of
[29]'s benefit model — and inserted benefit-first until the budget is full.

At answering time the cache is read-only: hits are sliced out of cached
paths, misses fall back to A* without updating the cache (cache refreshing
belongs to [30] and is out of scope here, as in the paper).
"""

from __future__ import annotations

import logging
import time
from typing import List, Optional, Tuple

from ..core.cache import PathCache, path_size_bytes
from ..core.results import BatchAnswer
from ..obs import record_cache
from ..queries.query import Query, QuerySet
from ..search.astar import a_star
from ..search.common import PathResult


logger = logging.getLogger(__name__)


class GlobalCacheAnswerer:
    """Log-built static cache answering the remaining query stream."""

    def __init__(
        self,
        graph,
        capacity_bytes: Optional[int] = None,
        log_fraction: float = 0.2,
    ) -> None:
        self.graph = graph
        self.capacity_bytes = capacity_bytes
        self.log_fraction = log_fraction
        self.cache: Optional[PathCache] = None
        self.build_seconds = 0.0
        self.build_visited = 0

    # ------------------------------------------------------------------
    def build(self, log: QuerySet) -> PathCache:
        """Construct the static cache from a historical query log."""
        start = time.perf_counter()
        staging = PathCache(self.graph, capacity_bytes=None)
        paths: List[List[int]] = []
        for q in log:
            if staging.lookup(q.source, q.target) is not None:
                continue
            result = a_star(self.graph, q.source, q.target)
            self.build_visited += result.visited
            if result.found:
                staging.insert(result.path)
                paths.append(result.path)
        if self.capacity_bytes is None:
            self.cache = staging
        else:
            self.cache = self._benefit_ranked(paths, log)
        self.build_seconds = time.perf_counter() - start
        logger.info(
            "global cache built: %d paths, %d bytes, %.3fs from %d log queries",
            self.cache.num_paths,
            self.cache.size_bytes,
            self.build_seconds,
            len(log),
        )
        return self.cache

    def _benefit_ranked(self, paths: List[List[int]], log: QuerySet) -> PathCache:
        """Keep the most beneficial paths that fit the byte budget."""
        benefit = [0] * len(paths)
        position = []
        for path in paths:
            pos = {}
            for i, v in enumerate(path):
                pos.setdefault(v, i)
            position.append(pos)
        for q in log:
            for idx, pos in enumerate(position):
                ps = pos.get(q.source)
                pt = pos.get(q.target)
                if ps is not None and pt is not None and ps < pt:
                    benefit[idx] += 1
        order = sorted(
            range(len(paths)),
            key=lambda i: (benefit[i], len(paths[i])),
            reverse=True,
        )
        cache = PathCache(self.graph, self.capacity_bytes)
        for idx in order:
            cache.insert(paths[idx])
        return cache

    # ------------------------------------------------------------------
    def answer(self, queries: QuerySet, method: str = "gc") -> BatchAnswer:
        """Answer ``queries`` against the built cache (A* on miss)."""
        if self.cache is None:
            raise RuntimeError("call build() with the query log first")
        cache = self.cache
        batch = BatchAnswer(method=method, num_clusters=1)
        batch.cache_bytes = cache.size_bytes
        # The staging cache also counted the build-phase probes; report
        # only the answering-phase hits and misses.
        hits_before, misses_before = cache.hits, cache.misses
        start = time.perf_counter()
        for q in queries:
            hit = cache.lookup(q.source, q.target)
            if hit is not None:
                batch.answers.append(
                    (
                        q,
                        PathResult(
                            q.source, q.target, hit.distance, hit.path, 0, hit.exact
                        ),
                    )
                )
                continue
            result = a_star(self.graph, q.source, q.target)
            batch.visited += result.visited
            batch.answers.append((q, result))
        batch.cache_hits = cache.hits - hits_before
        batch.cache_misses = cache.misses - misses_before
        record_cache(
            batch.cache_hits,
            batch.cache_misses,
            subpath_hits=cache.subpath_hits,
        )
        batch.answer_seconds = time.perf_counter() - start
        return batch

    @property
    def cache_bytes(self) -> int:
        """|GC| — the byte size of the built cache (Table I's measure)."""
        return self.cache.size_bytes if self.cache is not None else 0


def split_log_and_stream(queries: QuerySet, log_fraction: float = 0.2) -> Tuple[QuerySet, QuerySet]:
    """The paper's protocol: first 20 % builds the cache, the rest is answered."""
    cut = int(len(queries) * log_fraction)
    return queries[:cut], queries[cut:]
