"""Comparison methods from the literature, reimplemented as in Section VI."""

from .global_cache import GlobalCacheAnswerer, split_log_and_stream
from .group import GroupAnswerer
from .kpath import KPathAnswerer
from .one_by_one import OneByOneAnswerer
from .zigzag_petal import ZigzagPetalAnswerer

__all__ = [
    "GlobalCacheAnswerer",
    "GroupAnswerer",
    "KPathAnswerer",
    "OneByOneAnswerer",
    "ZigzagPetalAnswerer",
    "split_log_and_stream",
]
