"""Zigzag-Petal baseline (Zhang et al. [34]).

Decomposes the batch into 1-N *petals* — per-source AD clusters, exactly
phase 1 of the Zigzag decomposition — and answers each petal with one
generalized A* run.  Results are exact.  Without the zigzag merge the
method pays per-source overhead when the batch has few 1-N queries, which
is the behaviour Figure 7-(f) shows at the 10k size.
"""

from __future__ import annotations

import time
from typing import Optional

from ..core.results import BatchAnswer
from ..core.zigzag import DEFAULT_DELTA, ad_decompose
from ..queries.query import QuerySet
from ..search.generalized_astar import generalized_a_star


class ZigzagPetalAnswerer:
    """Per-source petals answered by generalized 1-N A*."""

    def __init__(self, graph, delta: float = DEFAULT_DELTA, heuristic_mode: str = "representative") -> None:
        self.graph = graph
        self.delta = delta
        self.heuristic_mode = heuristic_mode

    def answer(self, queries: QuerySet, method: str = "zigzag-petal") -> BatchAnswer:
        batch = BatchAnswer(method=method)
        decompose_start = time.perf_counter()
        counts = {}
        for q in queries:
            counts[q] = counts.get(q, 0) + 1
        petals = []
        for source, group in queries.deduplicated().by_source().items():
            for petal in ad_decompose(
                self.graph, source, group, self.delta, anchor_is_source=True
            ):
                petals.append((source, petal))
        batch.decompose_seconds = time.perf_counter() - decompose_start
        batch.num_clusters = len(petals)

        start = time.perf_counter()
        for source, petal in petals:
            targets = [q.target for q in petal]
            results, visited = generalized_a_star(
                self.graph, source, targets, mode=self.heuristic_mode
            )
            batch.visited += visited
            for q in petal:
                r = results[q.target]
                # The shared VNN was accounted above; avoid double counting.
                # Duplicated queries are answered once but reported per
                # occurrence, like every other method.
                for _ in range(counts.get(q, 1)):
                    batch.answers.append(
                        (q, type(r)(q.source, q.target, r.distance, r.path, 0, r.exact))
                    )
        batch.answer_seconds = time.perf_counter() - start
        return batch
