"""The per-query baseline: answer every query independently.

This is the paper's ``A*`` comparator — no decomposition, no sharing — and
also the ground-truth oracle the error metrics are computed against
(optionally with plain Dijkstra for paranoia-level verification).
"""

from __future__ import annotations

import time
from typing import Optional

from ..exceptions import ConfigurationError
from ..queries.query import QuerySet
from ..search.astar import a_star
from ..search.dijkstra import dijkstra
from ..core.results import BatchAnswer

ALGORITHMS = ("astar", "dijkstra")


class OneByOneAnswerer:
    """Answer a query set query-by-query with A* (or Dijkstra)."""

    def __init__(self, graph, algorithm: str = "astar") -> None:
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(f"algorithm must be one of {ALGORITHMS}")
        self.graph = graph
        self.algorithm = algorithm

    def spec(self):
        """``(kind, kwargs)`` from which a worker process can rebuild me."""
        return "one-by-one", {"algorithm": self.algorithm}

    def answer(self, queries: QuerySet, method: Optional[str] = None) -> BatchAnswer:
        batch = BatchAnswer(method=method or self.algorithm, num_clusters=len(queries))
        start = time.perf_counter()
        search = a_star if self.algorithm == "astar" else dijkstra
        for q in queries:
            result = search(self.graph, q.source, q.target)
            batch.answers.append((q, result))
            batch.visited += result.visited
        batch.answer_seconds = time.perf_counter() - start
        return batch
