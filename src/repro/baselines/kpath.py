"""k-Path baseline (Mahmud et al. [21]) with k = 1.

For each dumbbell cluster the algorithm computes one long-range shortest
path between a source-region *exit* border and a target-region *entry*
border, then answers every member query by concatenating three legs:
``s -> b_s``, ``b_s -> b_t`` and ``b_t -> t``.  The per-endpoint legs come
from two one-to-many Dijkstras (backward from the exit border over the
sources, forward from the entry border over the targets), matching the
paper's observation that k-Path "has to run a Dijkstra to the borders" for
each source and target — which is why it degrades as regions grow.

Borders are chosen geometrically: the exit border is the source vertex
closest to the target centroid, the entry border the target vertex closest
to the source centroid.  The approximation error is *unbounded* (Table II
shows up to ~30 %), since nothing ties region diameters to path length.

As in the paper, the original slow decomposition of [21] is replaced by our
Co-Clustering decomposition.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from ..core.clusters import Decomposition, QueryCluster
from ..core.results import BatchAnswer
from ..network.spatial import centroid
from ..queries.query import Query
from ..search.astar import a_star
from ..search.common import PathResult
from ..search.dijkstra import one_to_many


class KPathAnswerer:
    """Region-border concatenation answering (k = 1)."""

    def __init__(self, graph) -> None:
        self.graph = graph

    def answer(self, decomposition: Decomposition, method: str = "k-path") -> BatchAnswer:
        batch = BatchAnswer(
            method=method,
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
        )
        start = time.perf_counter()
        for cluster in decomposition:
            batch.answers.extend(self._answer_cluster(cluster, batch))
        batch.answer_seconds = time.perf_counter() - start
        return batch

    # ------------------------------------------------------------------
    def _pick_borders(self, cluster: QueryCluster) -> Tuple[int, int]:
        graph = self.graph
        sources = sorted(cluster.sources)
        targets = sorted(cluster.targets)
        t_cx, t_cy = centroid([graph.coord(t) for t in targets])
        s_cx, s_cy = centroid([graph.coord(s) for s in sources])
        exit_border = min(
            sources,
            key=lambda v: (graph.xs[v] - t_cx) ** 2 + (graph.ys[v] - t_cy) ** 2,
        )
        entry_border = min(
            targets,
            key=lambda v: (graph.xs[v] - s_cx) ** 2 + (graph.ys[v] - s_cy) ** 2,
        )
        return exit_border, entry_border

    def _answer_cluster(
        self, cluster: QueryCluster, batch: BatchAnswer
    ) -> List[Tuple[Query, PathResult]]:
        graph = self.graph
        if len(cluster) == 1:
            q = cluster.queries[0]
            result = a_star(graph, q.source, q.target)
            batch.visited += result.visited
            return [(q, result)]

        b_s, b_t = self._pick_borders(cluster)
        spine = a_star(graph, b_s, b_t)
        batch.visited += spine.visited
        if not spine.found:
            # Disconnected spine: fall back to exact per-query answering.
            out = []
            for q in cluster.queries:
                result = a_star(graph, q.source, q.target)
                batch.visited += result.visited
                out.append((q, result))
            return out

        # d(s, b_s) for every source: one backward one-to-many Dijkstra.
        to_exit, _, vis1 = one_to_many(graph, b_s, cluster.sources, backward=True)
        # d(b_t, t) for every target: one forward one-to-many Dijkstra.
        from_entry, _, vis2 = one_to_many(graph, b_t, cluster.targets)
        batch.visited += vis1 + vis2

        out: List[Tuple[Query, PathResult]] = []
        for q in cluster.queries:
            d = to_exit[q.source] + spine.distance + from_entry[q.target]
            exact = q.source == b_s and q.target == b_t
            out.append(
                (
                    q,
                    PathResult(
                        q.source,
                        q.target,
                        d,
                        list(spine.path) if exact else [],
                        visited=0,
                        exact=exact,
                    ),
                )
            )
        return out
