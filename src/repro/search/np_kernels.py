"""Vectorized numpy batch kernels over frozen :class:`~repro.network.csr.CSRGraph`.

PR 4's scalar CSR kernels removed dict overhead but still pay the Python
interpreter for every heap pop.  This module removes the per-pop loop too:
searches run as **bucketed delta-stepping sweeps** whose edge relaxations are
single vectorized ``np.minimum.at`` scatters over flat ``np.frombuffer``
views of the snapshot's CSR buffers — the shared-execution model of batch
processing (one frontier sweep serving a whole target set or several ball
centres) realized at the kernel level.

Kernel family
-------------

* :func:`np_dijkstra` — point-to-point, early exit at the bucket boundary
  that finalizes the target;
* :func:`np_sssp_distances` / :func:`np_sssp_tree` — full single-source;
* :func:`np_bounded_ball` / :func:`np_bounded_ball_tree` — radius-pruned
  collection (R2R's ``2 r*`` primitive);
* :func:`np_multi_bounded_ball_tree` — **batched** ball collection: every
  same-direction ball advances in one joint frontier, so R2R's four
  region balls cost two sweeps instead of four searches;
* :func:`np_one_to_many` — batched one-to-many: an entire cluster target
  set answered from one sweep.

Exactness contract
------------------

Distances are **bit-identical** to the dict/scalar kernels: every final
``dist[v]`` is produced by the same float expression ``dist[u] + w`` along
the same shortest path, and ``min`` over candidates is order-independent.
Membership sets (balls, reachability) are therefore bit-identical too.
Paths, parent maps and VNN counts are reconstructed post-hoc from the
settled prefix ``{v : (dist[v], v) <= (dist[t_last], t_last)}`` of the
``(distance, vertex-id)`` settle order, which reproduces the heap's
lazy-deletion behaviour exactly whenever finite distances are distinct.
Exact float ties (zero-weight clusters) keep every reported path a valid
shortest path of identical length, but the tie-break may differ from the
heap's discovery order — ``tests/search/test_csr_kernels.py`` therefore
pins the scalar backend for its pop-order bit-identity assertions, while
``tests/search/test_np_kernels.py`` is this module's differential suite.

Accounting
----------

Every kernel flushes one :func:`repro.obs.record_search` with the unified
``(settled, relaxations, heap_pops)`` semantics: ``settled`` is the VNN
(identical to the dict kernels outside float ties), ``relaxations`` counts
improving edge relaxations (the analogue of heap pushes), and
``heap_pops`` counts frontier expansions (the analogue of non-stale
pops).  Totals are deterministic, so ``workers=k`` fleet merges
stay bit-identical to serial runs — the PR 2 invariant.  ``csr.np_*``
counters additionally record sweep shape (buckets, rows, frontier sizes).

Backend selection
-----------------

``REPRO_KERNEL`` picks the backend: ``auto`` (default — numpy when
importable, scalar otherwise), ``np`` (require numpy; raise if missing)
or ``csr`` (force the scalar kernels).  numpy is an optional extra
(``pip install repro[np]``); without it dispatch falls back transparently
and answers stay identical.
"""

from __future__ import annotations

import math
import os
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs import record_np_search, record_search
from ..resilience.deadline import active_deadline
from .common import PathResult

if TYPE_CHECKING:  # pragma: no cover
    from ..network.csr import CSRGraph

try:  # numpy is an optional extra: every entry point has a scalar fallback
    import numpy as _numpy
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _numpy = None  # type: ignore[assignment]

Infinity = math.inf

#: numpy ndarray (kept ``Any`` so the module imports without numpy).
Array = Any

BACKEND_KNOB = "REPRO_KERNEL"
BACKENDS = ("auto", "np", "csr")

__all__ = [
    "BACKENDS",
    "BACKEND_KNOB",
    "kernel_backend",
    "np_active",
    "np_available",
    "np_batch_dijkstra",
    "np_bounded_ball",
    "np_bounded_ball_tree",
    "np_dijkstra",
    "np_multi_bounded_ball_tree",
    "np_one_to_many",
    "np_sssp_distances",
    "np_sssp_tree",
    "warm_view",
]


def np_available() -> bool:
    """True when numpy imported successfully."""
    return _numpy is not None


def warm_view(csr: "CSRGraph") -> bool:
    """Eagerly build and cache the numpy view of ``csr``.

    Spawn workers call this right after attaching a shared-memory
    snapshot, so the first query unit does not pay view construction and
    buffer-export problems surface at pool init instead of mid-unit.
    Returns False (and does nothing) without numpy.
    """
    if _numpy is None:
        return False
    _view(csr)
    return True


def kernel_backend() -> str:
    """The validated ``REPRO_KERNEL`` value (re-read every call: tests flip it)."""
    raw = os.environ.get(BACKEND_KNOB, "auto")
    if raw not in BACKENDS:
        raise ConfigurationError(
            f"environment knob {BACKEND_KNOB}={raw!r} is not a valid kernel "
            f"backend; choose from {BACKENDS}"
        )
    return raw


AUTO_MIN_KNOB = "REPRO_NP_AUTO_MIN"
BATCH_MIN_KNOB = "REPRO_NP_BATCH_MIN"
#: ``auto`` crossover for single-row sweeps (per-query kernels, one
#: bounded ball or one-to-many per call).  Measured against the scalar
#: CSR kernels — which keep early exit and touch only the explored
#: region — a single sweep still loses at the largest bundled network
#: (p2p 0.86x, ball 0.28x, one-to-many 0.75x on ``xlarge``, 20.7k
#: vertices) because the per-bucket vectorization overhead has no rows
#: to amortize over.  The default therefore sits above every bundled
#: scale; lower it explicitly for dense or low-diameter networks where
#: frontiers grow wide enough to win.
DEFAULT_AUTO_MIN = 200_000
#: ``auto`` crossover for the multi-row batch sweep
#: (:func:`np_batch_dijkstra`), which amortizes each round across the
#: whole batch and beats a scalar per-query loop from ~1k vertices up
#: (2.1x on ``small``, 2.5x on ``medium``, 9x+ on ``xlarge`` at k=64).
DEFAULT_BATCH_MIN = 512


def _min_vertices(knob: str, default: int) -> int:
    raw = os.environ.get(knob)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ConfigurationError(
            f"environment knob {knob}={raw!r} must be an integer vertex count"
        ) from None


def np_active(csr: "CSRGraph", kind: str = "point") -> bool:
    """Should dispatch use the numpy kernels for this snapshot?

    ``kind`` is ``"point"`` for single-row sweeps (per-query kernels,
    one ball or one-to-many per call) or ``"batch"`` for the joint
    multi-row sweeps.  Under ``REPRO_KERNEL=auto`` each kind has its own
    snapshot-size crossover (``REPRO_NP_AUTO_MIN`` /
    ``REPRO_NP_BATCH_MIN``); with the defaults only the multi-row batch
    dispatches automatically — single-row sweeps lose to the scalar
    kernels at every bundled scale.  ``np`` forces the vectorized
    kernels everywhere and ``csr`` disables them.
    """
    backend = kernel_backend()
    if backend == "csr":
        return False
    if backend == "np":
        if _numpy is None:
            raise ConfigurationError(
                f"{BACKEND_KNOB}=np requires numpy, which is not installed; "
                f"install the optional extra (pip install repro[np])"
            )
        return True
    if _numpy is None:
        return False
    if kind == "batch":
        return csr.num_vertices >= _min_vertices(BATCH_MIN_KNOB, DEFAULT_BATCH_MIN)
    return csr.num_vertices >= _min_vertices(AUTO_MIN_KNOB, DEFAULT_AUTO_MIN)


# ----------------------------------------------------------------------
# Per-snapshot numpy views of the flat CSR buffers
# ----------------------------------------------------------------------
class _NpView:
    """Zero-copy ``np.frombuffer`` views plus the sweep's bucket width."""

    __slots__ = (
        "csr",
        "findptr", "ftarget", "fweight",
        "rindptr", "rtarget", "rweight",
        "n", "m", "delta",
    )

    def __init__(self, csr: "CSRGraph") -> None:
        xp = _numpy
        self.csr = csr
        self.n = csr.num_vertices
        self.m = csr.num_edges
        self.findptr = xp.frombuffer(csr.findptr, dtype=xp.int32).astype(xp.int64)
        self.ftarget = xp.frombuffer(csr.ftarget, dtype=xp.int32)
        self.fweight = xp.frombuffer(csr.fweight, dtype=xp.float64)
        self.rindptr = xp.frombuffer(csr.rindptr, dtype=xp.int32).astype(xp.int64)
        self.rtarget = xp.frombuffer(csr.rtarget, dtype=xp.int32)
        self.rweight = xp.frombuffer(csr.rweight, dtype=xp.float64)
        positive = self.fweight[self.fweight > 0.0]
        # Bucket width: the mean positive weight keeps bucket counts near
        # the hop-diameter; an all-zero graph degrades to one bucket.
        self.delta = float(positive.mean()) if positive.size else Infinity

    def batch_delta(self, k: int) -> float:
        """Bucket width for a ``k``-row joint sweep.

        Wider buckets mean fewer synchronization rounds (each round pays
        fixed vectorization overhead) at the cost of some redundant
        re-relaxation inside a bucket; distances are exact for any width.
        With many rows the per-round overhead dominates, so the width
        grows with the batch until the re-relaxation cost catches up.
        """
        return self.delta * min(16.0, max(1.0, float(k)))

    def rows(self, backward: bool) -> Tuple[Array, Array, Array]:
        """(indptr, targets, weights) for the requested search direction."""
        if backward:
            return self.rindptr, self.rtarget, self.rweight
        return self.findptr, self.ftarget, self.fweight

    def in_rows(self, backward: bool) -> Tuple[Array, Array, Array]:
        """In-edge arrays of the search direction (for parent recovery)."""
        return self.rows(not backward)


def _view(csr: "CSRGraph") -> _NpView:
    ws = csr._npview  # noqa: SLF001 - kernels own this slot
    if type(ws) is not _NpView or ws.n != csr.num_vertices:
        ws = _NpView(csr)
        csr._npview = ws  # noqa: SLF001
    return ws


# ----------------------------------------------------------------------
# Core sweep
# ----------------------------------------------------------------------
class _SweepStats:
    """Deterministic work counters for one sweep (accounting analogues)."""

    __slots__ = ("buckets", "expanded", "improved")

    def __init__(self) -> None:
        self.buckets = 0
        self.expanded = 0
        self.improved = 0


def _edge_gather(indptr: Array, frontier: Array) -> Tuple[Array, Array]:
    """``(rep, eidx)``: per-edge frontier positions and flat edge indices."""
    xp = _numpy
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = xp.empty(0, dtype=xp.int64)
        return empty, empty
    rep = xp.repeat(xp.arange(frontier.size, dtype=xp.int64), counts)
    offs = xp.arange(total, dtype=xp.int64) - xp.repeat(
        xp.cumsum(counts) - counts, counts
    )
    return rep, starts[rep] + offs


def _joint_sweep(
    indptr: Array,
    targets: Array,
    weights: Array,
    dist: Array,
    seeds: Array,
    n: int,
    k: int,
    delta: float,
    radius: float,
    where: str,
    stop: Any = None,
    row_targets: Any = None,
) -> Tuple[_SweepStats, Array, Array]:
    """Bucketed delta-stepping over a flat ``(k, n)`` distance sheet.

    ``dist`` holds ``k`` row-major search rows (seeds pre-set to 0 in flat
    coordinates); ``k == 1`` is the plain single-search sweep.  The
    frontier lives in compact index arrays — never a full-sheet mask — so
    per-round cost tracks the frontier's edge volume, not ``k * n``; this
    is what lets one joint sweep serve a whole batch of rows profitably.

    Improved vertices whose new tentative distance lands beyond the bucket
    boundary ``top`` are deferred to a pending pool, deduplicated once per
    bucket.  A deferred entry can go stale (its vertex improves again and
    expands earlier); stale entries re-expand as no-ops, which never
    changes a distance — only the (still deterministic) work counters.

    ``stop(top)`` is evaluated after each bucket completes — at that point
    every vertex with final distance below ``top`` is settled — and ends
    the sweep early when it returns True.  ``row_targets`` (one flat id
    per row) instead retires each row at the first bucket boundary that
    finalizes its target, dropping the row's pending entries.  The
    cooperative deadline is checked on entry and once per bucket.
    """
    xp = _numpy
    stats = _SweepStats()
    row_expanded = xp.zeros(k, dtype=xp.int64)
    row_improved = xp.zeros(k, dtype=xp.int64)
    deadline = active_deadline()
    if deadline is not None:
        deadline.check(where)
    alive = xp.ones(k, dtype=bool) if row_targets is not None else None

    # O(size) set dedup via scatter-stamp: tokens are globally unique, so
    # the mark sheet never needs resetting and a slot survives as "mine"
    # only for the id that wrote it last.  Replaces sort/hash ``unique``
    # in the hot loop (dedup order differs, but every consumer below is
    # order-independent: min/scatter reductions and bincounts).
    mark = xp.zeros(dist.size, dtype=xp.int64)
    next_token = 1

    def _dedup(ids: Array) -> Array:
        nonlocal next_token
        tok = xp.arange(next_token, next_token + ids.size)
        next_token += ids.size
        mark[ids] = tok
        keep: Array = ids[mark[ids] == tok]
        return keep

    pending: List[Array] = [seeds.astype(xp.int64)]
    while pending:
        if deadline is not None:
            deadline.check(where)
        # A lone carry-over array is already deduplicated (it is a subset
        # of the previous bucket's deduplicated pool).
        pend = pending[0] if len(pending) == 1 else _dedup(xp.concatenate(pending))
        if alive is not None and not bool(alive.all()):
            pend = pend[alive[pend // n]]
        if pend.size == 0:
            break
        dp = dist[pend]
        top = float(dp.min()) + delta
        in_bucket = dp < top
        frontier = pend[in_bucket]
        later = pend[~in_bucket]
        pending = [later] if later.size else []
        stats.buckets += 1
        while frontier.size:
            stats.expanded += int(frontier.size)
            if k > 1:
                row_expanded += xp.bincount(frontier // n, minlength=k)
                verts = frontier % n
            else:
                verts = frontier
            rep, eidx = _edge_gather(indptr, verts)
            if eidx.size == 0:
                break
            if k > 1:
                heads = targets[eidx] + (frontier - verts)[rep]
            else:
                heads = targets[eidx]
            cand = dist[frontier][rep] + weights[eidx]
            sel = cand < dist[heads]
            if radius != Infinity:
                sel &= cand <= radius
            heads = heads[sel]
            if heads.size == 0:
                break
            xp.minimum.at(dist, heads, cand[sel])
            stats.improved += int(heads.size)
            if k > 1:
                row_improved += xp.bincount(heads // n, minlength=k)
            improved = _dedup(heads)
            go = dist[improved] < top
            frontier = improved[go]
            defer = improved[~go]
            if defer.size:
                pending.append(defer)
        if alive is not None:
            done_rows = alive & (dist[row_targets] < top)
            if bool(done_rows.any()):
                alive &= ~done_rows
                if not bool(alive.any()):
                    break
        if stop is not None and stop(top):
            break
    if k == 1:
        row_expanded[0] = stats.expanded
        row_improved[0] = stats.improved
    return stats, row_expanded, row_improved


# ----------------------------------------------------------------------
# Settle-order reconstruction (prefix counts and exact-tie parent maps)
# ----------------------------------------------------------------------
def _settled_prefix_count(dist: Array, last_dist: float, last_vertex: int) -> int:
    """How many vertices settle up to and including ``last_vertex``.

    Settle order is ``(distance, vertex-id)``; the count is exact whenever
    finite distances are distinct (see the module exactness contract).
    """
    xp = _numpy
    below = int(xp.count_nonzero(dist < last_dist))
    at = int(xp.count_nonzero(dist[: last_vertex + 1] == last_dist))
    return below + at


def _resolve_parents(
    view: _NpView,
    backward: bool,
    dist: Array,
    verts: Array,
    want: Array,
    eligible: Array,
    source: int,
) -> Dict[int, int]:
    """Exact shortest-path-tree parents for ``verts``.

    ``parent[v]`` is the minimum ``(dist[u], u)`` in-neighbour achieving
    ``dist[u] + w == want[v]`` — the first strict improver in heap pop
    order, i.e. the dict kernels' parent whenever distances are distinct.
    Zero-weight ties resolve iteratively (a candidate at equal distance is
    only accepted once it has a parent itself), which guarantees the
    result is an acyclic tree even inside zero-weight clusters.
    """
    xp = _numpy
    indptr, tg, wt = view.in_rows(backward)
    parents: Dict[int, int] = {}
    resolved = xp.zeros(view.n, dtype=bool)
    resolved[source] = True
    todo = verts
    want_todo = want
    for _ in range(view.n + 1):
        if todo.size == 0:
            break
        rep, eidx = _edge_gather(indptr, todo)
        if eidx.size == 0:
            break
        cand = tg[eidx].astype(xp.int64)
        du = dist[cand]
        ok = eligible[cand] & (du + wt[eidx] == want_todo[rep])
        # Equal-distance (zero-weight) candidates must themselves be
        # resolved already; strictly closer candidates are always safe.
        ok &= (du < want_todo[rep]) | resolved[cand]
        rep, cand, du = rep[ok], cand[ok], du[ok]
        if rep.size == 0:
            break
        order = xp.lexsort((cand, du, rep))
        rep_s = rep[order]
        uniq, first = xp.unique(rep_s, return_index=True)
        chosen_v = todo[uniq]
        chosen_p = cand[order][first]
        parents.update(zip(chosen_v.tolist(), chosen_p.tolist()))
        resolved[chosen_v] = True
        keep = ~resolved[todo]
        todo = todo[keep]
        want_todo = want_todo[keep]
    return parents


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
def _walk_path(
    view: _NpView, backward: bool, dist: Array, source: int, target: int
) -> Optional[List[int]]:
    """Back-walk ``target -> source`` along minimum ``(dist, id)`` improvers.

    Each step picks the same in-neighbour :func:`_resolve_parents` would
    (the minimum ``(dist[u], u)`` strict improver with
    ``dist[u] + w == dist[v]``), but touches only the actual chain instead
    of resolving a parent for every settled vertex — the scalar CSR
    buffers make each step a handful of array lookups.  Returns ``None``
    when a step has no *strict* improver (an exact zero-weight tie on the
    chain), in which case the caller falls back to the iterative resolver.
    """
    csr = view.csr
    if backward:
        indptr, tgt, wts = csr.findptr, csr.ftarget, csr.fweight
    else:
        indptr, tgt, wts = csr.rindptr, csr.rtarget, csr.rweight
    path = [target]
    v = target
    while v != source:
        dv = float(dist[v])
        best_u = -1
        best_du = 0.0
        for e in range(indptr[v], indptr[v + 1]):
            u = tgt[e]
            du = float(dist[u])
            if du < dv and du + wts[e] == dv:
                if best_u < 0 or du < best_du or (du == best_du and u < best_u):
                    best_u = u
                    best_du = du
        if best_u < 0:
            return None
        v = best_u
        path.append(v)
    path.reverse()
    return path


def _p2p_result(
    view: _NpView,
    backward: bool,
    dist: Array,
    source: int,
    target: int,
    improved: int,
    expanded: int,
) -> PathResult:
    """Turn one settled distance row into a :class:`PathResult` + accounting."""
    xp = _numpy
    if not math.isfinite(dist[target]):
        settled = int(xp.count_nonzero(xp.isfinite(dist)))
        record_search(settled, improved, expanded)
        return PathResult(source, target, Infinity, [], settled)
    d_t = float(dist[target])
    visited = _settled_prefix_count(dist, d_t, target)
    record_search(visited, improved, expanded)
    path = _walk_path(view, backward, dist, source, target)
    if path is None:
        # Zero-weight tie on the chain: resolve the full settled prefix
        # with the exact iterative parent map (guaranteed acyclic).
        settled_mask = xp.isfinite(dist) & (dist <= d_t)
        verts = xp.flatnonzero(settled_mask)
        verts = verts[verts != source]
        parents = _resolve_parents(
            view, backward, dist, verts, dist[verts], settled_mask, source
        )
        path = [target]
        v = target
        while v != source:
            v = parents[v]
            path.append(v)
        path.reverse()
    return PathResult(source, target, d_t, path, visited)


def np_dijkstra(
    csr: "CSRGraph", source: int, target: int, backward: bool = False
) -> PathResult:
    """Vectorized twin of :func:`repro.search.dijkstra.dijkstra`."""
    xp = _numpy
    view = _view(csr)
    if source == target:
        record_search(1, 0, 1)
        record_np_search("dijkstra", 0, 0, 0)
        return PathResult(source, target, 0.0, [source], 1)
    indptr, tg, wt = view.rows(backward)
    dist = xp.full(view.n, Infinity)
    dist[source] = 0.0
    seeds = xp.array([source], dtype=xp.int64)

    def settled_target(top: float) -> bool:
        return bool(dist[target] < top)

    stats, _, _ = _joint_sweep(indptr, tg, wt, dist, seeds, view.n, 1,
                               view.delta, Infinity, "dijkstra",
                               stop=settled_target)
    record_np_search("dijkstra", stats.buckets, stats.expanded, stats.improved)
    return _p2p_result(
        view, backward, dist, source, target, stats.improved, stats.expanded
    )


def np_batch_dijkstra(
    csr: "CSRGraph",
    pairs: Sequence[Tuple[int, int]],
    backward: bool = False,
) -> List[PathResult]:
    """Answer a whole batch of point-to-point queries in one joint sweep.

    This is the shared-execution kernel: every query is a row of one flat
    ``(rows, n)`` distance sheet and all rows advance through shared
    bucketed rounds, so the vectorized edge gather amortizes across the
    batch — per-query level-synchronous sweeps cannot beat the heap on a
    high-diameter road network, but a joint frontier of many queries can.
    A row stops contributing (its pending slice is cleared) at the first
    bucket boundary that finalizes its target.  Results align with
    ``pairs``; each is bit-identical to :func:`np_dijkstra` on the same
    query, and each row flushes its own :func:`record_search`.
    """
    xp = _numpy
    view = _view(csr)
    n = view.n
    results: List[Optional[PathResult]] = [None] * len(pairs)
    live: List[int] = []
    for i, (s, t) in enumerate(pairs):
        if s == t:
            record_search(1, 0, 1)
            results[i] = PathResult(s, t, 0.0, [s], 1)
        else:
            live.append(i)
    if not live:
        record_np_search("batch-dijkstra", 0, 0, 0, rows=len(pairs))
        return [r for r in results if r is not None]
    k = len(live)
    indptr, tg, wt = view.rows(backward)
    dist = xp.full(k * n, Infinity)
    seeds = xp.empty(k, dtype=xp.int64)
    tflat = xp.empty(k, dtype=xp.int64)
    for r, i in enumerate(live):
        seeds[r] = r * n + pairs[i][0]
        tflat[r] = r * n + pairs[i][1]
    dist[seeds] = 0.0
    stats, row_expanded, row_improved = _joint_sweep(
        indptr, tg, wt, dist, seeds, n, k, view.batch_delta(k), Infinity,
        "dijkstra", row_targets=tflat,
    )
    record_np_search("batch-dijkstra", stats.buckets, stats.expanded,
                     stats.improved, rows=k)
    for r, i in enumerate(live):
        s, t = pairs[i]
        results[i] = _p2p_result(
            view, backward, dist[r * n : (r + 1) * n], s, t,
            int(row_improved[r]), int(row_expanded[r]),
        )
    return [r for r in results if r is not None]


def np_sssp_distances(
    csr: "CSRGraph", source: int, backward: bool = False
) -> List[float]:
    """Vectorized twin of :func:`repro.search.dijkstra.sssp_distances`."""
    xp = _numpy
    view = _view(csr)
    indptr, tg, wt = view.rows(backward)
    dist = xp.full(view.n, Infinity)
    dist[source] = 0.0
    seeds = xp.array([source], dtype=xp.int64)
    stats, _, _ = _joint_sweep(indptr, tg, wt, dist, seeds, view.n, 1,
                               view.delta, Infinity, "sssp")
    settled = int(xp.count_nonzero(xp.isfinite(dist)))
    record_search(settled, stats.improved, stats.expanded)
    record_np_search("sssp", stats.buckets, stats.expanded, stats.improved)
    out: List[float] = dist.tolist()
    return out


def np_sssp_tree(
    csr: "CSRGraph", source: int, backward: bool = False
) -> Tuple[List[float], Dict[int, int]]:
    """Vectorized twin of :func:`repro.search.dijkstra.sssp_tree`."""
    xp = _numpy
    view = _view(csr)
    indptr, tg, wt = view.rows(backward)
    dist = xp.full(view.n, Infinity)
    dist[source] = 0.0
    seeds = xp.array([source], dtype=xp.int64)
    stats, _, _ = _joint_sweep(indptr, tg, wt, dist, seeds, view.n, 1,
                               view.delta, Infinity, "sssp")
    finite = xp.isfinite(dist)
    settled = int(xp.count_nonzero(finite))
    record_search(settled, stats.improved, stats.expanded)
    record_np_search("sssp", stats.buckets, stats.expanded, stats.improved)
    verts = xp.flatnonzero(finite & (xp.arange(view.n) != source))
    parents = _resolve_parents(
        view, backward, dist, verts, dist[verts], finite, source
    )
    out: List[float] = dist.tolist()
    return out, parents


def _ball_sweep(
    csr: "CSRGraph", source: int, radius: float, backward: bool
) -> Tuple[_NpView, Array, _SweepStats]:
    xp = _numpy
    view = _view(csr)
    indptr, tg, wt = view.rows(backward)
    dist = xp.full(view.n, Infinity)
    dist[source] = 0.0
    seeds = xp.array([source], dtype=xp.int64)
    stats, _, _ = _joint_sweep(indptr, tg, wt, dist, seeds, view.n, 1,
                               view.delta, radius, "bounded-ball")
    return view, dist, stats


def np_bounded_ball(
    csr: "CSRGraph", source: int, radius: float, backward: bool = False
) -> Tuple[Dict[int, float], int]:
    """Vectorized twin of :func:`repro.search.dijkstra.bounded_ball`."""
    xp = _numpy
    view, dist, stats = _ball_sweep(csr, source, radius, backward)
    members = xp.flatnonzero(dist <= radius)
    done = dict(zip(members.tolist(), dist[members].tolist()))
    visited = int(members.size)
    record_search(visited, stats.improved, stats.expanded)
    record_np_search("ball", stats.buckets, stats.expanded, stats.improved)
    return done, visited


def np_bounded_ball_tree(
    csr: "CSRGraph", source: int, radius: float, backward: bool = False
) -> Tuple[Dict[int, float], Dict[int, int], int]:
    """Vectorized twin of :func:`repro.search.dijkstra.bounded_ball_tree`."""
    xp = _numpy
    view, dist, stats = _ball_sweep(csr, source, radius, backward)
    members = xp.flatnonzero(dist <= radius)
    done = dict(zip(members.tolist(), dist[members].tolist()))
    visited = int(members.size)
    record_search(visited, stats.improved, stats.expanded)
    record_np_search("ball", stats.buckets, stats.expanded, stats.improved)
    finite = xp.isfinite(dist)
    verts = members[members != source]
    parents = _resolve_parents(
        view, backward, dist, verts, dist[verts], finite, source
    )
    return done, parents, visited


def np_multi_bounded_ball_tree(
    csr: "CSRGraph",
    specs: Sequence[Tuple[int, bool]],
    radius: float,
) -> List[Tuple[Dict[int, float], Dict[int, int], int]]:
    """Batched ball collection: one joint sweep per search direction.

    ``specs`` is a sequence of ``(source, backward)`` ball requests sharing
    one radius (R2R's four region balls).  Same-direction balls advance in
    a single joint frontier over a ``(rows, n)`` distance sheet, so the
    vectorized edge gather is shared instead of repeated per ball; each
    ball still records its own :func:`record_search` so run counts match
    the per-ball fallback.  Results align with ``specs``.
    """
    xp = _numpy
    view = _view(csr)
    n = view.n
    results: List[Optional[Tuple[Dict[int, float], Dict[int, int], int]]]
    results = [None] * len(specs)
    for backward in (False, True):
        rows = [i for i, (_, b) in enumerate(specs) if b is backward]
        if not rows:
            continue
        indptr, tg, wt = view.rows(backward)
        k = len(rows)
        dist = xp.full(k * n, Infinity)
        seeds = xp.empty(k, dtype=xp.int64)
        for r, i in enumerate(rows):
            seeds[r] = r * n + specs[i][0]
        dist[seeds] = 0.0
        stats, row_expanded, row_improved = _joint_sweep(
            indptr, tg, wt, dist, seeds, n, k, view.batch_delta(k), radius,
            "bounded-ball",
        )
        record_np_search("ball", stats.buckets, stats.expanded,
                         stats.improved, rows=k)
        for r, i in enumerate(rows):
            source = specs[i][0]
            row = dist[r * n : (r + 1) * n]
            members = xp.flatnonzero(row <= radius)
            done = dict(zip(members.tolist(), row[members].tolist()))
            visited = int(members.size)
            record_search(visited, int(row_improved[r]), int(row_expanded[r]))
            verts = members[members != source]
            parents = _resolve_parents(
                view, backward, row, verts, row[verts], xp.isfinite(row), source
            )
            results[i] = (done, parents, visited)
    out = [r for r in results if r is not None]
    if len(out) != len(specs):  # pragma: no cover - structural invariant
        raise ConfigurationError("np_multi_bounded_ball_tree missed a spec")
    return out


def np_one_to_many(
    csr: "CSRGraph",
    source: int,
    targets: Iterable[int],
    backward: bool = False,
) -> Tuple[Dict[int, float], Dict[int, int], int]:
    """Vectorized twin of :func:`repro.search.dijkstra.one_to_many`.

    One frontier sweep answers the entire target set; the sweep stops at
    the first bucket boundary that finalizes every reachable target.
    """
    xp = _numpy
    view = _view(csr)
    tset = sorted(set(int(t) for t in targets))
    if not tset:
        record_search(0, 0, 0)
        record_np_search("one-to-many", 0, 0, 0)
        return {}, {}, 0
    tarr = xp.array(tset, dtype=xp.int64)
    indptr, tg, wt = view.rows(backward)
    dist = xp.full(view.n, Infinity)
    dist[source] = 0.0
    seeds = xp.array([source], dtype=xp.int64)

    def targets_settled(top: float) -> bool:
        dt = dist[tarr]
        return bool(xp.isfinite(dt).all() and dt.max() < top)

    stats, _, _ = _joint_sweep(indptr, tg, wt, dist, seeds, view.n, 1,
                               view.delta, Infinity, "one-to-many",
                               stop=targets_settled)
    record_np_search("one-to-many", stats.buckets, stats.expanded, stats.improved)

    found: Dict[int, float] = {}
    finite = xp.isfinite(dist)
    reachable = tarr[finite[tarr]]
    if reachable.size < tarr.size:
        # Some target is unreachable: the heap twin drains fully.
        settled_mask = finite.copy()
    else:
        d_max = float(dist[reachable].max())
        t_last = int(reachable[dist[reachable] == d_max].max())
        settled_mask = finite & (
            (dist < d_max)
            | ((dist == d_max) & (xp.arange(view.n) <= t_last))
        )
    settled_mask[source] = True
    for t in tset:
        found[t] = float(dist[t]) if finite[t] else Infinity
    visited = int(xp.count_nonzero(settled_mask))
    record_search(visited, stats.improved, stats.expanded)

    # Touched set: settled vertices plus the frontier they improved, with
    # tentative distances as the heap twin would hold them at stop time.
    settled_verts = xp.flatnonzero(settled_mask)
    rep, eidx = _edge_gather(indptr, settled_verts)
    tentative = xp.full(view.n, Infinity)
    if eidx.size:
        heads = tg[eidx].astype(xp.int64)
        cand = dist[settled_verts][rep] + wt[eidx]
        xp.minimum.at(tentative, heads, cand)
    fringe = xp.flatnonzero(xp.isfinite(tentative) & ~settled_mask)
    inner = settled_verts[settled_verts != source]
    verts = xp.concatenate([inner, fringe])
    want = xp.concatenate([dist[inner], tentative[fringe]])
    parents = _resolve_parents(
        view, backward, dist, verts, want, settled_mask, source
    )
    return found, parents, visited
