"""Generalized 1-N A* — the batch search primitive of Zhang et al. [33].

Finds shortest paths from one source to a whole target set in a single run.
The search is guided toward a *representative* target (the farthest one, as
in the paper) but must stay exact for every target, so the representative
heuristic is offset by the target-set radius:

    h(u) = scale * max(0, euclid(u, t*) - R),   R = max_t euclid(t, t*)

For any target t, ``euclid(u, t) >= euclid(u, t*) - euclid(t, t*) >=
euclid(u, t*) - R``, so ``h`` is an admissible and consistent lower bound on
the distance from ``u`` to the *nearest* target, and every target is settled
with its exact distance.  A tighter but slower ``min-target`` mode computes
``min_t euclid(u, t)`` directly; both modes are exposed because the choice
is one of the design points the repo ablates.

The search-space of this algorithm is what Section IV-B's ellipse model
estimates; keeping the target cloud narrow (small R) is exactly why the
paper's decomposition bounds the cluster angle delta.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from ..exceptions import ConfigurationError
from ..obs import record_search
from .common import PathResult, reconstruct_path
from .csr_kernels import csr_generalized_a_star, frozen_csr

HEURISTIC_MODES = ("representative", "min-target", "zero")


def pick_representative(graph, source: int, targets: Sequence[int]) -> int:
    """The farthest target from ``source`` by Euclidean distance ([33])."""
    if not targets:
        raise ConfigurationError("cannot pick a representative from no targets")
    return max(targets, key=lambda t: graph.euclidean(source, t))


def _build_heuristic(graph, source: int, target_list: Sequence[int], mode: str, landmarks):
    """Build the 1-N heuristic for ``mode`` and return ``(heuristic, extra_visited)``.

    Shared by the dict-based loop below and the CSR kernel dispatch:
    both paths must price vertices with bit-identical floats, so the
    closure is constructed once here from the graph's coordinates.
    ``extra_visited`` is the VNN of the ALT network-radius probe (0
    otherwise), charged to the batch search that requested it.
    """
    xs, ys = graph.xs, graph.ys
    scale = graph.heuristic_scale
    extra_visited = 0

    if mode == "zero" or (scale == 0.0 and landmarks is None):
        def heuristic(u: int) -> float:
            return 0.0
    elif mode == "representative":
        rep = pick_representative(graph, source, target_list)
        rx, ry = xs[rep], ys[rep]
        radius = max(
            math.hypot(xs[t] - rx, ys[t] - ry) for t in target_list
        )
        if landmarks is None:
            def heuristic(u: int, _rx=rx, _ry=ry, _r=radius, _s=scale) -> float:
                return max(0.0, (math.hypot(xs[u] - _rx, ys[u] - _ry) - _r)) * _s
        else:
            # ALT variant: d(u, t) >= lb(u, rep) - d(t, rep), so the ALT
            # bound toward the representative, offset by the exact network
            # radius D = max_t d(t, rep), lower-bounds the distance to the
            # nearest target.  D comes from one backward one-to-many run,
            # whose VNN is charged to this batch search.
            from .dijkstra import one_to_many

            to_rep, _, extra_visited = one_to_many(
                graph, rep, target_list, backward=True
            )
            finite = [d for d in to_rep.values() if not math.isinf(d)]
            network_radius = max(finite) if len(finite) == len(target_list) else math.inf
            lm = landmarks

            def heuristic(
                u: int, _rep=rep, _rx=rx, _ry=ry, _r=radius, _s=scale,
                _lm=lm, _d=network_radius
            ) -> float:
                geo = (math.hypot(xs[u] - _rx, ys[u] - _ry) - _r) * _s
                alt = _lm.lower_bound(u, _rep) - _d if not math.isinf(_d) else 0.0
                return max(0.0, geo, alt)
    else:  # min-target
        coords = [(xs[t], ys[t]) for t in target_list]
        if landmarks is None:
            def heuristic(u: int, _coords=coords, _s=scale) -> float:
                ux, uy = xs[u], ys[u]
                return min(math.hypot(ux - tx, uy - ty) for tx, ty in _coords) * _s
        else:
            lm = landmarks

            def heuristic(u: int, _targets=tuple(target_list), _lm=lm) -> float:
                return min(_lm.lower_bound(u, t) for t in _targets)
    return heuristic, extra_visited


def generalized_a_star(
    graph,
    source: int,
    targets: Iterable[int],
    mode: str = "representative",
    landmarks=None,
) -> Tuple[Dict[int, PathResult], int]:
    """Exact shortest paths from ``source`` to every vertex in ``targets``.

    Returns ``(results, visited)`` where ``results[t]`` is the
    :class:`PathResult` for target ``t`` and ``visited`` is the VNN of the
    single shared run.  Unreachable targets get ``distance == inf``.

    ``landmarks`` may carry a
    :class:`~repro.search.landmarks.LandmarkIndex`; the paper's Section
    IV-B allows the heuristic distance to come from "Euclidean distance or
    Landmark estimation".  With landmarks, ``min-target`` mode uses the ALT
    bound to the nearest target directly, and ``representative`` mode takes
    the max of the geometric offset bound and the ALT-offset bound — both
    stay admissible because each ingredient is a lower bound on the
    distance to the nearest target.
    """
    if mode not in HEURISTIC_MODES:
        raise ConfigurationError(f"unknown heuristic mode {mode!r}; use one of {HEURISTIC_MODES}")
    if landmarks is not None and landmarks.stale:
        raise ConfigurationError(
            "landmark index is stale (graph changed after construction)"
        )
    target_list = list(dict.fromkeys(targets))
    if not target_list:
        return {}, 0

    heuristic, extra_visited = _build_heuristic(graph, source, target_list, mode, landmarks)

    csr = frozen_csr(graph)
    if csr is not None:
        return csr_generalized_a_star(csr, source, target_list, heuristic, extra_visited)

    remaining: Set[int] = set(target_list)
    visited_offset = extra_visited
    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Set[int] = set()
    settled: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    adj = graph._adj  # noqa: SLF001 - hot path
    visited = visited_offset
    pushes = 0
    h_cache: Dict[int, float] = {}

    while heap and remaining:
        f, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        visited += 1
        if u in remaining:
            remaining.discard(u)
            settled[u] = dist[u]
        du = dist[u]
        for v, w in adj[u]:
            v = int(v)
            if v in done:
                continue
            nd = du + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parents[v] = u
                hv = h_cache.get(v)
                if hv is None:
                    hv = heuristic(v)
                    h_cache[v] = hv
                pushes += 1
                heappush(heap, (nd + hv, v))
    record_search(visited - visited_offset, pushes, pushes + 1 - len(heap))

    results: Dict[int, PathResult] = {}
    for t in target_list:
        if t in settled:
            results[t] = PathResult(
                source, t, settled[t], reconstruct_path(parents, source, t), 0
            )
        else:
            results[t] = PathResult(source, t, math.inf, [], 0)
    # Attribute the shared VNN to the batch, not to any single query: the
    # first result carries it so SearchStats totals remain correct.
    if results:
        results[target_list[0]].visited = visited
    return results, visited
