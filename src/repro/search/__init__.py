"""Index-free shortest-path search substrate.

Everything the batch layer builds on: Dijkstra and its bounded/one-to-many
variants, A*, bidirectional Dijkstra, the generalized 1-N A* of [33], and
ALT landmarks.  All searches report VNN (visited node number), the paper's
cost measure.
"""

from .astar import a_star
from .bidirectional import bidirectional_dijkstra
from .bidirectional_astar import bidirectional_a_star
from .common import PathResult, SearchStats, path_length, reconstruct_path
from .csr_kernels import (
    csr_a_star,
    csr_bidirectional_a_star,
    csr_bidirectional_dijkstra,
    csr_bounded_ball,
    csr_bounded_ball_tree,
    csr_dijkstra,
    csr_generalized_a_star,
    csr_one_to_many,
    csr_sssp_distances,
    csr_sssp_tree,
    frozen_csr,
)
from .dijkstra import bounded_ball, dijkstra, one_to_many, sssp_distances, sssp_tree
from .generalized_astar import generalized_a_star, pick_representative
from .landmarks import LandmarkIndex

__all__ = [
    "PathResult",
    "SearchStats",
    "a_star",
    "bidirectional_a_star",
    "bidirectional_dijkstra",
    "bounded_ball",
    "csr_a_star",
    "csr_bidirectional_a_star",
    "csr_bidirectional_dijkstra",
    "csr_bounded_ball",
    "csr_bounded_ball_tree",
    "csr_dijkstra",
    "csr_generalized_a_star",
    "csr_one_to_many",
    "csr_sssp_distances",
    "csr_sssp_tree",
    "dijkstra",
    "frozen_csr",
    "generalized_a_star",
    "LandmarkIndex",
    "one_to_many",
    "path_length",
    "pick_representative",
    "reconstruct_path",
    "sssp_distances",
    "sssp_tree",
]
