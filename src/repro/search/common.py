"""Shared result types and helpers for the search algorithms.

Every search in this package reports its *visited node number* (VNN), the
cost measure ``C(q)`` the paper uses to reason about shared computation
(Section III-A), alongside the distance and the reconstructed path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import NoPathError


@dataclass
class PathResult:
    """Outcome of a single point-to-point search.

    Attributes
    ----------
    source, target:
        Query endpoints.
    distance:
        Shortest (or approximate) travel cost; ``math.inf`` if unreachable.
    path:
        Vertex sequence from source to target inclusive; empty when no path
        was found or when the caller asked for distances only.
    visited:
        Number of vertices settled by the search (VNN).
    exact:
        ``False`` for approximate answers (R2R, k-Path).
    """

    source: int
    target: int
    distance: float
    path: List[int] = field(default_factory=list)
    visited: int = 0
    exact: bool = True

    @property
    def found(self) -> bool:
        return self.distance != float("inf")

    def require_found(self) -> "PathResult":
        """Return self, raising :class:`NoPathError` if the search failed."""
        if not self.found:
            raise NoPathError(self.source, self.target)
        return self


def reconstruct_path(parents: Dict[int, int], source: int, target: int) -> List[int]:
    """Walk a parent map back from ``target`` to ``source``.

    ``parents`` maps a vertex to its predecessor on the shortest-path tree;
    the source maps to itself or is absent.  Returns ``[]`` when ``target``
    was never reached.
    """
    if target == source:
        return [source]
    if target not in parents:
        return []
    path = [target]
    v = target
    while v != source:
        v = parents[v]
        path.append(v)
    path.reverse()
    return path


def path_length(graph, path: List[int]) -> float:
    """Total weight of a vertex path on ``graph`` (0.0 for len <= 1)."""
    total = 0.0
    for u, v in zip(path, path[1:]):
        total += graph.weight(u, v)
    return total


@dataclass
class SearchStats:
    """Aggregated accounting across many searches (VNN totals, counts)."""

    searches: int = 0
    visited: int = 0

    def record(self, result: PathResult) -> PathResult:
        self.searches += 1
        self.visited += result.visited
        return result

    def record_visited(self, visited: int) -> None:
        self.searches += 1
        self.visited += visited

    def merge(self, other: "SearchStats") -> None:
        self.searches += other.searches
        self.visited += other.visited

    @property
    def mean_visited(self) -> float:
        return self.visited / self.searches if self.searches else 0.0
