"""Index-based search kernels over frozen :class:`~repro.network.csr.CSRGraph`.

Each kernel is a drop-in replacement for its dict-based counterpart in
:mod:`repro.search.dijkstra` / :mod:`astar` / :mod:`bidirectional` /
:mod:`bidirectional_astar` / :mod:`generalized_astar`: **bit-identical**
distances, paths, VNN counts and :func:`repro.obs.record_search` accounting,
just faster.  The dict implementations remain the mutable-graph fallback and
the differential-testing oracle (``tests/search/test_csr_kernels.py``).

Three things buy the speedup:

* flat **index-addressed** distance/parent arrays instead of per-call dicts.
  Expected-large kernels (point-to-point Dijkstra, SSSP) allocate a fresh
  ``[inf] * n`` distance list per call — a single C-level allocation, ~50 µs
  for 20k vertices, cheaper than any Python-level reset loop.  Expected-small
  kernels (``bounded_ball``, ``one_to_many``) reuse a per-snapshot scratch
  array reset via a touched-list in ``finally`` (O(search), not O(n)).  The
  parent scratch is shared and **never reset**: only entries written in the
  current run are ever read back (path walks and touched-list projections);
* a **generation stamp** per vertex instead of per-call ``done`` sets — one
  shared ``int`` array where ``done[u] == gen`` means "settled in *this*
  run", so "clearing" the set is a single counter increment;
* iteration over the snapshot's pre-decoded ``(v, w)`` row tuples with every
  hot name bound to a local.

The Dijkstra-keyed kernels skip stale heap entries with ``d > dist[u]``
(push only on strict improvement ⇒ all entries for a settled vertex except
the first popped are strictly worse), which is exactly the skip set of the
dict versions' lazy-deletion ``done`` checks; the A*-keyed and bidirectional
kernels need the explicit stamps because their heap keys are not distances.
The hottest kernels keep no per-push counters: ``record_search`` arguments
are derived from pop/stale tallies via the heap-size invariant
``pushes == pops + len(heap) - 1`` (one seed entry, each pop removes one).
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs import record_search
from ..resilience.deadline import CHECK_MASK, active_deadline
from .common import PathResult

if TYPE_CHECKING:  # pragma: no cover
    from ..network.csr import CSRGraph

Infinity = math.inf

__all__ = [
    "csr_a_star",
    "csr_bidirectional_a_star",
    "csr_bidirectional_dijkstra",
    "csr_bounded_ball",
    "csr_bounded_ball_tree",
    "csr_dijkstra",
    "csr_generalized_a_star",
    "csr_one_to_many",
    "csr_sssp_distances",
    "csr_sssp_tree",
    "frozen_csr",
]


def frozen_csr(graph: object) -> "Optional[CSRGraph]":
    """The graph's valid frozen snapshot, or ``None`` (duck-typed dispatch)."""
    probe = getattr(graph, "frozen_or_none", None)
    return probe() if probe is not None else None


class _Scratch:
    """Preallocated per-snapshot search workspace.

    ``dist_*``/``par_*`` are reset via the kernels' touched lists; the
    ``done_*`` stamp arrays are "cleared" by bumping :attr:`gen`.
    """

    __slots__ = ("dist_f", "dist_b", "par_f", "par_b", "done_f", "done_b", "gen")

    def __init__(self, n: int) -> None:
        self.dist_f: List[float] = [Infinity] * n
        self.dist_b: List[float] = [Infinity] * n
        self.par_f: List[int] = [-1] * n
        self.par_b: List[int] = [-1] * n
        self.done_f: List[int] = [0] * n
        self.done_b: List[int] = [0] * n
        self.gen = 0


def _scratch(csr: "CSRGraph") -> _Scratch:
    ws = csr._scratch  # noqa: SLF001 - kernels own this slot
    if type(ws) is not _Scratch or len(ws.done_f) != csr.num_vertices:
        ws = _Scratch(csr.num_vertices)
        csr._scratch = ws  # noqa: SLF001
    return ws


def _walk(parent: List[int], source: int, target: int) -> List[int]:
    path = [target]
    v = target
    while v != source:
        v = parent[v]
        path.append(v)
    path.reverse()
    return path


# ----------------------------------------------------------------------
# Dijkstra family
# ----------------------------------------------------------------------
def csr_dijkstra(csr: CSRGraph, source: int, target: int, backward: bool = False) -> PathResult:
    """Kernel twin of :func:`repro.search.dijkstra.dijkstra`."""
    rows = csr.reverse_rows() if backward else csr.forward_rows()
    parent = _scratch(csr).par_f
    push = heappush
    pop = heappop
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("dijkstra")
    dist = [Infinity] * csr.num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    pops = 0
    stale = 0
    try:
        while True:
            d, u = pop(heap)
            pops += 1
            if deadline is not None and pops & CHECK_MASK == 0:
                deadline.check("dijkstra")
            if d > dist[u]:
                stale += 1
                continue
            if u == target:
                # settles == pops - stale; pushes == pops + len(heap) - 1.
                record_search(pops - stale, pops + len(heap) - 1, pops)
                return PathResult(
                    source, target, d, _walk(parent, source, target), pops - stale
                )
            for v, w in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    push(heap, (nd, v))
    except IndexError:  # heap exhausted: target unreachable
        record_search(pops - stale, pops - 1, pops)
        return PathResult(source, target, Infinity, [], pops - stale)


def csr_bounded_ball(
    csr: CSRGraph, source: int, radius: float, backward: bool = False
) -> Tuple[Dict[int, float], int]:
    """Kernel twin of :func:`repro.search.dijkstra.bounded_ball`."""
    rows = csr.reverse_rows() if backward else csr.forward_rows()
    ws = _scratch(csr)
    dist = ws.dist_f
    push = heappush
    pop = heappop
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("bounded-ball")
    dist[source] = 0.0
    touched = [source]
    append = touched.append
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done: Dict[int, float] = {}
    visited = 0
    pushes = 0
    try:
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            if d > radius:
                break
            done[u] = d
            visited += 1
            if deadline is not None and visited & CHECK_MASK == 0:
                deadline.check("bounded-ball")
            for v, w in rows[u]:
                nd = d + w
                if nd <= radius and nd < dist[v]:
                    dist[v] = nd
                    append(v)
                    pushes += 1
                    push(heap, (nd, v))
        record_search(visited, pushes, pushes + 1 - len(heap))
        return done, visited
    finally:
        for v in touched:
            dist[v] = Infinity


def csr_bounded_ball_tree(
    csr: CSRGraph, source: int, radius: float, backward: bool = False
) -> Tuple[Dict[int, float], Dict[int, int], int]:
    """Kernel twin of :func:`repro.search.dijkstra.bounded_ball_tree`."""
    rows = csr.reverse_rows() if backward else csr.forward_rows()
    ws = _scratch(csr)
    dist = ws.dist_f
    parent = ws.par_f
    push = heappush
    pop = heappop
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("bounded-ball")
    dist[source] = 0.0
    touched = [source]
    append = touched.append
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done: Dict[int, float] = {}
    visited = 0
    pushes = 0
    try:
        while heap:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            if d > radius:
                break
            done[u] = d
            visited += 1
            if deadline is not None and visited & CHECK_MASK == 0:
                deadline.check("bounded-ball")
            for v, w in rows[u]:
                nd = d + w
                if nd <= radius and nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    append(v)
                    pushes += 1
                    push(heap, (nd, v))
        record_search(visited, pushes, pushes + 1 - len(heap))
        parents = {v: parent[v] for v in touched if v != source}
        return done, parents, visited
    finally:
        for v in touched:
            dist[v] = Infinity


def csr_one_to_many(
    csr: CSRGraph, source: int, targets: Iterable[int], backward: bool = False
) -> Tuple[Dict[int, float], Dict[int, int], int]:
    """Kernel twin of :func:`repro.search.dijkstra.one_to_many`."""
    remaining = set(targets)
    rows = csr.reverse_rows() if backward else csr.forward_rows()
    ws = _scratch(csr)
    dist = ws.dist_f
    parent = ws.par_f
    push = heappush
    pop = heappop
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("one-to-many")
    dist[source] = 0.0
    touched = [source]
    append = touched.append
    heap: List[Tuple[float, int]] = [(0.0, source)]
    found: Dict[int, float] = {}
    visited = 0
    pushes = 0
    try:
        while heap and remaining:
            d, u = pop(heap)
            if d > dist[u]:
                continue
            visited += 1
            if deadline is not None and visited & CHECK_MASK == 0:
                deadline.check("one-to-many")
            if u in remaining:
                remaining.discard(u)
                found[u] = d
            for v, w in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    append(v)
                    pushes += 1
                    push(heap, (nd, v))
        for t in remaining:
            found[t] = Infinity
        record_search(visited, pushes, pushes + 1 - len(heap))
        parents = {v: parent[v] for v in touched if v != source}
        return found, parents, visited
    finally:
        for v in touched:
            dist[v] = Infinity


def csr_sssp_distances(csr: CSRGraph, source: int, backward: bool = False) -> List[float]:
    """Kernel twin of :func:`repro.search.dijkstra.sssp_distances`."""
    rows = csr.reverse_rows() if backward else csr.forward_rows()
    push = heappush
    pop = heappop
    dist = [Infinity] * csr.num_vertices
    dist[source] = 0.0
    heap: List[Tuple[float, int]] = [(0.0, source)]
    pops = 0
    stale = 0
    try:
        while True:
            d, u = pop(heap)
            pops += 1
            if d > dist[u]:
                stale += 1
                continue
            for v, w in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    push(heap, (nd, v))
    except IndexError:  # heap drained: every reachable vertex settled
        record_search(pops - stale, pops - 1, pops)
        return dist  # fresh per call, safe to hand to the caller


def csr_sssp_tree(
    csr: CSRGraph, source: int, backward: bool = False
) -> Tuple[List[float], Dict[int, int]]:
    """Kernel twin of :func:`repro.search.dijkstra.sssp_tree`."""
    rows = csr.reverse_rows() if backward else csr.forward_rows()
    parent = _scratch(csr).par_f
    push = heappush
    pop = heappop
    dist = [Infinity] * csr.num_vertices
    dist[source] = 0.0
    touched = [source]  # one append per push: len(touched) - 1 == pushes
    append = touched.append
    heap: List[Tuple[float, int]] = [(0.0, source)]
    pops = 0
    stale = 0
    try:
        while True:
            d, u = pop(heap)
            pops += 1
            if d > dist[u]:
                stale += 1
                continue
            for v, w in rows[u]:
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    append(v)
                    push(heap, (nd, v))
    except IndexError:  # heap drained: every reachable vertex settled
        record_search(pops - stale, len(touched) - 1, len(touched))
        parents = {v: parent[v] for v in touched if v != source}
        return dist, parents


# ----------------------------------------------------------------------
# A* family (f-keyed heaps need the generation-stamped done arrays)
# ----------------------------------------------------------------------
def csr_a_star(
    csr: CSRGraph,
    source: int,
    target: int,
    heuristic: Optional[Callable[[int], float]] = None,
) -> PathResult:
    """Kernel twin of :func:`repro.search.astar.a_star`."""
    rows = csr.forward_rows()
    ws = _scratch(csr)
    gen = ws.gen + 1
    ws.gen = gen
    done = ws.done_f
    dist = ws.dist_f
    parent = ws.par_f
    push = heappush
    pop = heappop
    hypot = math.hypot
    xs, ys = csr.coord_lists()
    tx = xs[target]
    ty = ys[target]
    scale = csr.heuristic_scale
    custom = heuristic
    dist[source] = 0.0
    touched = [source]
    append = touched.append
    h0 = custom(source) if custom is not None else hypot(xs[source] - tx, ys[source] - ty) * scale
    heap: List[Tuple[float, int]] = [(h0, source)]
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("a-star")
    visited = 0
    pushes = 0
    try:
        while heap:
            _, u = pop(heap)
            if done[u] == gen:
                continue
            done[u] = gen
            visited += 1
            if deadline is not None and visited & CHECK_MASK == 0:
                deadline.check("a-star")
            if u == target:
                record_search(visited, pushes, pushes + 1 - len(heap))
                return PathResult(
                    source, target, dist[u], _walk(parent, source, target), visited
                )
            du = dist[u]
            for v, w in rows[u]:
                if done[v] == gen:
                    continue
                nd = du + w
                if nd < dist[v]:
                    dist[v] = nd
                    parent[v] = u
                    append(v)
                    pushes += 1
                    hv = custom(v) if custom is not None else hypot(xs[v] - tx, ys[v] - ty) * scale
                    push(heap, (nd + hv, v))
        # Unified heap-size form (heap drained here; see dijkstra module doc).
        record_search(visited, pushes, pushes + 1 - len(heap))
        return PathResult(source, target, Infinity, [], visited)
    finally:
        for v in touched:
            dist[v] = Infinity


def csr_generalized_a_star(
    csr: CSRGraph,
    source: int,
    target_list: Sequence[int],
    heuristic: Callable[[int], float],
    visited_offset: int = 0,
) -> Tuple[Dict[int, PathResult], int]:
    """Kernel twin of the main loop of
    :func:`repro.search.generalized_astar.generalized_a_star`.

    The caller (the public dispatcher) builds the mode/landmark heuristic and
    deduplicates ``target_list``; ``visited_offset`` carries the VNN of any
    auxiliary search the heuristic construction ran (the ALT radius probe).
    """
    rows = csr.forward_rows()
    ws = _scratch(csr)
    gen = ws.gen + 1
    ws.gen = gen
    done = ws.done_f
    dist = ws.dist_f
    parent = ws.par_f
    push = heappush
    pop = heappop
    remaining = set(target_list)
    settled: Dict[int, float] = {}
    dist[source] = 0.0
    touched = [source]
    append = touched.append
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    visited = visited_offset
    pushes = 0
    h_cache: Dict[int, float] = {}
    try:
        while heap and remaining:
            _, u = pop(heap)
            if done[u] == gen:
                continue
            done[u] = gen
            visited += 1
            if u in remaining:
                remaining.discard(u)
                settled[u] = dist[u]
            du = dist[u]
            for v, w in rows[u]:
                if done[v] == gen:
                    continue
                nd = du + w
                if nd < dist[v]:
                    if dist[v] == Infinity:
                        append(v)
                    dist[v] = nd
                    parent[v] = u
                    hv = h_cache.get(v)
                    if hv is None:
                        hv = heuristic(v)
                        h_cache[v] = hv
                    pushes += 1
                    push(heap, (nd + hv, v))
        record_search(visited - visited_offset, pushes, pushes + 1 - len(heap))

        results: Dict[int, PathResult] = {}
        for t in target_list:
            if t in settled:
                results[t] = PathResult(
                    source, t, settled[t], _walk(parent, source, t), 0
                )
            else:
                results[t] = PathResult(source, t, Infinity, [], 0)
        if results:
            results[target_list[0]].visited = visited
        return results, visited
    finally:
        for v in touched:
            dist[v] = Infinity


# ----------------------------------------------------------------------
# Bidirectional family
# ----------------------------------------------------------------------
def _top(heap: List[Tuple[float, int]], done: List[int], gen: int) -> float:
    while heap and done[heap[0][1]] == gen:
        heappop(heap)
    return heap[0][0] if heap else Infinity


def csr_bidirectional_dijkstra(csr: CSRGraph, source: int, target: int) -> PathResult:
    """Kernel twin of :func:`repro.search.bidirectional.bidirectional_dijkstra`."""
    if source == target:
        return PathResult(source, target, 0.0, [source], 1)

    fwd_rows = csr.forward_rows()
    bwd_rows = csr.reverse_rows()
    ws = _scratch(csr)
    gen = ws.gen + 1
    ws.gen = gen
    dist_f = ws.dist_f
    dist_b = ws.dist_b
    par_f = ws.par_f
    par_b = ws.par_b
    done_f = ws.done_f
    done_b = ws.done_b
    push = heappush
    pop = heappop

    dist_f[source] = 0.0
    dist_b[target] = 0.0
    touched_f = [source]
    touched_b = [target]
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]

    best = Infinity
    meet = -1
    visited = 0
    pushes = 0
    try:
        while True:
            tf = _top(heap_f, done_f, gen)
            tb = _top(heap_b, done_b, gen)
            if tf + tb >= best or (not heap_f and not heap_b):
                break
            if tf <= tb and heap_f:
                d, u = pop(heap_f)
                if done_f[u] == gen:
                    continue
                done_f[u] = gen
                visited += 1
                for v, w in fwd_rows[u]:
                    nd = d + w
                    if nd < dist_f[v]:
                        if dist_f[v] == Infinity:
                            touched_f.append(v)
                        dist_f[v] = nd
                        par_f[v] = u
                        pushes += 1
                        push(heap_f, (nd, v))
                    db = dist_b[v]
                    if db != Infinity and nd + db < best:
                        best = nd + db
                        meet = v
                du_b = dist_b[u]
                if du_b != Infinity and d + du_b < best:
                    best = d + du_b
                    meet = u
            elif heap_b:
                d, u = pop(heap_b)
                if done_b[u] == gen:
                    continue
                done_b[u] = gen
                visited += 1
                for v, w in bwd_rows[u]:
                    nd = d + w
                    if nd < dist_b[v]:
                        if dist_b[v] == Infinity:
                            touched_b.append(v)
                        dist_b[v] = nd
                        par_b[v] = u
                        pushes += 1
                        push(heap_b, (nd, v))
                    df = dist_f[v]
                    if df != Infinity and nd + df < best:
                        best = nd + df
                        meet = v
                du_f = dist_f[u]
                if du_f != Infinity and d + du_f < best:
                    best = d + du_f
                    meet = u
            else:
                break

        record_search(visited, pushes, pushes + 2 - len(heap_f) - len(heap_b))
        if meet < 0:
            return PathResult(source, target, Infinity, [], visited)

        fwd_half = _walk(par_f, source, meet)
        bwd_half = []
        v = meet
        while v != target:
            v = par_b[v]
            bwd_half.append(v)
        return PathResult(source, target, best, fwd_half + bwd_half, visited)
    finally:
        for v in touched_f:
            dist_f[v] = Infinity
        for v in touched_b:
            dist_b[v] = Infinity


def csr_bidirectional_a_star(csr: CSRGraph, source: int, target: int) -> PathResult:
    """Kernel twin of
    :func:`repro.search.bidirectional_astar.bidirectional_a_star`."""
    if source == target:
        return PathResult(source, target, 0.0, [source], 1)

    xs, ys = csr.coord_lists()
    scale = csr.heuristic_scale
    sx, sy = xs[source], ys[source]
    tx, ty = xs[target], ys[target]
    hypot = math.hypot

    def pf(u: int) -> float:
        # Average potential, identical formula (and floats) to the dict twin.
        return (hypot(xs[u] - tx, ys[u] - ty) - hypot(xs[u] - sx, ys[u] - sy)) * scale / 2.0

    fwd_rows = csr.forward_rows()
    bwd_rows = csr.reverse_rows()
    ws = _scratch(csr)
    gen = ws.gen + 1
    ws.gen = gen
    dist_f = ws.dist_f
    dist_b = ws.dist_b
    par_f = ws.par_f
    par_b = ws.par_b
    done_f = ws.done_f
    done_b = ws.done_b
    push = heappush
    pop = heappop

    dist_f[source] = 0.0
    dist_b[target] = 0.0
    touched_f = [source]
    touched_b = [target]
    heap_f: List[Tuple[float, int]] = [(pf(source), source)]
    heap_b: List[Tuple[float, int]] = [(-pf(target), target)]

    best = Infinity
    meet = -1
    visited = 0
    pushes = 0
    try:
        while True:
            tf = _top(heap_f, done_f, gen)
            tb = _top(heap_b, done_b, gen)
            if tf + tb >= best or (not heap_f and not heap_b):
                break
            if tf <= tb and heap_f:
                _, u = pop(heap_f)
                if done_f[u] == gen:
                    continue
                done_f[u] = gen
                visited += 1
                du = dist_f[u]
                for v, w in fwd_rows[u]:
                    nd = du + w
                    if nd < dist_f[v]:
                        if dist_f[v] == Infinity:
                            touched_f.append(v)
                        dist_f[v] = nd
                        par_f[v] = u
                        pushes += 1
                        push(heap_f, (nd + pf(v), v))
                    db = dist_b[v]
                    if db != Infinity and nd + db < best:
                        best = nd + db
                        meet = v
                du_b = dist_b[u]
                if du_b != Infinity and du + du_b < best:
                    best = du + du_b
                    meet = u
            elif heap_b:
                _, u = pop(heap_b)
                if done_b[u] == gen:
                    continue
                done_b[u] = gen
                visited += 1
                du = dist_b[u]
                for v, w in bwd_rows[u]:
                    nd = du + w
                    if nd < dist_b[v]:
                        if dist_b[v] == Infinity:
                            touched_b.append(v)
                        dist_b[v] = nd
                        par_b[v] = u
                        pushes += 1
                        push(heap_b, (nd - pf(v), v))
                    df = dist_f[v]
                    if df != Infinity and nd + df < best:
                        best = nd + df
                        meet = v
                du_f = dist_f[u]
                if du_f != Infinity and du + du_f < best:
                    best = du + du_f
                    meet = u
            else:
                break

        record_search(visited, pushes, pushes + 2 - len(heap_f) - len(heap_b))
        if meet < 0:
            return PathResult(source, target, Infinity, [], visited)

        fwd_half = _walk(par_f, source, meet)
        bwd_half = []
        v = meet
        while v != target:
            v = par_b[v]
            bwd_half.append(v)
        return PathResult(source, target, best, fwd_half + bwd_half, visited)
    finally:
        for v in touched_f:
            dist_f[v] = Infinity
        for v in touched_b:
            dist_b[v] = Infinity
