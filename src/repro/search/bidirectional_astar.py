"""Bidirectional A* with consistent average potentials.

Section II-A cites the bidirectional technique [23] as a search-space
reducer orthogonal to the A* heuristic; combining them needs care because
forward and backward heuristics must be *consistent with each other* for
the standard termination rule to stay exact.  This implementation uses the
classic average-potential construction:

    pf(u) = (h(u, t) - h(s, u)) / 2        (forward potential)
    pb(u) = -pf(u)                          (backward potential)

where ``h`` is the graph's scaled Euclidean bound.  ``pf`` is feasible for
the forward search, ``pb`` for the backward one, and ``pf + pb = 0``
everywhere, so the plain bidirectional stopping condition
``top_f + top_b >= best`` stays exact on the reduced costs.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Set, Tuple

from ..obs import record_search
from .common import PathResult
from .csr_kernels import csr_bidirectional_a_star, frozen_csr


def bidirectional_a_star(graph, source: int, target: int) -> PathResult:
    """Exact point-to-point search: bidirectional Dijkstra on reduced costs."""
    csr = frozen_csr(graph)
    if csr is not None:
        return csr_bidirectional_a_star(csr, source, target)
    if source == target:
        return PathResult(source, target, 0.0, [source], 1)

    xs, ys = graph.xs, graph.ys
    scale = graph.heuristic_scale
    sx, sy = xs[source], ys[source]
    tx, ty = xs[target], ys[target]

    def pf(u: int) -> float:
        # Average potential: feasible for both directions simultaneously.
        h_ut = math.hypot(xs[u] - tx, ys[u] - ty)
        h_su = math.hypot(xs[u] - sx, ys[u] - sy)
        return (h_ut - h_su) * scale / 2.0

    fwd_adj = graph._adj  # noqa: SLF001 - hot path
    bwd_adj = graph._radj  # noqa: SLF001

    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    par_f: Dict[int, int] = {}
    par_b: Dict[int, int] = {}
    done_f: Set[int] = set()
    done_b: Set[int] = set()
    pf_source = pf(source)
    pf_target = pf(target)
    heap_f: List[Tuple[float, int]] = [(pf_source, source)]
    heap_b: List[Tuple[float, int]] = [(-pf_target, target)]

    best = math.inf
    meet = -1
    visited = 0
    pushes = 0

    def top(heap: List[Tuple[float, int]], done: Set[int]) -> float:
        while heap and heap[0][1] in done:
            heappop(heap)
        return heap[0][0] if heap else math.inf

    # Reduced-cost termination.  Forward keys are dist_f + pf (offset
    # -pf(s) dropped), backward keys dist_b - pf (offset +pf(t) dropped);
    # in reduced costs the classic rule is top_f' + top_b' >= best', and
    # the dropped offsets cancel against best's reduction exactly, leaving
    # the unshifted comparison below.
    while True:
        tf = top(heap_f, done_f)
        tb = top(heap_b, done_b)
        if tf + tb >= best or (not heap_f and not heap_b):
            break
        if tf <= tb and heap_f:
            _, u = heappop(heap_f)
            if u in done_f:
                continue
            done_f.add(u)
            visited += 1
            du = dist_f[u]
            for v, w in fwd_adj[u]:
                v = int(v)
                nd = du + w
                if nd < dist_f.get(v, math.inf):
                    dist_f[v] = nd
                    par_f[v] = u
                    pushes += 1
                    heappush(heap_f, (nd + pf(v), v))
                if v in dist_b and nd + dist_b[v] < best:
                    best = nd + dist_b[v]
                    meet = v
            if u in dist_b and du + dist_b[u] < best:
                best = du + dist_b[u]
                meet = u
        elif heap_b:
            _, u = heappop(heap_b)
            if u in done_b:
                continue
            done_b.add(u)
            visited += 1
            du = dist_b[u]
            for v, w in bwd_adj[u]:
                v = int(v)
                nd = du + w
                if nd < dist_b.get(v, math.inf):
                    dist_b[v] = nd
                    par_b[v] = u
                    pushes += 1
                    heappush(heap_b, (nd - pf(v), v))
                if v in dist_f and nd + dist_f[v] < best:
                    best = nd + dist_f[v]
                    meet = v
            if u in dist_f and du + dist_f[u] < best:
                best = du + dist_f[u]
                meet = u
        else:
            break

    record_search(visited, pushes, pushes + 2 - len(heap_f) - len(heap_b))
    if meet < 0:
        return PathResult(source, target, math.inf, [], visited)

    fwd_half = [meet]
    v = meet
    while v != source:
        v = par_f[v]
        fwd_half.append(v)
    fwd_half.reverse()
    bwd_half = []
    v = meet
    while v != target:
        v = par_b[v]
        bwd_half.append(v)
    return PathResult(source, target, best, fwd_half + bwd_half, visited)
