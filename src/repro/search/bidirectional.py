"""Bidirectional Dijkstra (Nicholson's technique, paper Section II-A).

Searches forward from the source and backward from the target, alternating
by frontier priority; terminates when the sum of both frontier minima
exceeds the best meeting distance found so far.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Set, Tuple

from ..obs import record_search
from .common import PathResult
from .csr_kernels import csr_bidirectional_dijkstra, frozen_csr


def bidirectional_dijkstra(graph, source: int, target: int) -> PathResult:
    """Exact point-to-point shortest path via bidirectional Dijkstra."""
    csr = frozen_csr(graph)
    if csr is not None:
        return csr_bidirectional_dijkstra(csr, source, target)
    if source == target:
        return PathResult(source, target, 0.0, [source], 1)

    fwd_adj = graph._adj  # noqa: SLF001 - hot path
    bwd_adj = graph._radj  # noqa: SLF001

    dist_f: Dict[int, float] = {source: 0.0}
    dist_b: Dict[int, float] = {target: 0.0}
    par_f: Dict[int, int] = {}
    par_b: Dict[int, int] = {}
    done_f: Set[int] = set()
    done_b: Set[int] = set()
    heap_f: List[Tuple[float, int]] = [(0.0, source)]
    heap_b: List[Tuple[float, int]] = [(0.0, target)]

    best = math.inf
    meet = -1
    visited = 0
    pushes = 0

    def top(heap: List[Tuple[float, int]], done: Set[int]) -> float:
        while heap and heap[0][1] in done:
            heappop(heap)
        return heap[0][0] if heap else math.inf

    while True:
        tf = top(heap_f, done_f)
        tb = top(heap_b, done_b)
        if tf + tb >= best or (not heap_f and not heap_b):
            break
        if tf <= tb and heap_f:
            d, u = heappop(heap_f)
            if u in done_f:
                continue
            done_f.add(u)
            visited += 1
            for v, w in fwd_adj[u]:
                v = int(v)
                nd = d + w
                if nd < dist_f.get(v, math.inf):
                    dist_f[v] = nd
                    par_f[v] = u
                    pushes += 1
                    heappush(heap_f, (nd, v))
                if v in dist_b and nd + dist_b[v] < best:
                    best = nd + dist_b[v]
                    meet = v
            if u in dist_b and d + dist_b[u] < best:
                best = d + dist_b[u]
                meet = u
        elif heap_b:
            d, u = heappop(heap_b)
            if u in done_b:
                continue
            done_b.add(u)
            visited += 1
            for v, w in bwd_adj[u]:
                v = int(v)
                nd = d + w
                if nd < dist_b.get(v, math.inf):
                    dist_b[v] = nd
                    par_b[v] = u
                    pushes += 1
                    heappush(heap_b, (nd, v))
                if v in dist_f and nd + dist_f[v] < best:
                    best = nd + dist_f[v]
                    meet = v
            if u in dist_f and d + dist_f[u] < best:
                best = d + dist_f[u]
                meet = u
        else:
            break

    record_search(visited, pushes, pushes + 2 - len(heap_f) - len(heap_b))
    if meet < 0:
        return PathResult(source, target, math.inf, [], visited)

    # Forward half: meet .. source walked via par_f.
    fwd_half = [meet]
    v = meet
    while v != source:
        v = par_f[v]
        fwd_half.append(v)
    fwd_half.reverse()
    # Backward half: meet .. target walked via par_b (parents point toward target).
    bwd_half = []
    v = meet
    while v != target:
        v = par_b[v]
        bwd_half.append(v)
    return PathResult(source, target, best, fwd_half + bwd_half, visited)
