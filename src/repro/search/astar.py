"""A* search with an admissible Euclidean heuristic.

The heuristic is ``graph.heuristic(u, t)``, i.e. the Euclidean distance
scaled by the graph-wide minimum weight/Euclidean ratio, which keeps the
search exact for travel-time weights as well as distance weights.  A custom
heuristic callable (e.g. an ALT landmark bound) can be supplied instead.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..obs import record_search
from ..resilience.deadline import CHECK_MASK, active_deadline
from .common import PathResult, reconstruct_path
from .csr_kernels import csr_a_star, frozen_csr

Heuristic = Callable[[int], float]


def a_star(
    graph,
    source: int,
    target: int,
    heuristic: Optional[Heuristic] = None,
) -> PathResult:
    """Exact point-to-point A* from ``source`` to ``target``.

    ``heuristic`` maps a vertex to an admissible lower bound on its distance
    to ``target``; when omitted the graph's scaled Euclidean bound is used.
    """
    csr = frozen_csr(graph)
    if csr is not None:
        return csr_a_star(csr, source, target, heuristic)
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("a-star")
    if heuristic is None:
        tx, ty = graph.coord(target)
        scale = graph.heuristic_scale
        xs, ys = graph.xs, graph.ys

        def heuristic(u: int, _tx=tx, _ty=ty, _s=scale, _xs=xs, _ys=ys) -> float:
            return math.hypot(_xs[u] - _tx, _ys[u] - _ty) * _s

    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Set[int] = set()
    heap: List[Tuple[float, int]] = [(heuristic(source), source)]
    adj = graph._adj  # noqa: SLF001 - hot path
    visited = 0
    pushes = 0
    while heap:
        f, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        visited += 1
        if deadline is not None and visited & CHECK_MASK == 0:
            deadline.check("a-star")
        if u == target:
            record_search(visited, pushes, pushes + 1 - len(heap))
            return PathResult(
                source, target, dist[u], reconstruct_path(parents, source, target), visited
            )
        du = dist[u]
        for v, w in adj[u]:
            v = int(v)
            if v in done:
                continue
            nd = du + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                parents[v] = u
                pushes += 1
                heappush(heap, (nd + heuristic(v), v))
    # Unified heap-size form (heap drained here; see dijkstra module doc).
    record_search(visited, pushes, pushes + 1 - len(heap))
    return PathResult(source, target, math.inf, [], visited)
