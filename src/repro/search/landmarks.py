"""ALT landmarks (Goldberg & Harrelson) — the paper's alternative heuristic.

Section IV-B notes the generalized A* heuristic can use "Euclidean distance
or Landmark estimation".  :class:`LandmarkIndex` implements the classic ALT
scheme: pick a few well-spread landmarks, precompute distances to and from
each, and use the triangle inequality

    d(u, t) >= max_L max(d(L, t) - d(L, u), d(u, L) - d(t, L))

as an admissible, consistent heuristic.  Construction is a handful of full
Dijkstras, so unlike CH/PLL it is cheap enough to refresh per snapshot.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Sequence

from ..exceptions import IndexConstructionError
from .dijkstra import sssp_distances


class LandmarkIndex:
    """Distances to/from a set of landmarks, with an ALT heuristic factory."""

    def __init__(self, graph, num_landmarks: int = 8, seed: int = 0) -> None:
        if num_landmarks < 1:
            raise IndexConstructionError("need at least one landmark")
        if graph.num_vertices == 0:
            raise IndexConstructionError("cannot build landmarks on an empty graph")
        self.graph = graph
        self.graph_version = graph.version
        self.landmarks: List[int] = self._select(graph, num_landmarks, seed)
        #: dist_from[i][v] = d(L_i, v);  dist_to[i][v] = d(v, L_i)
        self.dist_from: List[List[float]] = [
            sssp_distances(graph, lm) for lm in self.landmarks
        ]
        self.dist_to: List[List[float]] = [
            sssp_distances(graph, lm, backward=True) for lm in self.landmarks
        ]

    @staticmethod
    def _select(graph, k: int, seed: int) -> List[int]:
        """Farthest-point selection: spread landmarks across the network."""
        rng = random.Random(seed)
        first = rng.randrange(graph.num_vertices)
        chosen = [first]
        while len(chosen) < min(k, graph.num_vertices):
            best_v = -1
            best_d = -1.0
            for v in range(graph.num_vertices):
                d = min(graph.euclidean(v, c) for c in chosen)
                if d > best_d:
                    best_d = d
                    best_v = v
            chosen.append(best_v)
        return chosen

    @property
    def stale(self) -> bool:
        """Whether the graph changed since construction (bounds may be invalid)."""
        return self.graph.version != self.graph_version

    def lower_bound(self, u: int, t: int) -> float:
        """ALT lower bound on d(u, t); exact heuristic for A*."""
        best = 0.0
        for i in range(len(self.landmarks)):
            df = self.dist_from[i]
            dt = self.dist_to[i]
            a = df[t] - df[u]
            if not math.isinf(df[t]) and not math.isinf(df[u]) and a > best:
                best = a
            b = dt[u] - dt[t]
            if not math.isinf(dt[u]) and not math.isinf(dt[t]) and b > best:
                best = b
        return best

    def heuristic_to(self, target: int) -> Callable[[int], float]:
        """A heuristic callable ``h(u) -> lower bound on d(u, target)``."""

        def h(u: int, _t=target) -> float:
            return self.lower_bound(u, _t)

        return h
