"""Dijkstra's algorithm and the bounded/one-to-many variants the paper needs.

Beyond the textbook point-to-point search, the batch algorithms rely on:

* *backward* searches on the reverse graph (R2R's ``rDij`` in Algorithm 2),
* *radius-bounded* ball collection (R2R stops at ``2 r*``),
* *one-to-many* searches that stop once a target set is exhausted
  (k-Path's per-region legs), and
* full single-source distance arrays (used by PLL, landmarks and tests).

All variants use a lazy-deletion binary heap, the standard pure-Python
approach, and count settled vertices as the VNN cost measure.

Dispatch
--------

Every entry point checks :func:`~repro.search.csr_kernels.frozen_csr`
first; on a frozen snapshot it forwards to the scalar CSR kernels, or —
when numpy is importable and the ``REPRO_KERNEL`` knob allows it — to the
vectorized sweeps in :mod:`repro.search.np_kernels`.  The dict path below
stays the differential oracle for both.

Accounting invariant: every kernel (dict, scalar CSR, numpy) flushes one
``record_search(settled, pushes, pushes + 1 - len(heap))`` — settled
vertices, strict tentative improvements, and non-stale pops — so
``workers=k`` fleet totals merge bit-identical to a serial run.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..obs import record_search
from ..resilience.deadline import CHECK_MASK, active_deadline
from .common import PathResult, reconstruct_path
from .csr_kernels import (
    csr_bounded_ball,
    csr_bounded_ball_tree,
    csr_dijkstra,
    csr_one_to_many,
    csr_sssp_distances,
    csr_sssp_tree,
    frozen_csr,
)
from . import np_kernels

Infinity = math.inf


def _rows(graph, backward: bool):
    return graph._radj if backward else graph._adj  # noqa: SLF001 - hot path


def dijkstra(graph, source: int, target: int, backward: bool = False) -> PathResult:
    """Point-to-point Dijkstra from ``source`` to ``target``.

    With ``backward=True`` the search runs on the reverse graph, i.e. it
    returns the shortest path *into* ``source``... more precisely the result
    still reads "from source to target" on the reverse graph, which equals
    the forward path from ``target`` to ``source`` reversed.
    """
    csr = frozen_csr(graph)
    if csr is not None:
        if np_kernels.np_active(csr):
            return np_kernels.np_dijkstra(csr, source, target, backward)
        return csr_dijkstra(csr, source, target, backward)
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("dijkstra")
    adj = _rows(graph, backward)
    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = 0
    pushes = 0
    while heap:
        d, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        visited += 1
        if deadline is not None and visited & CHECK_MASK == 0:
            deadline.check("dijkstra")
        if u == target:
            record_search(visited, pushes, pushes + 1 - len(heap))
            return PathResult(source, target, d, reconstruct_path(parents, source, target), visited)
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd < dist.get(v, Infinity):
                dist[v] = nd
                parents[v] = u
                pushes += 1
                heappush(heap, (nd, v))
    # Unified heap-size form: the heap is empty here, so the value matches
    # the historical ``pushes + 1``, but the expression now states the
    # fleet-merge invariant the other return paths use.
    record_search(visited, pushes, pushes + 1 - len(heap))
    return PathResult(source, target, Infinity, [], visited)


def bounded_ball(
    graph,
    source: int,
    radius: float,
    backward: bool = False,
) -> Tuple[Dict[int, float], int]:
    """All vertices within ``radius`` of ``source`` and their distances.

    Returns ``(distances, visited)`` where ``distances[v] <= radius`` for all
    reported vertices.  This is the ``Dij(u*) < 2r*`` primitive in the R2R
    pseudo-code (Algorithm 2, lines 3-4).
    """
    csr = frozen_csr(graph)
    if csr is not None:
        if np_kernels.np_active(csr):
            return np_kernels.np_bounded_ball(csr, source, radius, backward)
        return csr_bounded_ball(csr, source, radius, backward)
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("bounded-ball")
    adj = _rows(graph, backward)
    dist: Dict[int, float] = {source: 0.0}
    done: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = 0
    pushes = 0
    while heap:
        d, u = heappop(heap)
        if u in done:
            continue
        if d > radius:
            break
        done[u] = d
        visited += 1
        if deadline is not None and visited & CHECK_MASK == 0:
            deadline.check("bounded-ball")
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd <= radius and nd < dist.get(v, Infinity):
                dist[v] = nd
                pushes += 1
                heappush(heap, (nd, v))
    record_search(visited, pushes, pushes + 1 - len(heap))
    return done, visited


def bounded_ball_tree(
    graph,
    source: int,
    radius: float,
    backward: bool = False,
) -> Tuple[Dict[int, float], Dict[int, int], int]:
    """:func:`bounded_ball` plus the shortest-path-tree parent map.

    R2R needs the actual leg paths (``q.s -> u*`` and ``v* -> q.t``), not
    just their lengths; the parent map reconstructs them.
    """
    csr = frozen_csr(graph)
    if csr is not None:
        if np_kernels.np_active(csr):
            return np_kernels.np_bounded_ball_tree(csr, source, radius, backward)
        return csr_bounded_ball_tree(csr, source, radius, backward)
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("bounded-ball")
    adj = _rows(graph, backward)
    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = 0
    pushes = 0
    while heap:
        d, u = heappop(heap)
        if u in done:
            continue
        if d > radius:
            break
        done[u] = d
        visited += 1
        if deadline is not None and visited & CHECK_MASK == 0:
            deadline.check("bounded-ball")
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd <= radius and nd < dist.get(v, Infinity):
                dist[v] = nd
                parents[v] = u
                pushes += 1
                heappush(heap, (nd, v))
    record_search(visited, pushes, pushes + 1 - len(heap))
    return done, parents, visited


def one_to_many(
    graph,
    source: int,
    targets: Iterable[int],
    backward: bool = False,
) -> Tuple[Dict[int, float], Dict[int, int], int]:
    """Dijkstra from ``source`` until every vertex in ``targets`` is settled.

    Returns ``(distances, parents, visited)``; unreachable targets keep
    ``math.inf`` in ``distances``.
    """
    csr = frozen_csr(graph)
    if csr is not None:
        if np_kernels.np_active(csr):
            return np_kernels.np_one_to_many(csr, source, targets, backward)
        return csr_one_to_many(csr, source, targets, backward)
    deadline = active_deadline()
    if deadline is not None:
        deadline.check("one-to-many")
    remaining = set(targets)
    adj = _rows(graph, backward)
    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = 0
    pushes = 0
    found: Dict[int, float] = {}
    while heap and remaining:
        d, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        visited += 1
        if deadline is not None and visited & CHECK_MASK == 0:
            deadline.check("one-to-many")
        if u in remaining:
            remaining.discard(u)
            found[u] = d
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd < dist.get(v, Infinity):
                dist[v] = nd
                parents[v] = u
                pushes += 1
                heappush(heap, (nd, v))
    for t in remaining:
        found[t] = Infinity
    record_search(visited, pushes, pushes + 1 - len(heap))
    return found, parents, visited


def sssp_distances(graph, source: int, backward: bool = False) -> List[float]:
    """Full single-source shortest distances as a dense list.

    Used by landmark selection, PLL construction and as the ground truth in
    tests.  ``math.inf`` marks unreachable vertices.
    """
    csr = frozen_csr(graph)
    if csr is not None:
        if np_kernels.np_active(csr):
            return np_kernels.np_sssp_distances(csr, source, backward)
        return csr_sssp_distances(csr, source, backward)
    n = graph.num_vertices
    adj = _rows(graph, backward)
    dist = [Infinity] * n
    dist[source] = 0.0
    done = [False] * n
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = 0
    pushes = 0
    while heap:
        d, u = heappop(heap)
        if done[u]:
            continue
        done[u] = True
        settled += 1
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                pushes += 1
                heappush(heap, (nd, v))
    record_search(settled, pushes, pushes + 1 - len(heap))
    return dist


def sssp_tree(graph, source: int, backward: bool = False) -> Tuple[List[float], Dict[int, int]]:
    """Full SSSP distances plus the parent map (for path extraction)."""
    csr = frozen_csr(graph)
    if csr is not None:
        if np_kernels.np_active(csr):
            return np_kernels.np_sssp_tree(csr, source, backward)
        return csr_sssp_tree(csr, source, backward)
    n = graph.num_vertices
    adj = _rows(graph, backward)
    dist = [Infinity] * n
    dist[source] = 0.0
    parents: Dict[int, int] = {}
    done = [False] * n
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled = 0
    pushes = 0
    while heap:
        d, u = heappop(heap)
        if done[u]:
            continue
        done[u] = True
        settled += 1
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parents[v] = u
                pushes += 1
                heappush(heap, (nd, v))
    record_search(settled, pushes, pushes + 1 - len(heap))
    return dist, parents


def np_batch_active(graph, count: int) -> bool:
    """True when a ``count``-element batch would take a joint numpy sweep.

    Answerers that have a cheaper scalar fallback than a plain
    :func:`dijkstra` loop (e.g. Local Cache's per-query A*) use this to
    decide whether handing the batch to :func:`batch_dijkstra` is a win.
    """
    csr = frozen_csr(graph)
    return csr is not None and count > 1 and np_kernels.np_active(csr, "batch")


def region_balls(
    graph,
    specs: Sequence[Tuple[int, bool]],
    radius: float,
) -> List[Tuple[Dict[int, float], Dict[int, int], int]]:
    """Collect several bounded balls sharing one radius, batched when possible.

    ``specs`` is a sequence of ``(source, backward)`` requests — R2R's four
    region balls (forward/backward from ``u*`` and ``v*``).  On a frozen
    snapshot with the numpy backend active, same-direction balls advance in
    one joint vectorized frontier (:func:`~repro.search.np_kernels.
    np_multi_bounded_ball_tree`); otherwise this is exactly a loop of
    :func:`bounded_ball_tree` calls.  Results align with ``specs`` and are
    identical between the two paths.

    Gated on the single-row (``"point"``) crossover, not the batch one:
    a radius-pruned ball touches only its own region, so even the joint
    sweep cannot amortize the vectorization overhead at bundled scales —
    the scalar loop wins until snapshots far exceed ``xlarge``.
    """
    csr = frozen_csr(graph)
    if csr is not None and len(specs) > 1 and np_kernels.np_active(csr):
        return np_kernels.np_multi_bounded_ball_tree(csr, specs, radius)
    return [bounded_ball_tree(graph, s, radius, b) for s, b in specs]


def batch_dijkstra(
    graph,
    pairs: Sequence[Tuple[int, int]],
    backward: bool = False,
) -> List[PathResult]:
    """Answer a batch of point-to-point queries, sharing work when possible.

    On a frozen snapshot with the numpy backend active the whole batch
    runs as one joint multi-row sweep
    (:func:`~repro.search.np_kernels.np_batch_dijkstra` — the
    shared-execution model); otherwise it is exactly a loop of
    :func:`dijkstra` calls.  Results align with ``pairs`` and are
    identical between the two paths.
    """
    if np_batch_active(graph, len(pairs)):
        csr = frozen_csr(graph)
        return np_kernels.np_batch_dijkstra(csr, pairs, backward)
    return [dijkstra(graph, s, t, backward) for s, t in pairs]
