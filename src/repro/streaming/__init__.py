"""Online micro-batch streaming front end over the batch pipelines.

The package turns the paper's offline batch algorithms into a query
*service*: a continuous arrival stream is assembled into micro-batch
windows (duration OR size trigger), admission-controlled with a
degrade-before-drop shedding policy, and dispatched to the existing
:class:`~repro.service.BatchQueryService` with a version-keyed
cross-window path cache in front.  Every scheduling decision goes
through a swappable clock, so the same loop replays deterministically
under :class:`SimulatedClock` and measures real latency under
:class:`MonotonicClock`.
"""

from .admission import (
    ADMITTED,
    POLICIES,
    SHED_DEGRADE,
    SHED_DROP,
    AdmissionController,
)
from .clock import MonotonicClock, SimulatedClock, make_clock
from .journal import (
    ArrivalJournal,
    JournalScan,
    OUTCOME_ANSWERED,
    OUTCOME_DEAD_LETTER,
    scan_journal,
)
from .microbatch import (
    TRIGGER_DURATION,
    TRIGGER_FLUSH,
    TRIGGER_SIZE,
    TRIGGERS,
    MicroBatcher,
    MicroWindow,
    assemble_micro_batches,
)
from .service import (
    StreamingQueryService,
    StreamReport,
    StreamWindowRecord,
    latency_percentile,
)

__all__ = [
    "ADMITTED",
    "POLICIES",
    "SHED_DEGRADE",
    "SHED_DROP",
    "AdmissionController",
    "ArrivalJournal",
    "JournalScan",
    "OUTCOME_ANSWERED",
    "OUTCOME_DEAD_LETTER",
    "scan_journal",
    "MonotonicClock",
    "SimulatedClock",
    "make_clock",
    "TRIGGER_DURATION",
    "TRIGGER_FLUSH",
    "TRIGGER_SIZE",
    "TRIGGERS",
    "MicroBatcher",
    "MicroWindow",
    "assemble_micro_batches",
    "StreamingQueryService",
    "StreamReport",
    "StreamWindowRecord",
    "latency_percentile",
]
