"""The streaming front door: online micro-batch query answering.

:class:`StreamingQueryService` closes the gap between the paper's
pre-formed batches and a live deployment: it ingests a continuous
arrival stream (any iterable of
:class:`~repro.queries.arrivals.TimedQuery`), assembles micro-batch
windows under the dual trigger of :class:`~repro.streaming.microbatch.
MicroBatcher` (max window duration OR max batch size), applies
admission control with a bounded queue and a degrade-before-drop
load-shedding policy, and hands each assembled window to the existing
:class:`~repro.service.BatchQueryService` — the serial dynamic session
or the multiprocess :class:`~repro.parallel.ParallelBatchEngine`,
depending on ``workers``.

Two pieces make it a *streaming* system rather than a loop around the
batch one:

* **Cross-window path cache.**  A :class:`~repro.core.cache.
  VersionedPathCache` keyed to the graph's CSR snapshot version sits in
  front of dispatch: queries covered by a path answered in an *earlier*
  window are served in O(1) with zero search, and the cache self-clears
  the moment a :class:`~repro.network.timeline.TrafficTimeline` event
  (or any ``set_weight``/``scale_weights``) bumps the version — stale
  hits are structurally impossible.
* **A clock the scheduler owns.**  Every scheduling decision — window
  cut, shed, backpressure stall — reads time through a
  :class:`~repro.streaming.clock.SimulatedClock` or
  :class:`~repro.streaming.clock.MonotonicClock`, so tests replay the
  exact same decisions deterministically while benchmarks measure real
  end-to-end latency with the same code path.

Accounting invariant (pinned by the correctness fleet): every arrival is
either answered or dead-lettered with a structured reason — the service
never silently drops a query, even under overload.
"""

from __future__ import annotations

import logging
import math
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..analysis.metrics import percentile
from ..core.cache import VersionedPathCache
from ..exceptions import ConfigurationError, DeadlineExceededError
from ..index.cch import CustomizableContractionHierarchy
from ..obs import (
    MetricsSnapshot,
    TIME_BUCKETS,
    get_registry,
    record_dead_letters,
    record_deadline,
    record_journal,
    record_stream_cache,
    record_stream_shed,
    record_stream_window,
    set_stream_queue_depth,
)
from ..queries.arrivals import TimedQuery
from ..queries.query import Query, QuerySet
from ..resilience import (
    CircuitBreaker,
    Deadline,
    DeadLetterRecord,
    REASON_DEADLINE_EXCEEDED,
    REASON_INVALID_QUERY,
    REASON_NO_PATH,
    REASON_SHED,
    REASON_WINDOW_DEGRADED,
    STAGE_ADMISSION,
    STAGE_DISPATCH,
    STAGE_SESSION,
    STAGE_VALIDATION,
    use_deadline,
)
from ..resilience.faults import FAULT_EXIT_CODE
from ..search.common import PathResult
from ..service import BatchQueryService, WindowReport
from .admission import ADMITTED, AdmissionController, SHED_DROP
from .clock import MonotonicClock, SimulatedClock, make_clock
from .journal import ArrivalJournal, OUTCOME_ANSWERED, OUTCOME_DEAD_LETTER
from .microbatch import MicroBatcher, MicroWindow

logger = logging.getLogger(__name__)

AnswerPair = Tuple[Query, PathResult]


def latency_percentile(sorted_latencies: List[float], p: float) -> float:
    """Linear-interpolated percentile over pre-sorted samples (0.0 if empty).

    Delegates to :func:`repro.analysis.metrics.percentile` — the repo's
    single percentile implementation — with the streaming empty-data
    policy made explicit: a latency report before any query has finished
    reads 0.0 rather than raising.  ``p`` is a fraction in ``[0, 1]``
    (clamped), unlike the analysis-side ``q`` in ``[0, 100]``.
    """
    return percentile(sorted_latencies, p * 100.0, default=0.0, assume_sorted=True)


@dataclass
class StreamWindowRecord:
    """One dispatched micro-batch window, as the operator sees it."""

    index: int
    trigger: str
    opened_at: float
    cut_at: float
    completed_at: float
    queries: int
    #: Queries answered straight from the cross-window path cache.
    cache_hits: int
    #: Backend outcome for the cache misses (``None`` when the whole
    #: window was served from cache or by the breaker's degrade path).
    report: Optional[WindowReport]
    #: The streaming breaker was open (or dispatch failed) and the window
    #: was answered by per-query Dijkstra instead of the backend.
    breaker_degraded: bool = False
    #: Timeline events fired when the window's cut advanced the clock.
    timeline_events: int = 0
    #: Cache misses were answered by the customizable index (``--index
    #: cch``) rather than the batch backend.
    index_served: bool = False


@dataclass
class StreamReport:
    """Aggregate outcome of one streaming run."""

    windows: List[StreamWindowRecord] = field(default_factory=list)
    #: Every answered ``(query, result)`` pair, in completion order
    #: (includes cache hits and shed-degraded answers).
    answers: List[AnswerPair] = field(default_factory=list)
    #: End-to-end seconds (arrival -> answer) per answered arrival.
    latencies: List[float] = field(default_factory=list)
    dead_letters: List[DeadLetterRecord] = field(default_factory=list)
    total_arrivals: int = 0
    shed_degraded: int = 0
    shed_dropped: int = 0
    backpressure_stalls: int = 0
    #: Queries dead-lettered because their per-query deadline expired.
    deadline_expired: int = 0
    #: Queries cut off from the batch path but re-answered by plain
    #: Dijkstra inside what remained of their budget.
    deadline_degraded: int = 0
    #: The run ended via a drain request rather than stream exhaustion.
    drained: bool = False
    #: Arrivals abandoned by a drain before their arrival instant —
    #: excluded from ``total_arrivals`` (never admitted), but still
    #: pending in the journal for a later ``--recover`` run.
    unadmitted_arrivals: int = 0
    #: Arrivals replayed from a journal rather than freshly stamped.
    replayed_arrivals: int = 0
    stream_cache_hits: int = 0
    stream_cache_misses: int = 0
    stream_cache_invalidations: int = 0
    #: Index re-customizations triggered by weight epochs during the run
    #: (the initial customization at service construction is not counted).
    index_customizations: int = 0
    #: Stream-clock span of the run (simulated or real seconds).
    wall_seconds: float = 0.0
    metrics: Optional[MetricsSnapshot] = None

    # ------------------------------------------------------------------
    @property
    def answered_queries(self) -> int:
        return len(self.answers)

    @property
    def dropped_queries(self) -> int:
        """Queries shed without an answer (always dead-lettered)."""
        return sum(1 for d in self.dead_letters if d.reason == REASON_SHED)

    @property
    def unaccounted_queries(self) -> int:
        """Arrivals neither answered nor dead-lettered — must be zero."""
        return self.total_arrivals - self.answered_queries - len(self.dead_letters)

    @property
    def windows_by_trigger(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for w in self.windows:
            out[w.trigger] = out.get(w.trigger, 0) + 1
        return out

    @property
    def breaker_degraded_windows(self) -> int:
        return sum(1 for w in self.windows if w.breaker_degraded)

    @property
    def index_served_windows(self) -> int:
        return sum(1 for w in self.windows if w.index_served)

    @property
    def mean_window_size(self) -> float:
        if not self.windows:
            return 0.0
        return sum(w.queries for w in self.windows) / len(self.windows)

    def latency_seconds(self, p: float) -> float:
        return latency_percentile(sorted(self.latencies), p)

    @property
    def p50_latency(self) -> float:
        return self.latency_seconds(0.50)

    @property
    def p99_latency(self) -> float:
        return self.latency_seconds(0.99)

    @property
    def qps(self) -> float:
        """Sustained answered-queries-per-second over the stream span."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.answered_queries / self.wall_seconds

    def distances(self) -> List[Tuple[int, int, float]]:
        """Sorted ``(source, target, distance)`` triples — oracle food."""
        return sorted(
            (q.source, q.target, r.distance) for q, r in self.answers
        )


class StreamingQueryService:
    """Micro-batch streaming service over a live road network.

    Parameters
    ----------
    graph:
        The (mutable) road network.
    window_seconds:
        Duration trigger: maximum time a window stays open.
    max_batch:
        Size trigger: maximum queries per window (``None`` = timer only).
    queue_capacity / shed_policy / degrade_budget:
        Admission control (see :class:`~repro.streaming.admission.
        AdmissionController`).
    workers:
        Backend parallelism, passed straight to
        :class:`~repro.service.BatchQueryService` (``0`` = serial engine
        path, ``1`` = dynamic session, ``k > 1`` = worker pool).
    clock:
        ``"simulated"`` (deterministic replay), ``"real"``, or a clock
        instance.
    timeline:
        Optional :class:`~repro.network.timeline.TrafficTimeline`;
        advanced to each window's cut instant, so weight epochs interleave
        with windows exactly as stamped.
    index:
        ``"none"`` (default) dispatches cache misses to the batch
        backend; ``"cch"`` answers them from a
        :class:`~repro.index.cch.CustomizableContractionHierarchy`
        instead.  The index is keyed to ``graph.version``: a timeline
        epoch (or any weight mutation) fired at a window cut triggers a
        re-customization *before* the window is answered, so hierarchy
        queries always see the current metric — never a stale shortcut.
        Unexpected index failures degrade the window to per-query
        Dijkstra, the same ladder the breaker uses.
    stream_cache_bytes:
        Byte budget of the cross-window path cache (``0`` disables it).
    service_seconds_per_query:
        Simulated-clock only: deterministic processing cost charged per
        dispatched query, so overload (and therefore shedding and
        backpressure) can be reproduced exactly in tests.
    breaker:
        Streaming-level :class:`~repro.resilience.CircuitBreaker`
        guarding backend dispatch; when open, windows degrade to
        per-query Dijkstra (exact, cache-free) instead of failing.
    query_deadline_seconds:
        Per-query end-to-end budget, measured on the *stream* clock from
        each query's arrival.  A query whose budget is spent before its
        window dispatches is dead-lettered (``deadline-exceeded``); a
        query cut off mid-search by the cooperative kernel check is
        re-answered by plain Dijkstra if budget remains, else
        dead-lettered.  ``None`` disables deadlines entirely.
    journal:
        Optional :class:`~repro.streaming.journal.ArrivalJournal` — the
        crash-safe WAL recording every arrival before dispatch and every
        sealed outcome after, enabling ``--recover`` replay.
    drain_after_seconds:
        Request a graceful drain once the stream clock reaches this
        instant (deterministic equivalent of SIGTERM mid-run).
    Remaining keyword arguments (``decomposer``, ``answerer``,
    ``retry_policy``, ``fault_plan``, ``unit_timeout``, ``frozen``,
    ``start_method``, ``similarity_threshold``, ``deadline_seconds``)
    are forwarded to the backend :class:`~repro.service.BatchQueryService`.
    """

    def __init__(
        self,
        graph,
        window_seconds: float = 0.25,
        max_batch: Optional[int] = 64,
        queue_capacity: int = 1024,
        shed_policy: str = "degrade",
        degrade_budget: Optional[int] = None,
        workers: int = 1,
        clock: Union[str, SimulatedClock, MonotonicClock] = "simulated",
        timeline=None,
        index: str = "none",
        stream_cache_bytes: int = 2 * 1024 * 1024,
        service_seconds_per_query: float = 0.0,
        breaker: Optional[CircuitBreaker] = None,
        query_deadline_seconds: Optional[float] = None,
        journal: Optional[ArrivalJournal] = None,
        drain_after_seconds: Optional[float] = None,
        **backend_options,
    ) -> None:
        if service_seconds_per_query < 0:
            raise ConfigurationError("service_seconds_per_query must be non-negative")
        if stream_cache_bytes < 0:
            raise ConfigurationError("stream_cache_bytes must be non-negative")
        if query_deadline_seconds is not None and query_deadline_seconds <= 0:
            raise ConfigurationError("query_deadline_seconds must be positive")
        if drain_after_seconds is not None and drain_after_seconds < 0:
            raise ConfigurationError("drain_after_seconds must be non-negative")
        if index not in ("none", "cch"):
            raise ConfigurationError(
                f"index must be 'none' or 'cch', got {index!r}"
            )
        self.graph = graph
        self.index = index
        self._index: Optional[CustomizableContractionHierarchy] = (
            CustomizableContractionHierarchy(graph) if index == "cch" else None
        )
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.workers = workers
        self.clock = make_clock(clock) if isinstance(clock, str) else clock
        self.timeline = timeline
        self.service_seconds_per_query = service_seconds_per_query
        self.query_deadline_seconds = query_deadline_seconds
        self.journal = journal
        self.drain_after_seconds = drain_after_seconds
        self._drain_requested = False
        # The stream-level fault plan is the backend's plan: the "stream"
        # site belongs to this layer, every other site to the backend.
        self._fault_plan = backend_options.get("fault_plan")
        self.admission = AdmissionController(
            queue_capacity=queue_capacity,
            policy=shed_policy,
            degrade_budget=degrade_budget,
        )
        self.batcher = MicroBatcher(window_seconds, max_batch)
        # Default breaker follows the stream clock, so cooldown expiry is
        # deterministic under SimulatedClock too.
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(clock=self.clock.now)
        )
        self._stream_cache: Optional[VersionedPathCache] = (
            VersionedPathCache(graph, stream_cache_bytes, eviction="lru")
            if stream_cache_bytes > 0
            else None
        )
        # The backend owns decomposition, retries, degradation and the
        # worker pool; the timeline stays here so weight epochs follow the
        # *stream* clock, not the backend's grid index.
        self.backend = BatchQueryService(
            graph,
            window_seconds=window_seconds,
            workers=workers,
            timeline=None,
            **backend_options,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release backend resources (worker pool); idempotent."""
        self.backend.close()

    def __enter__(self) -> "StreamingQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def warm(self) -> bool:
        """Pre-build the backend worker pool before traffic starts."""
        return self.backend.warm()

    @property
    def stream_cache(self) -> Optional[VersionedPathCache]:
        return self._stream_cache

    # ------------------------------------------------------------------
    def request_drain(self) -> None:
        """Ask the run loop to stop gracefully.

        Safe to call from a signal handler: it only flips a flag.  The
        loop stops admitting arrivals that are not yet due, flushes the
        open window, answers everything already admitted, and returns a
        report whose accounting invariant still holds.
        """
        self._drain_requested = True

    @property
    def draining(self) -> bool:
        return self._drain_requested

    def run(self, arrivals: Iterable[TimedQuery]) -> StreamReport:
        """Consume a whole stamped stream and answer it online.

        Simulated clock: the loop jumps between arrival instants and
        window deadlines, so the run is a deterministic function of the
        stream and the configuration.  Real clock: the same loop sleeps
        instead of jumping and dispatch costs genuine wall time.
        """
        events = sorted(arrivals)
        if events and events[0].arrival < 0:
            raise ConfigurationError(
                f"arrival times must be non-negative, got {events[0].arrival!r}"
            )
        events, fresh_journaled = self._journal_admit(events)
        report = StreamReport(total_arrivals=len(events))
        if self.journal is not None:
            report.replayed_arrivals = len(events) - fresh_journaled
        registry = get_registry()
        if registry.enabled:
            registry.counter("streaming.arrivals_total").add(len(events))
        if self.workers > 1:
            self.warm()
        started_at = self.clock.now()
        i = 0
        while i < len(events) or self.admission.depth or self.batcher.pending:
            now = self.clock.now()
            if (
                self.drain_after_seconds is not None
                and now >= self.drain_after_seconds
            ):
                self.request_drain()
            if self._drain_requested and not report.drained:
                report.drained = True
                # Abandon arrivals that are not yet due: they were never
                # admitted, so they leave the totals (and stay pending in
                # the journal for a later --recover run).
                while len(events) > i and events[-1].arrival > now:
                    events.pop()
                    report.unadmitted_arrivals += 1
                report.total_arrivals -= report.unadmitted_arrivals
                logger.info(
                    "drain requested at t=%.3f: %d undue arrivals abandoned",
                    now,
                    report.unadmitted_arrivals,
                )
            # 1. Admit every arrival that is due, shedding on overflow.
            while i < len(events) and events[i].arrival <= now:
                self._admit(events[i], report)
                i += 1
            set_stream_queue_depth(self.admission.depth)
            # 2. Cut a window whose duration deadline has passed.
            due = self.batcher.cut_if_due(now)
            if due is not None:
                self._dispatch(due, report)
            # 3. Feed admitted queries into the assembler (size trigger
            #    may cut windows mid-feed; dispatch advances the clock).
            while self.admission.depth:
                tq = self.admission.pop()
                for window in self.batcher.offer(tq, self.clock.now()):
                    self._dispatch(window, report)
            # 3b. Draining with nothing left to admit: flush the open
            #     window now instead of waiting out its duration trigger.
            if report.drained and i >= len(events):
                final = self.batcher.flush(self.clock.now())
                if final is not None:
                    self._dispatch(final, report)
                continue
            # 4. Jump (or sleep) to whatever fires next.
            deadline = self.batcher.deadline
            next_arrival = events[i].arrival if i < len(events) else None
            if deadline is None and next_arrival is None:
                break
            if next_arrival is None:
                target = deadline
            elif deadline is None:
                target = next_arrival
            else:
                target = min(deadline, next_arrival)
            assert target is not None
            if (
                self.drain_after_seconds is not None
                and not self._drain_requested
            ):
                target = min(target, self.drain_after_seconds)
            self.clock.advance_to(target)
        if self.journal is not None:
            self.journal.flush()
        report.wall_seconds = self.clock.now() - started_at
        report.shed_degraded = self.admission.shed_degraded
        report.shed_dropped = self.admission.shed_dropped
        report.backpressure_stalls = self.admission.backpressure_stalls
        if self._stream_cache is not None:
            report.stream_cache_hits = self._stream_cache.hits
            report.stream_cache_misses = self._stream_cache.misses
            report.stream_cache_invalidations = self._stream_cache.invalidations
        if registry.enabled:
            report.metrics = registry.snapshot()
        return report

    # ------------------------------------------------------------------
    def _journal_admit(
        self, events: List[TimedQuery]
    ) -> Tuple[List[TimedQuery], int]:
        """Write-ahead every fresh arrival before the run answers anything.

        Arrivals that already carry a ``seq`` stamp were replayed from the
        journal (their arrival records exist) and are passed through
        untouched; fresh arrivals are stamped and appended.  The flush
        before returning is the WAL guarantee: once the run starts, every
        query it owes is durable.
        """
        if self.journal is None:
            return events, 0
        stamped: List[TimedQuery] = []
        fresh = 0
        replayed = 0
        for tq in events:
            if tq.seq is None:
                tq = replace(tq, seq=self.journal.next_seq())
                self.journal.append_arrival(tq)
                fresh += 1
            else:
                replayed += 1
            stamped.append(tq)
        self.journal.flush()
        record_journal(appended=fresh, replayed=replayed)
        return stamped, fresh

    def _journal_done(self, tq: TimedQuery, outcome: str) -> None:
        if self.journal is not None and tq.seq is not None:
            self.journal.append_done(tq.seq, outcome)

    # ------------------------------------------------------------------
    def _admit(self, tq: TimedQuery, report: StreamReport) -> None:
        outcome = self.admission.admit(tq)
        if outcome == ADMITTED:
            return
        if outcome == SHED_DROP:
            record_stream_shed(dropped=1)
            record_dead_letters(1)
            report.dead_letters.append(
                DeadLetterRecord(
                    source=tq.query.source,
                    target=tq.query.target,
                    reason=REASON_SHED,
                    stage=STAGE_ADMISSION,
                    detail=(
                        f"admission queue full "
                        f"(capacity {self.admission.queue_capacity})"
                    ),
                )
            )
            self._journal_done(tq, OUTCOME_DEAD_LETTER)
            return
        # Shed-degrade: answered right now by plain Dijkstra — the query
        # loses batching/caching benefit but the answer stays exact.
        record_stream_shed(degraded=1)
        pairs = self._answer_by_dijkstra(
            QuerySet([tq.query]), report.dead_letters, reason=REASON_SHED
        )
        completion = self.clock.now()
        for pair in pairs:
            report.answers.append(pair)
            self._record_latency(report, completion - tq.arrival)
        self._journal_done(
            tq, OUTCOME_ANSWERED if pairs else OUTCOME_DEAD_LETTER
        )

    def _record_latency(self, report: StreamReport, latency: float) -> None:
        latency = max(0.0, latency)
        report.latencies.append(latency)
        registry = get_registry()
        if registry.enabled:
            registry.histogram("streaming.latency_seconds", TIME_BUCKETS).observe(
                latency
            )

    # ------------------------------------------------------------------
    def _dispatch(self, window: MicroWindow, report: StreamReport) -> None:
        fired = 0
        if self.timeline is not None and window.cut_at > self.timeline.clock:
            # Weight epochs follow the stream clock; a version bump here
            # invalidates the cross-window cache (checked at next probe),
            # flushes the dynamic session and re-forks the worker pool.
            fired = self.timeline.advance_to(window.cut_at)
        record_stream_window(len(window), window.trigger, window.span_seconds)
        registry = get_registry()
        backend_report: Optional[WindowReport] = None
        breaker_degraded = False
        index_served = False
        with registry.span(
            "stream_window",
            index=window.index,
            trigger=window.trigger,
            queries=len(window),
        ):
            cache_pairs, missed = self._probe_cache(window)
            answered: List[AnswerPair] = list(cache_pairs)
            # Queries whose stream-clock budget was spent waiting in the
            # backlog never reach a search: deterministic dead-letter.
            missed, already_expired = self._partition_expired(missed)
            for tq in already_expired:
                self._dead_letter_deadline(
                    tq, report, detail="budget spent waiting for dispatch"
                )
            if missed:
                batch = QuerySet(tq.query for tq in missed)
                if self._index is not None:
                    # The timeline advance above happens *before* this
                    # point, so a fired epoch has already bumped
                    # ``graph.version`` — ensure_current() re-customizes
                    # and the window is answered at the new metric.
                    if self._index.ensure_current():
                        report.index_customizations += 1
                    index_served = True
                    pairs = self._answer_by_index(batch, report.dead_letters)
                    answered.extend(pairs)
                    self._cache_answers(pairs)
                elif not self.breaker.allow():
                    breaker_degraded = True
                    answered.extend(
                        self._answer_by_dijkstra(batch, report.dead_letters)
                    )
                else:
                    try:
                        backend_report = self.backend.process_window(
                            batch,
                            index=window.index,
                            deadline=self._backend_deadline(missed),
                        )
                    except Exception as exc:
                        self.breaker.record_failure()
                        logger.warning(
                            "window %d backend dispatch failed (%s: %s); "
                            "degrading to per-query Dijkstra",
                            window.index,
                            type(exc).__name__,
                            exc,
                        )
                        breaker_degraded = True
                        answered.extend(
                            self._answer_by_dijkstra(batch, report.dead_letters)
                        )
                    else:
                        self.breaker.record_success()
                        kept, recovered = self._degrade_deadline_letters(
                            backend_report.dead_letters, missed, report
                        )
                        report.dead_letters.extend(kept)
                        answered.extend(recovered)
                        if backend_report.answer is not None:
                            answered.extend(backend_report.answer.answers)
                            self._cache_answers(backend_report.answer.answers)
        if breaker_degraded and registry.enabled:
            registry.counter("streaming.breaker_degraded_windows").add(1)
        if index_served and registry.enabled:
            registry.counter("streaming.index_served_windows").add(1)
        if self.service_seconds_per_query > 0:
            # Deterministic processing cost: only meaningful on the
            # simulated clock (the real clock pays genuine wall time).
            self.clock.sleep(self.service_seconds_per_query * len(window))
        completion = self.clock.now()
        answered_keys = {(q.source, q.target) for q, _ in answered}
        for tq in window.arrivals:
            if (tq.query.source, tq.query.target) in answered_keys:
                self._record_latency(report, completion - tq.arrival)
        report.answers.extend(answered)
        report.windows.append(
            StreamWindowRecord(
                index=window.index,
                trigger=window.trigger,
                opened_at=window.opened_at,
                cut_at=window.cut_at,
                completed_at=completion,
                queries=len(window),
                cache_hits=len(cache_pairs),
                report=backend_report,
                breaker_degraded=breaker_degraded,
                timeline_events=fired,
                index_served=index_served,
            )
        )
        if self.journal is not None:
            for tq in window.arrivals:
                key = (tq.query.source, tq.query.target)
                self._journal_done(
                    tq,
                    OUTCOME_ANSWERED
                    if key in answered_keys
                    else OUTCOME_DEAD_LETTER,
                )
            self.journal.flush()
        if self._fault_plan is not None and self._fault_plan.stream_fault(
            window.index
        ):
            # The chaos drill's kill -9: die without cleanup *after* the
            # journal flush, so recovery sees this window sealed and every
            # later arrival still pending.
            logger.warning(
                "fault plan: killing serving process after window %d",
                window.index,
            )
            os._exit(FAULT_EXIT_CODE)

    # ------------------------------------------------------------------
    def _partition_expired(
        self, missed: List[TimedQuery]
    ) -> Tuple[List[TimedQuery], List[TimedQuery]]:
        """Split cache misses into still-live and budget-already-spent."""
        if self.query_deadline_seconds is None or not missed:
            return missed, []
        now = self.clock.now()
        live: List[TimedQuery] = []
        expired: List[TimedQuery] = []
        for tq in missed:
            if now >= tq.arrival + self.query_deadline_seconds:
                expired.append(tq)
            else:
                live.append(tq)
        return live, expired

    def _backend_deadline(
        self, missed: List[TimedQuery]
    ) -> Optional[Deadline]:
        """Arm a real-monotonic deadline covering the tightest query budget.

        Stream-clock budgets do not transfer to the backend's wall-clock
        searches directly; the window gets the smallest remaining budget
        re-armed against real time, which bounds how long any cooperative
        kernel may run before the check cuts it off.
        """
        if self.query_deadline_seconds is None or not missed:
            return None
        now = self.clock.now()
        budget = min(
            tq.arrival + self.query_deadline_seconds - now for tq in missed
        )
        return Deadline(budget)

    def _dead_letter_deadline(
        self, tq: TimedQuery, report: StreamReport, detail: str
    ) -> None:
        report.dead_letters.append(
            DeadLetterRecord(
                source=tq.query.source,
                target=tq.query.target,
                reason=REASON_DEADLINE_EXCEEDED,
                stage=STAGE_DISPATCH,
                error="DeadlineExceededError",
                detail=detail,
            )
        )
        report.deadline_expired += 1
        record_dead_letters(1)
        record_deadline(expired=1)

    def _degrade_deadline_letters(
        self,
        letters: List[DeadLetterRecord],
        missed: List[TimedQuery],
        report: StreamReport,
    ) -> Tuple[List[DeadLetterRecord], List[AnswerPair]]:
        """Give deadline-cut queries one last chance inside their budget.

        The backend dead-letters whole units when a batch deadline fires;
        individual queries in the unit may still have stream-clock budget
        left (the batch shared one deadline).  Those are re-answered by
        plain Dijkstra under their own remaining budget — the degrade
        rung of the deadline ladder.  Everything else passes through.
        """
        from ..search.dijkstra import dijkstra

        kept: List[DeadLetterRecord] = []
        recovered: List[AnswerPair] = []
        by_key: Dict[Tuple[int, int], TimedQuery] = {}
        for tq in missed:
            by_key.setdefault((tq.query.source, tq.query.target), tq)
        for letter in letters:
            if letter.reason != REASON_DEADLINE_EXCEEDED:
                kept.append(letter)
                continue
            tq = by_key.get((letter.source, letter.target))
            remaining = (
                tq.arrival + self.query_deadline_seconds - self.clock.now()
                if tq is not None and self.query_deadline_seconds is not None
                else 0.0
            )
            if tq is None or remaining <= 0:
                report.deadline_expired += 1
                kept.append(letter)
                continue
            try:
                with use_deadline(Deadline(remaining)):
                    result = dijkstra(
                        self.graph, letter.source, letter.target
                    )
            except Exception:
                report.deadline_expired += 1
                kept.append(letter)
                continue
            if not math.isfinite(result.distance):
                report.deadline_expired += 1
                kept.append(letter)
                continue
            recovered.append((tq.query, result))
            report.deadline_degraded += 1
            record_deadline(degraded=1)
        return kept, recovered

    # ------------------------------------------------------------------
    def _probe_cache(
        self, window: MicroWindow
    ) -> Tuple[List[AnswerPair], List[TimedQuery]]:
        """Split a window into cache-answered pairs and misses to dispatch."""
        if self._stream_cache is None:
            return [], list(window.arrivals)
        cache = self._stream_cache
        h0, m0, inv0 = cache.hits, cache.misses, cache.invalidations
        pairs: List[AnswerPair] = []
        missed: List[TimedQuery] = []
        for tq in window.arrivals:
            q = tq.query
            hit = cache.lookup(q.source, q.target)
            if hit is not None and hit.exact:
                pairs.append(
                    (
                        q,
                        PathResult(
                            q.source,
                            q.target,
                            hit.distance,
                            list(hit.path),
                            visited=0,
                            exact=True,
                        ),
                    )
                )
            else:
                missed.append(tq)
        record_stream_cache(
            cache.hits - h0, cache.misses - m0, cache.invalidations - inv0
        )
        return pairs, missed

    def _cache_answers(self, pairs: List[AnswerPair]) -> None:
        """Feed exact answered paths into the cross-window cache."""
        if self._stream_cache is None:
            return
        for _, result in pairs:
            path = getattr(result, "path", None)
            if (
                result.exact
                and path
                and len(path) >= 2
                and math.isfinite(result.distance)
            ):
                try:
                    self._stream_cache.insert(path)
                except Exception:  # pragma: no cover - defensive
                    # A path that does not validate against the current
                    # graph must never poison the cache; skip it.
                    continue

    def _answer_by_index(
        self,
        batch: QuerySet,
        dead_letters: List[DeadLetterRecord],
    ) -> List[AnswerPair]:
        """Answer cache misses from the customized hierarchy (exact).

        Per-query degradation: an index query that fails unexpectedly
        falls back to plain Dijkstra for that query alone, so one bad
        query can never dead-letter its whole window.  Accounting holds
        regardless: every query returns answered or dead-lettered.
        """
        from ..search.dijkstra import dijkstra

        index = self._index
        assert index is not None
        n = self.graph.num_vertices
        pairs: List[AnswerPair] = []
        letters = 0
        for q in batch:
            if q.source >= n or q.target >= n:
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_INVALID_QUERY,
                        stage=STAGE_VALIDATION,
                        detail=f"vertex id out of range (|V| = {n})",
                    )
                )
                letters += 1
                continue
            try:
                result = index.query(q.source, q.target)
            except Exception as exc:
                logger.warning(
                    "index query %d->%d failed (%s: %s); "
                    "degrading this query to Dijkstra",
                    q.source,
                    q.target,
                    type(exc).__name__,
                    exc,
                )
                try:
                    result = dijkstra(self.graph, q.source, q.target)
                except Exception as exc2:
                    dead_letters.append(
                        DeadLetterRecord(
                            source=q.source,
                            target=q.target,
                            reason=REASON_WINDOW_DEGRADED,
                            stage=STAGE_SESSION,
                            error=type(exc2).__name__,
                            detail=str(exc2),
                        )
                    )
                    letters += 1
                    continue
            if not math.isfinite(result.distance):
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_NO_PATH,
                        stage=STAGE_SESSION,
                        error="NoPathError",
                        detail=f"no path from {q.source} to {q.target}",
                    )
                )
                letters += 1
                continue
            pairs.append((q, result))
        if letters:
            record_dead_letters(letters)
        return pairs

    def _answer_by_dijkstra(
        self,
        batch: QuerySet,
        dead_letters: List[DeadLetterRecord],
        reason: str = REASON_WINDOW_DEGRADED,
    ) -> List[AnswerPair]:
        """Exact per-query fallback: plain Dijkstra, no batching benefit.

        Used for shed queries and for windows the breaker keeps away from
        the backend.  Unanswerable queries dead-letter with ``reason``.
        """
        from ..search.dijkstra import dijkstra

        n = self.graph.num_vertices
        pairs: List[AnswerPair] = []
        letters = 0
        for q in batch:
            if q.source >= n or q.target >= n:
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_INVALID_QUERY,
                        stage=STAGE_VALIDATION,
                        detail=f"vertex id out of range (|V| = {n})",
                    )
                )
                letters += 1
                continue
            try:
                result = dijkstra(self.graph, q.source, q.target)
            except DeadlineExceededError as exc:
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_DEADLINE_EXCEEDED,
                        stage=STAGE_SESSION,
                        error="DeadlineExceededError",
                        detail=str(exc),
                    )
                )
                record_deadline(expired=1, preempted=1)
                letters += 1
                continue
            except Exception as exc:
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=reason,
                        stage=STAGE_SESSION,
                        error=type(exc).__name__,
                        detail=str(exc),
                    )
                )
                letters += 1
                continue
            if not math.isfinite(result.distance):
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_NO_PATH,
                        stage=STAGE_SESSION,
                        error="NoPathError",
                        detail=f"no path from {q.source} to {q.target}",
                    )
                )
                letters += 1
                continue
            pairs.append((q, result))
        if letters:
            record_dead_letters(letters)
        return pairs
