"""Micro-batch window assembly under a dual trigger.

The paper's batch algorithms consume pre-formed batches; a live service
has to *assemble* them from an arrival stream.  A :class:`MicroBatcher`
keeps at most one window open and cuts it on whichever trigger fires
first:

* **duration** — the window has been open for ``window_seconds`` (the
  ``--window-ms`` knob); cut at the deadline so batching delay is
  bounded even under trickle traffic, or
* **size** — the window holds ``max_batch`` queries; cut immediately so
  a burst cannot grow an unboundedly expensive window.

Windows are anchored at their first query (not a fixed grid): a quiet
stream pays zero idle windows, and the first query of a burst waits at
most ``window_seconds``.  The boundary is half-open exactly like
:func:`~repro.queries.arrivals.window_batches`: a query arriving at
precisely ``opened_at + window_seconds`` opens the *next* window.

:func:`assemble_micro_batches` replays a stamped stream through a
batcher, which is what the simulated-clock service reduces to when
nothing sheds — the equivalence is pinned by the property suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from ..exceptions import ConfigurationError
from ..queries.arrivals import TimedQuery
from ..queries.query import QuerySet

#: Why a window was cut.
TRIGGER_DURATION = "duration"
TRIGGER_SIZE = "size"
TRIGGER_FLUSH = "flush"

TRIGGERS = (TRIGGER_DURATION, TRIGGER_SIZE, TRIGGER_FLUSH)


@dataclass
class MicroWindow:
    """One assembled micro-batch, ready for dispatch."""

    index: int
    opened_at: float  #: instant the first query entered the window
    cut_at: float  #: scheduled cut instant (deadline, or the trigger arrival)
    trigger: str  #: one of :data:`TRIGGERS`
    arrivals: List[TimedQuery] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arrivals)

    def queries(self) -> QuerySet:
        """The window contents as the batch the decomposers consume."""
        return QuerySet(tq.query for tq in self.arrivals)

    @property
    def span_seconds(self) -> float:
        """How long the window was open before its cut."""
        return max(0.0, self.cut_at - self.opened_at)


class MicroBatcher:
    """Incremental dual-trigger assembler (at most one window open).

    Parameters
    ----------
    window_seconds:
        Maximum time a window stays open (duration trigger).
    max_batch:
        Maximum queries per window (size trigger); ``None`` disables the
        size trigger so only the timer cuts.
    """

    def __init__(self, window_seconds: float, max_batch: Optional[int] = None) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if max_batch is not None and max_batch < 1:
            raise ConfigurationError("max_batch must be at least 1")
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._open: List[TimedQuery] = []
        self._opened_at: Optional[float] = None
        self._next_index = 0
        self.windows_cut = 0

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Queries in the currently open window."""
        return len(self._open)

    @property
    def deadline(self) -> Optional[float]:
        """Instant the duration trigger fires, or ``None`` when closed."""
        if self._opened_at is None:
            return None
        return self._opened_at + self.window_seconds

    # ------------------------------------------------------------------
    def _cut(self, cut_at: float, trigger: str) -> MicroWindow:
        assert self._opened_at is not None
        window = MicroWindow(
            index=self._next_index,
            opened_at=self._opened_at,
            cut_at=cut_at,
            trigger=trigger,
            arrivals=self._open,
        )
        self._next_index += 1
        self.windows_cut += 1
        self._open = []
        self._opened_at = None
        return window

    def cut_if_due(self, now: float) -> Optional[MicroWindow]:
        """Cut the open window if its duration deadline has passed.

        The cut is stamped at the *deadline*, not at ``now``: under
        backlog the timer conceptually fired on schedule even if the
        service only got around to it later.
        """
        deadline = self.deadline
        if deadline is not None and now >= deadline:
            return self._cut(deadline, TRIGGER_DURATION)
        return None

    def offer(self, tq: TimedQuery, now: Optional[float] = None) -> List[MicroWindow]:
        """Add one query at instant ``now``; return any windows this cut.

        At most two windows can emerge from one offer: a due open window
        (duration trigger) and — with ``max_batch == 1`` — the query's own
        fresh window (size trigger).
        """
        if tq.arrival < 0:
            raise ConfigurationError(
                f"arrival times must be non-negative, got {tq.arrival!r}"
            )
        if now is None:
            now = tq.arrival
        out: List[MicroWindow] = []
        due = self.cut_if_due(now)
        if due is not None:
            out.append(due)
        if self._opened_at is None:
            self._opened_at = now
        self._open.append(tq)
        if self.max_batch is not None and len(self._open) >= self.max_batch:
            out.append(self._cut(now, TRIGGER_SIZE))
        return out

    def flush(self, now: Optional[float] = None) -> Optional[MicroWindow]:
        """Cut whatever is open (stream drained / service stopping).

        With ``now`` beyond the deadline this is a regular duration cut;
        otherwise the window is cut early with the ``flush`` trigger at
        ``now`` (or at the deadline when no instant is given, which is
        when the timer would have fired anyway).
        """
        if self._opened_at is None:
            return None
        deadline = self._opened_at + self.window_seconds
        if now is None:
            return self._cut(deadline, TRIGGER_DURATION)
        if now >= deadline:
            return self._cut(deadline, TRIGGER_DURATION)
        return self._cut(now, TRIGGER_FLUSH)


def assemble_micro_batches(
    arrivals: Iterable[TimedQuery],
    window_seconds: float,
    max_batch: Optional[int] = None,
) -> List[MicroWindow]:
    """Replay a stamped stream through a :class:`MicroBatcher`.

    This is the offline (zero-service-time) reference of the streaming
    service's window assembly: the simulated-clock service with a large
    enough admission queue produces exactly these windows.
    """
    batcher = MicroBatcher(window_seconds, max_batch)
    windows: List[MicroWindow] = []
    for tq in sorted(arrivals):
        windows.extend(batcher.offer(tq))
    final = batcher.flush()
    if final is not None:
        windows.append(final)
    return windows
