"""Admission control: bounded ingress queue + degrade-before-drop shedding.

The streaming service admits arrivals into a bounded queue between the
raw stream and the window assembler.  When the backend falls behind and
the queue fills, the configured :data:`POLICIES` decide what happens to
the overflow:

* ``"degrade"`` (default) — the query is answered *immediately* with a
  plain Dijkstra search: it loses the batching/cache benefit (and pays
  the full search cost) but is still answered exactly, so overload never
  changes results.  This is the "degrade singletons before dropping"
  rung.
* ``"degrade-then-drop"`` — degrade until ``degrade_budget`` shed queries
  have been absorbed, then start dropping.
* ``"drop"`` — dead-letter the overflow outright (stress testing).

Dropped queries are never silent: each one becomes a
:class:`~repro.resilience.DeadLetterRecord` with reason ``"shed"`` at
stage ``"admission"``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from ..exceptions import ConfigurationError
from ..queries.arrivals import TimedQuery

#: Admission outcomes.
ADMITTED = "admitted"
SHED_DEGRADE = "degrade"
SHED_DROP = "drop"

#: Supported load-shedding policies.
POLICIES = ("degrade", "degrade-then-drop", "drop")


class AdmissionController:
    """Bounded FIFO of admitted-but-unassembled queries.

    Parameters
    ----------
    queue_capacity:
        Maximum queries waiting for window assembly; arrivals beyond it
        are shed per ``policy``.
    policy:
        One of :data:`POLICIES`.
    degrade_budget:
        With ``policy="degrade-then-drop"``: how many shed queries are
        degraded before the rest are dropped (``None`` = unlimited, which
        makes the policy equivalent to ``"degrade"``).
    """

    def __init__(
        self,
        queue_capacity: int = 1024,
        policy: str = "degrade",
        degrade_budget: Optional[int] = None,
    ) -> None:
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be at least 1")
        if policy not in POLICIES:
            raise ConfigurationError(
                f"shed policy must be one of {POLICIES}, got {policy!r}"
            )
        if degrade_budget is not None and degrade_budget < 0:
            raise ConfigurationError("degrade_budget must be non-negative")
        self.queue_capacity = queue_capacity
        self.policy = policy
        self.degrade_budget = degrade_budget
        self._queue: Deque[TimedQuery] = deque()
        self.admitted = 0
        self.shed_degraded = 0
        self.shed_dropped = 0
        #: Contiguous episodes of queue-full backpressure (not per query).
        self.backpressure_stalls = 0
        self._stalled = False

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Queries currently waiting for assembly."""
        return len(self._queue)

    @property
    def shed_total(self) -> int:
        return self.shed_degraded + self.shed_dropped

    def admit(self, tq: TimedQuery) -> str:
        """Offer one arrival; returns :data:`ADMITTED`, :data:`SHED_DEGRADE`
        or :data:`SHED_DROP`.

        The caller handles the shed outcomes (degraded queries must still
        be answered; dropped queries must be dead-lettered).
        """
        if len(self._queue) < self.queue_capacity:
            self._queue.append(tq)
            self.admitted += 1
            self._stalled = False
            return ADMITTED
        if not self._stalled:
            # Count the episode once, however many queries it sheds.
            self.backpressure_stalls += 1
            self._stalled = True
        if self.policy == "drop":
            self.shed_dropped += 1
            return SHED_DROP
        if (
            self.policy == "degrade-then-drop"
            and self.degrade_budget is not None
            and self.shed_degraded >= self.degrade_budget
        ):
            self.shed_dropped += 1
            return SHED_DROP
        self.shed_degraded += 1
        return SHED_DEGRADE

    def pop(self) -> TimedQuery:
        """Take the oldest admitted query for window assembly."""
        tq = self._queue.popleft()
        self._stalled = False
        return tq
