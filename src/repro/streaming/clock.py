"""Clock abstraction: simulated (deterministic) vs monotonic (real) time.

Every scheduling decision the streaming service makes — window cuts,
shedding, backpressure stalls — reads time through this interface, so the
same service code runs in two modes:

* :class:`SimulatedClock` — time advances only when the service advances
  it (to the next arrival or the next window deadline).  Scheduling is a
  pure function of the arrival stream and the configuration, so every
  test run is bit-reproducible.
* :class:`MonotonicClock` — ``time.monotonic`` based, with real sleeping.
  Used by ``repro serve --clock real`` and the streaming benchmark, where
  wall-clock latency is the measurement.
"""

from __future__ import annotations

import time

from ..exceptions import ConfigurationError


class SimulatedClock:
    """Deterministic clock: advances only under program control."""

    #: Real seconds one simulated :meth:`sleep` second costs (none).
    is_real = False

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ConfigurationError("clock start must be non-negative")
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance simulated time; sleeping never blocks."""
        if seconds > 0:
            self._now += seconds

    def advance_to(self, instant: float) -> None:
        """Move the clock forward to ``instant`` (monotone: never back)."""
        if instant > self._now:
            self._now = instant


class MonotonicClock:
    """Real time, zeroed at construction so streams can start at t=0."""

    is_real = True

    def __init__(self) -> None:
        self._t0 = time.monotonic()

    def now(self) -> float:
        return time.monotonic() - self._t0

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)

    def advance_to(self, instant: float) -> None:
        """Block until real time reaches ``instant``."""
        self.sleep(instant - self.now())


def make_clock(kind: str) -> "SimulatedClock | MonotonicClock":
    """Build a clock from its CLI name (``"simulated"`` or ``"real"``)."""
    if kind == "simulated":
        return SimulatedClock()
    if kind == "real":
        return MonotonicClock()
    raise ConfigurationError(f"unknown clock kind {kind!r}; use 'simulated' or 'real'")
