"""Crash-safe arrivals journal: an append-only JSONL write-ahead log.

The streaming service's accounting invariant — every arrival is answered
or dead-lettered — only holds while the process lives.  A ``kill -9``
mid-stream silently loses every query that had been admitted but not yet
answered.  The :class:`ArrivalJournal` closes that gap with the classic
WAL discipline:

* an **arrival record** is appended (and flushed) for every query before
  the run starts answering — the query now exists durably;
* a **done record** is appended once the query's fate is sealed
  (answered, or dead-lettered with a structured reason);
* the journal is flushed — optionally ``fsync``'d — at every window
  boundary, so a crash tears at most the final partially-written line.

Recovery is a pure function of the file: arrivals lacking a done record
are exactly the queries the dead process still owed an answer, and
``repro serve --recover`` replays them through a fresh service.  A torn
final line (the crash landed mid-``write``) is tolerated and counted;
the fixed-length records before it are intact by construction.

Records are one JSON object per line::

    {"type": "arrival", "seq": 17, "arrival": 3.25, "source": 5, "target": 9}
    {"type": "done", "seq": 17, "outcome": "answered"}

``seq`` is the journal's own monotonically increasing identity — two
arrivals may share (source, target, arrival), so the key travels on the
:class:`~repro.queries.arrivals.TimedQuery` itself (``seq`` field).
"""

from __future__ import annotations

import json
import logging
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..exceptions import ConfigurationError
from ..queries.arrivals import TimedQuery
from ..queries.query import Query

logger = logging.getLogger(__name__)

#: Done-record outcomes.
OUTCOME_ANSWERED = "answered"
OUTCOME_DEAD_LETTER = "dead-letter"

RECORD_ARRIVAL = "arrival"
RECORD_DONE = "done"


@dataclass
class JournalScan:
    """What a read of the journal file found."""

    #: Arrivals that never received a done record, in seq order.
    pending: List[TimedQuery] = field(default_factory=list)
    #: First unused sequence number.
    next_seq: int = 0
    arrivals: int = 0
    done: int = 0
    #: Unparseable lines skipped (a torn final line after a crash).
    torn_lines: int = 0


def scan_journal(path: str) -> JournalScan:
    """Read a journal file, tolerating a torn final line.

    Any line that fails to parse is skipped and counted; only a torn
    *final* line is expected in practice (the crash landed mid-write),
    but recovery should never be blocked by one bad record, so mid-file
    damage degrades to a warning rather than an error.
    """
    scan = JournalScan()
    if not os.path.exists(path):
        return scan
    open_arrivals: Dict[int, TimedQuery] = {}
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                kind = rec["type"]
                seq = int(rec["seq"])
            except (ValueError, KeyError, TypeError):
                scan.torn_lines += 1
                logger.warning(
                    "journal %s: skipping unparseable line %d", path, lineno
                )
                continue
            if kind == RECORD_ARRIVAL:
                try:
                    tq = TimedQuery(
                        arrival=float(rec["arrival"]),
                        query=Query(int(rec["source"]), int(rec["target"])),
                        seq=seq,
                    )
                except (ValueError, KeyError, TypeError):
                    scan.torn_lines += 1
                    continue
                open_arrivals[seq] = tq
                scan.arrivals += 1
                scan.next_seq = max(scan.next_seq, seq + 1)
            elif kind == RECORD_DONE:
                open_arrivals.pop(seq, None)
                scan.done += 1
                scan.next_seq = max(scan.next_seq, seq + 1)
            else:
                scan.torn_lines += 1
    scan.pending = [open_arrivals[s] for s in sorted(open_arrivals)]
    return scan


class ArrivalJournal:
    """Append-only arrivals WAL bound to one file.

    Opening an existing file resumes it: the constructor scans it once,
    so ``pending_arrivals()`` yields the queries a previous (crashed or
    drained) run still owes and new sequence numbers continue where the
    old run stopped.

    Parameters
    ----------
    path:
        Journal file; created (with parent directories) when absent.
    fsync:
        Whether :meth:`flush` also ``os.fsync``'s — the difference
        between surviving a process kill (buffered data is in the page
        cache either way) and surviving a machine power cut.
    """

    def __init__(self, path: str, fsync: bool = True) -> None:
        if not path:
            raise ConfigurationError("journal path must be non-empty")
        self.path = path
        self.fsync = fsync
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._scan = scan_journal(path)
        self._next_seq = self._scan.next_seq
        self._fh = open(path, "a", encoding="utf-8")
        self.appended_arrivals = 0
        self.appended_done = 0

    # ------------------------------------------------------------------
    @property
    def torn_lines(self) -> int:
        return self._scan.torn_lines

    def pending_arrivals(self) -> List[TimedQuery]:
        """Arrivals without a done record when the journal was opened."""
        return list(self._scan.pending)

    def next_seq(self) -> int:
        """Allocate the next sequence number."""
        seq = self._next_seq
        self._next_seq += 1
        return seq

    # ------------------------------------------------------------------
    def append_arrival(self, tq: TimedQuery) -> None:
        if tq.seq is None:
            raise ConfigurationError("journaled arrival needs a seq stamp")
        self._write(
            {
                "type": RECORD_ARRIVAL,
                "seq": tq.seq,
                "arrival": tq.arrival,
                "source": tq.query.source,
                "target": tq.query.target,
            }
        )
        self.appended_arrivals += 1

    def append_done(self, seq: int, outcome: str) -> None:
        self._write({"type": RECORD_DONE, "seq": seq, "outcome": outcome})
        self.appended_done += 1

    def _write(self, record: dict) -> None:
        if self._fh is None:
            raise ConfigurationError("journal is closed")
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")

    def flush(self) -> None:
        """Push buffered records to the OS (and to disk when ``fsync``)."""
        if self._fh is None:
            return
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        fh, self._fh = self._fh, None
        if fh is not None:
            try:
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            finally:
                fh.close()

    def __enter__(self) -> "ArrivalJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
