"""Imports every suite module so the registry is fully populated.

``repro.bench.registry`` imports this module lazily the first time a
suite is resolved; each suite module registers its suites at import via
the :func:`~repro.bench.registry.suite` decorator.

Registered suites: ``csr``, ``csr_np``, ``cch_customize``,
``obs_overhead``, ``streaming``, ``fig7a``–``fig7f``, ``fig8``,
``table1``, ``table2``, ``ablations``, ``scaling``, ``microbench``,
``smoke``.
"""

from __future__ import annotations

from . import ablations as _ablations  # noqa: F401
from . import cch_customize as _cch_customize  # noqa: F401
from . import csr as _csr  # noqa: F401
from . import csr_np as _csr_np  # noqa: F401
from . import figures as _figures  # noqa: F401
from . import micro as _micro  # noqa: F401
from . import obs_overhead as _obs_overhead  # noqa: F401
from . import scaling as _scaling  # noqa: F401
from . import streaming_bench as _streaming_bench  # noqa: F401
