"""Micro and smoke suites: fast, mostly-deterministic primitive metrics.

``microbench`` tracks per-operation costs of the core primitives (like
``benchmarks/test_microbench.py``), pairing each wall-time sample with
the deterministic work counter behind it (visited vertices, cluster
counts, cache hits) so a branch compare distinguishes "the machine was
busy" from "the algorithm does more work now".

``smoke`` is the CI-sized subset: seconds, not minutes, on the ``tiny``
network — the suite the advisory CI compare runs on every push.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple

from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric

TIME_TOL = 40.0


def best_of(fn: Callable[[], object], rounds: int = 3) -> Tuple[float, object]:
    """(best wall seconds, last result) over ``rounds`` runs."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _ms(seconds: float, tolerance_pct: float = TIME_TOL) -> Metric:
    return Metric(seconds * 1e3, unit="ms", kind="time",
                  tolerance_pct=tolerance_pct)


def _count(value: float, direction: str = "lower") -> Metric:
    return Metric(float(value), kind="count", direction=direction,
                  tolerance_pct=0.0)


def _collect(env, *, batch: int, rounds: int) -> Dict[str, Metric]:
    from ..core.cache import PathCache
    from ..core.coclustering import CoClusteringDecomposer
    from ..network.grid import GridIndex
    from ..search.astar import a_star
    from ..search.bidirectional import bidirectional_dijkstra
    from ..search.dijkstra import dijkstra

    metrics: Dict[str, Metric] = {}
    graph = env.graph
    q = env.fresh_workload(801).batch(1, *env.r2r_band)[0]
    s, t = q.source, q.target

    seconds, result = best_of(lambda: dijkstra(graph, s, t), rounds)
    metrics["dijkstra.ms"] = _ms(seconds)
    metrics["dijkstra.visited"] = _count(result.visited)

    frozen = graph.copy()
    t0 = time.perf_counter()
    frozen.freeze()
    metrics["freeze.ms"] = _ms(time.perf_counter() - t0)
    seconds, frozen_result = best_of(lambda: dijkstra(frozen, s, t), rounds)
    metrics["dijkstra_frozen.ms"] = _ms(seconds)
    metrics["dijkstra_frozen.visited"] = _count(frozen_result.visited)
    assert frozen_result.distance == result.distance

    seconds, result = best_of(lambda: a_star(graph, s, t), rounds)
    metrics["astar.ms"] = _ms(seconds)
    metrics["astar.visited"] = _count(result.visited)

    seconds, result = best_of(lambda: bidirectional_dijkstra(graph, s, t), rounds)
    metrics["bidirectional.ms"] = _ms(seconds)
    metrics["bidirectional.visited"] = _count(result.visited)

    queries = env.fresh_workload(804).batch(batch)
    decomposer = CoClusteringDecomposer(graph, eta=0.05)
    seconds, decomposition = best_of(lambda: decomposer.decompose(queries), rounds)
    metrics["cocluster.ms"] = _ms(seconds)
    metrics["cocluster.clusters"] = _count(len(decomposition))

    cache = PathCache(graph)
    cache_batch = env.fresh_workload(803).batch(60, *env.cache_band)
    for query in list(cache_batch)[:30]:
        r = a_star(graph, query.source, query.target)
        if r.found:
            cache.insert(r.path)
    probes = [(query.source, query.target) for query in cache_batch]

    def lookups() -> int:
        found = 0
        for a, b in probes:
            if cache.lookup(a, b) is not None:
                found += 1
        return found

    seconds, hits = best_of(lookups, rounds)
    metrics["cache.lookup_ms"] = _ms(seconds)
    metrics["cache.hits"] = _count(hits, direction="higher")

    seconds, index = best_of(lambda: GridIndex(graph, levels=5), rounds)
    metrics["grid.build_ms"] = _ms(seconds)
    metrics["grid.nonempty_cells"] = _count(index.nonempty_cells,
                                            direction="higher")
    return metrics


def _render(title: str, metrics: Dict[str, Metric]) -> str:
    from ..analysis.tables import render_table

    rows = [
        [key, f"{m.value:.6g}", m.unit or "-", m.kind]
        for key, m in sorted(metrics.items())
    ]
    return render_table(["metric", "value", "unit", "kind"], rows, title=title)


@suite("microbench", "per-primitive costs with their deterministic work counters",
       default_scale="small")
def microbench_suite(ctx: SuiteContext) -> SuiteRun:
    scale = ctx.scale_for(microbench_suite.__suite__)
    metrics = _collect(ctx.env(scale), batch=500, rounds=3)
    return SuiteRun(metrics=metrics,
                    rendered=_render(f"Microbench ({scale})", metrics))


@suite("smoke", "CI-sized primitive metrics on the tiny network",
       default_scale="tiny")
def smoke_suite(ctx: SuiteContext) -> SuiteRun:
    scale = ctx.scale_for(smoke_suite.__suite__)
    metrics = _collect(ctx.env(scale), batch=120, rounds=2)
    return SuiteRun(metrics=metrics,
                    rendered=_render(f"Smoke bench ({scale})", metrics))
