"""Execute registered suites and persist schema'd results per label.

``run_suites`` is the body behind ``repro bench run``: resolve suites,
build one shared :class:`~repro.bench.registry.SuiteContext` (so e.g.
fig7b–fig7e pay for the cache sweep once), run each suite, and write

* ``<results_dir>/<label>/<suite>.json`` — the schema'd result,
* ``<results_dir>/<label>/<suite>.txt`` — the legacy text render
  (secondary artefact; the paper-style top-level ``results/*.txt``
  files keep being written by the pytest benchmarks as before).
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List, Optional, Sequence, Tuple

from .knobs import consumed_knobs
from .registry import SuiteContext, resolve_suites
from .schema import PathLike, SuiteResult, run_metadata, save_result

#: Default results root, relative to the working directory.
DEFAULT_RESULTS_DIR = Path("benchmarks") / "results"


def run_suites(
    names: Sequence[str],
    label: str,
    results_dir: PathLike = DEFAULT_RESULTS_DIR,
    *,
    scale: Optional[str] = None,
    sizes: Optional[Sequence[int]] = None,
    seed: int = 7,
    repeat: int = 1,
    on_progress: Optional[Callable[[str], None]] = None,
) -> List[Tuple[SuiteResult, Path]]:
    """Run every named suite (``all`` expands) and persist one file each.

    ``repeat`` > 1 runs every suite that many times, writing
    ``<suite>.json`` plus ``<suite>.run<k>.json`` siblings; the comparator
    aggregates multi-run labels by per-metric median, which is how noisy
    wall-time metrics earn a stable baseline.
    """
    from ..exceptions import ConfigurationError

    if repeat < 1:
        raise ConfigurationError("repeat must be at least 1")
    suites = resolve_suites(names)
    ctx = SuiteContext(scale=scale, sizes=sizes, seed=seed)
    results_dir = Path(results_dir)
    out: List[Tuple[SuiteResult, Path]] = []
    for entry in suites:
        for run_index in range(1, repeat + 1):
            if on_progress is not None:
                tag = f" (run {run_index}/{repeat})" if repeat > 1 else ""
                on_progress(f"running suite {entry.name!r}{tag}...")
            run = entry.fn(ctx)
            meta = run_metadata(label, seed=seed, knobs=consumed_knobs())
            result = SuiteResult(
                suite=entry.name,
                label=label,
                meta=meta,
                metrics=run.metrics,
                rendered=run.rendered,
            )
            path = save_result(result, results_dir, run_index=run_index)
            label_dir = path.parent
            if run_index == 1:
                if run.rendered is not None:
                    (label_dir / f"{entry.name}.txt").write_text(
                        run.rendered + "\n", encoding="utf-8"
                    )
                for name, rendered in run.extra_renders.items():
                    (label_dir / f"{name}.txt").write_text(
                        rendered + "\n", encoding="utf-8"
                    )
            if on_progress is not None:
                on_progress(
                    f"suite {entry.name!r}: {len(run.metrics)} metrics -> {path}"
                )
            out.append((result, path))
    return out
