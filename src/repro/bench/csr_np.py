"""Vectorized numpy kernel speedup over the per-query dict loop.

Companion to the ``csr`` suite: where that one gates the scalar CSR
kernels, this one gates the batched numpy sweeps from
``repro.search.np_kernels`` — batch point-to-point at a realistic cluster
width, the joint 4-ball region collection R2R issues per representative,
and the one-to-many boundary sweep LC issues per cluster.

Timing uses best-of-``rounds`` (minimum) rather than the median: the
vectorized sweep's wall time is dominated by a handful of large
allocations whose variance under container scheduling noise is far
larger than the kernel's own variance, and the minimum is the standard
estimator for "how fast can this code go" (cf. ``timeit``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List

from .knobs import env_float, env_int, env_str
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric


@dataclass
class CsrNpOutcome:
    metrics: Dict[str, Metric]
    rendered: str
    #: Budget violations (empty = the speedup claims hold).
    failures: List[str] = field(default_factory=list)


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_csr_np(
    scale: str = "xlarge",
    batch: int = 64,
    rounds: int = 5,
    min_speedup: float = 5.0,
) -> CsrNpOutcome:
    """Measure numpy-vs-dict batch speedups; never exits, only reports."""
    from ..network.generators import beijing_like
    from ..search import np_kernels
    from ..search.dijkstra import bounded_ball_tree, dijkstra, one_to_many

    if not np_kernels.np_available():
        return CsrNpOutcome(
            metrics={"numpy_available": Metric(0.0, kind="info")},
            rendered="numpy unavailable: csr_np suite skipped",
        )

    lines = [f"network        : beijing_like({scale!r})"]
    graph = beijing_like(scale, seed=0)
    n = graph.num_vertices
    lines.append(f"size           : {n} vertices, {graph.num_edges} edges")
    lines.append(f"batch          : {batch} queries, best of {rounds} rounds")

    rng = random.Random(99)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(batch)]

    # Dict path: a copy that is never frozen, so dispatch cannot switch.
    dict_graph = graph.copy()
    csr = graph.freeze()
    np_kernels.warm_view(csr)  # build the flat-buffer view outside timing

    # --- batch point-to-point ---------------------------------------
    def dict_p2p():
        return [dijkstra(dict_graph, s, t) for s, t in pairs]

    def np_p2p():
        return np_kernels.np_batch_dijkstra(csr, pairs)

    truth, got = dict_p2p(), np_p2p()  # warm both paths + verify answers
    for want, have in zip(truth, got):
        assert (want.distance, want.path) == (have.distance, have.path)
    dict_seconds = _best_of(dict_p2p, rounds)
    np_seconds = _best_of(np_p2p, rounds)
    p2p_speedup = dict_seconds / np_seconds if np_seconds > 0 else float("inf")
    lines.append(f"dict p2p loop  : {dict_seconds * 1e3:.1f} ms / {batch} queries")
    lines.append(f"np batch p2p   : {np_seconds * 1e3:.1f} ms / {batch} queries")
    lines.append(
        f"p2p speedup    : {p2p_speedup:.2f}x (required >= {min_speedup:.2f}x)"
    )

    # --- joint 4-ball region collection (R2R's per-representative op)
    # Radius derived from realized distances so the balls cover a
    # substantial region at every scale (tiny balls time in the tens of
    # microseconds, where scheduling noise swamps the comparison).
    finite = sorted(r.distance for r in truth if r.found)
    radius = 0.5 * finite[-1] if finite else 6.0
    specs = [(pairs[0][0], False), (pairs[0][0], True),
             (pairs[1][0], False), (pairs[1][0], True)]

    def dict_balls():
        return [bounded_ball_tree(dict_graph, s, radius, b) for s, b in specs]

    def np_balls():
        return np_kernels.np_multi_bounded_ball_tree(csr, specs, radius)

    assert dict_balls() == np_balls()
    ball_dict_s = _best_of(dict_balls, rounds)
    ball_np_s = _best_of(np_balls, rounds)
    ball_speedup = ball_dict_s / ball_np_s if ball_np_s > 0 else float("inf")
    lines.append(
        f"4-ball region  : dict {ball_dict_s * 1e3:.1f} ms, "
        f"np {ball_np_s * 1e3:.1f} ms ({ball_speedup:.2f}x)"
    )

    # --- one-to-many boundary sweep (LC's per-cluster op) ------------
    source = pairs[0][0]
    targets = [t for _, t in pairs]

    def dict_otm():
        return one_to_many(dict_graph, source, targets)

    def np_otm():
        return np_kernels.np_one_to_many(csr, source, targets)

    assert dict_otm() == np_otm()
    otm_dict_s = _best_of(dict_otm, rounds)
    otm_np_s = _best_of(np_otm, rounds)
    otm_speedup = otm_dict_s / otm_np_s if otm_np_s > 0 else float("inf")
    lines.append(
        f"one-to-many    : dict {otm_dict_s * 1e3:.1f} ms, "
        f"np {otm_np_s * 1e3:.1f} ms ({otm_speedup:.2f}x)"
    )

    failures = []
    if p2p_speedup < min_speedup:
        failures.append(
            f"np batch p2p speedup {p2p_speedup:.2f}x below the "
            f"{min_speedup:.2f}x budget"
        )

    metrics = {
        "numpy_available": Metric(1.0, kind="info"),
        "dict_p2p_ms": Metric(dict_seconds * 1e3, unit="ms", kind="time",
                              tolerance_pct=40.0),
        "np_p2p_ms": Metric(np_seconds * 1e3, unit="ms", kind="time",
                            tolerance_pct=40.0),
        "p2p_speedup": Metric(p2p_speedup, kind="ratio", direction="higher",
                              tolerance_pct=40.0),
        "ball_speedup": Metric(ball_speedup, kind="ratio", direction="higher",
                               tolerance_pct=60.0),
        "otm_speedup": Metric(otm_speedup, kind="ratio", direction="higher",
                              tolerance_pct=60.0),
        "budget_failures": Metric(float(len(failures)), kind="info"),
    }
    return CsrNpOutcome(metrics=metrics, rendered="\n".join(lines),
                        failures=failures)


@suite("csr_np", "vectorized numpy batch-kernel speedup budget",
       default_scale="xlarge")
def csr_np_suite(ctx: SuiteContext) -> SuiteRun:
    scale = ctx.scale if ctx.scale is not None else env_str(
        "REPRO_CSR_NP_SCALE", "xlarge"
    )
    outcome = run_csr_np(
        scale=scale,
        batch=env_int("REPRO_CSR_NP_BATCH", 64),
        rounds=env_int("REPRO_CSR_NP_ROUNDS", 5),
        min_speedup=env_float("REPRO_CSR_NP_MIN_SPEEDUP", 5.0),
    )
    return SuiteRun(metrics=outcome.metrics, rendered=outcome.rendered)
