"""Null-registry overhead measurement body (see ``bench_obs_overhead.py``).

Measures the instrumented :func:`repro.search.dijkstra.dijkstra` under
the default null registry against a verbatim copy of the
pre-instrumentation implementation, in paired rounds with alternating
order so machine drift hits both sides equally.  The standalone script
gates on the budget; the ``obs_overhead`` suite records the median ratio
for branch comparison.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Set, Tuple

from .knobs import env_float, env_int
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric

Infinity = math.inf


def baseline_dijkstra(graph, source: int, target: int):
    """The seed's un-instrumented point-to-point Dijkstra, verbatim."""
    from ..search.common import PathResult, reconstruct_path

    adj = graph._adj  # noqa: SLF001 - hot path
    dist: Dict[int, float] = {source: 0.0}
    parents: Dict[int, int] = {}
    done: Set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    visited = 0
    while heap:
        d, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        visited += 1
        if u == target:
            return PathResult(
                source, target, d, reconstruct_path(parents, source, target), visited
            )
        for v, w in adj[u]:
            v = int(v)
            nd = d + w
            if nd < dist.get(v, Infinity):
                dist[v] = nd
                parents[v] = u
                heappush(heap, (nd, v))
    return PathResult(source, target, Infinity, [], visited)


def time_round(fn, graph, pairs) -> float:
    t0 = time.perf_counter()
    for s, t in pairs:
        fn_result = fn(graph, s, t)
    elapsed = time.perf_counter() - t0
    assert fn_result.found
    return elapsed


@dataclass
class ObsOutcome:
    metrics: Dict[str, Metric]
    rendered: str
    median_ratio: float
    overhead_pct: float
    budget_pct: float
    ratios: List[float] = field(default_factory=list)

    @property
    def within_budget(self) -> bool:
        return self.overhead_pct <= self.budget_pct


def run_obs_overhead(
    budget_pct: float = 3.0,
    rounds: int = 15,
    pairs: int = 15,
    grid_side: int = 200,
    progress: bool = False,
) -> ObsOutcome:
    from ..network.generators import grid_city
    from ..search.dijkstra import dijkstra as instrumented_dijkstra

    lines = [f"building {grid_side}x{grid_side} grid city..."]
    graph = grid_city(grid_side, grid_side, spacing=0.5, seed=7)
    rng = random.Random(11)
    n = graph.num_vertices
    query_pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(pairs)]

    for s, t in query_pairs[:3]:  # sanity: identical answers
        a, b = baseline_dijkstra(graph, s, t), instrumented_dijkstra(graph, s, t)
        assert a.distance == b.distance and a.path == b.path

    # Paired rounds, alternating order within a round, so machine drift
    # (thermal, allocator, scheduler) hits both sides equally; the median
    # ratio is the robust overhead estimate.
    ratios: List[float] = []
    for i in range(rounds):
        if i % 2 == 0:
            t_base = time_round(baseline_dijkstra, graph, query_pairs)
            t_inst = time_round(instrumented_dijkstra, graph, query_pairs)
        else:
            t_inst = time_round(instrumented_dijkstra, graph, query_pairs)
            t_base = time_round(baseline_dijkstra, graph, query_pairs)
        ratios.append(t_inst / t_base)
        line = (
            f"round {i + 1}/{rounds}: baseline {t_base:.3f}s, "
            f"instrumented {t_inst:.3f}s, ratio {ratios[-1]:.4f}"
        )
        lines.append(line)
        if progress:
            print(line, flush=True)

    ordered = sorted(ratios)
    median = ordered[len(ordered) // 2]
    overhead_pct = (median - 1.0) * 100.0
    lines.append(
        f"\nmedian of {rounds} paired ratios over {pairs} queries: "
        f"{median:.4f} (spread {ordered[0]:.4f}..{ordered[-1]:.4f})"
    )
    lines.append(
        f"null-registry overhead: {overhead_pct:+.2f}% (budget {budget_pct:.1f}%)"
    )

    metrics = {
        # The ratio sits near 1.0, so relative comparison is meaningful;
        # the raw overhead percent crosses zero and is info-only.
        "median_ratio": Metric(median, kind="ratio", tolerance_pct=6.0),
        "overhead_pct": Metric(overhead_pct, unit="%", kind="info"),
        "spread_low": Metric(ordered[0], kind="info"),
        "spread_high": Metric(ordered[-1], kind="info"),
    }
    return ObsOutcome(
        metrics=metrics,
        rendered="\n".join(lines),
        median_ratio=median,
        overhead_pct=overhead_pct,
        budget_pct=budget_pct,
        ratios=ratios,
    )


@suite("obs_overhead", "null-registry instrumentation overhead vs the seed",
       default_scale="medium")
def obs_overhead_suite(ctx: SuiteContext) -> SuiteRun:
    outcome = run_obs_overhead(
        budget_pct=env_float("REPRO_OBS_BUDGET_PCT", 3.0),
        rounds=env_int("REPRO_OBS_ROUNDS", 15),
        pairs=env_int("REPRO_OBS_PAIRS", 15),
        grid_side=env_int("REPRO_OBS_GRID", 200),
    )
    return SuiteRun(metrics=outcome.metrics, rendered=outcome.rendered)
