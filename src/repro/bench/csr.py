"""Frozen-CSR kernel speedup and spawn-payload measurement body.

The measurement previously lived inline in ``benchmarks/bench_csr.py``;
it now lives here so the standalone script (which still gates CI with an
exit code) and the ``csr`` harness suite (which records schema'd JSON for
``repro bench compare``) share one body.
"""

from __future__ import annotations

import pickle
import random
import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List

from .knobs import env_float, env_int, env_str
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric


@dataclass
class CsrOutcome:
    metrics: Dict[str, Metric]
    rendered: str
    #: Budget violations (empty = the speedup/payload claims hold).
    failures: List[str] = field(default_factory=list)


def time_queries(graph, pairs, rounds):
    """Median over ``rounds`` of the total wall time for ``pairs``."""
    from ..search.dijkstra import dijkstra

    totals = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        for s, t in pairs:
            dijkstra(graph, s, t)
        totals.append(time.perf_counter() - t0)
    return statistics.median(totals)


def run_csr(
    scale: str = "xlarge",
    pairs: int = 40,
    rounds: int = 5,
    min_speedup: float = 2.0,
) -> CsrOutcome:
    """Measure kernel speedup + spawn payload; never exits, only reports."""
    from ..network.csr import CSRGraph, share_csr
    from ..network.generators import beijing_like
    from ..search.dijkstra import dijkstra

    lines = [f"network        : beijing_like({scale!r})"]
    graph = beijing_like(scale, seed=0)
    lines.append(
        f"size           : {graph.num_vertices} vertices, {graph.num_edges} edges"
    )

    rng = random.Random(99)
    n = graph.num_vertices
    query_pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(pairs)]

    # Dict path: a copy that is never frozen, so dispatch cannot switch.
    dict_graph = graph.copy()
    t0 = time.perf_counter()
    csr = graph.freeze()
    freeze_seconds = time.perf_counter() - t0
    csr.forward_rows()  # decode outside the timed region, like a real run
    csr.reverse_rows()
    lines.append(
        f"freeze         : {freeze_seconds * 1e3:.1f} ms "
        f"({csr.nbytes / 1e6:.1f} MB of flat buffers)"
    )

    # Warm both paths once, then interleave measurements.
    time_queries(dict_graph, query_pairs[:5], 1)
    time_queries(graph, query_pairs[:5], 1)
    dict_seconds = time_queries(dict_graph, query_pairs, rounds)
    csr_seconds = time_queries(graph, query_pairs, rounds)

    # Sanity: identical answers on a sample (the full differential suite
    # lives in tests/search/test_csr_kernels.py).
    for s, t in query_pairs[:5]:
        assert dijkstra(graph, s, t).distance == dijkstra(dict_graph, s, t).distance

    speedup = dict_seconds / csr_seconds if csr_seconds > 0 else float("inf")
    lines.append(f"dict kernel    : {dict_seconds * 1e3:.1f} ms / {pairs} queries")
    lines.append(f"csr kernel     : {csr_seconds * 1e3:.1f} ms / {pairs} queries")
    lines.append(
        f"speedup        : {speedup:.2f}x (required >= {min_speedup:.2f}x)"
    )

    # Spawn-payload budget: handle vs pickled graph.
    graph_payload = len(pickle.dumps((graph, "local-cache", {})))
    shared = share_csr(csr)
    try:
        handle_payload = len(pickle.dumps((shared.handle, "local-cache", {})))
        t0 = time.perf_counter()
        attached = CSRGraph.attach(shared.handle)
        attach_seconds = time.perf_counter() - t0
        attached.release()
    finally:
        shared.close()
    t0 = time.perf_counter()
    pickle.loads(pickle.dumps(graph))
    unpickle_seconds = time.perf_counter() - t0
    lines.append(
        f"spawn payload  : {handle_payload} B (handle) vs "
        f"{graph_payload} B (pickled graph)"
    )
    lines.append(
        f"worker startup : attach {attach_seconds * 1e3:.2f} ms vs "
        f"pickle round-trip {unpickle_seconds * 1e3:.1f} ms"
    )

    failures = []
    if speedup < min_speedup:
        failures.append(
            f"CSR speedup {speedup:.2f}x below the {min_speedup:.2f}x budget"
        )
    if handle_payload >= 1024:
        failures.append(f"handle payload {handle_payload} B >= 1 KB")
    if handle_payload * 100 > graph_payload:
        failures.append(
            f"handle payload {handle_payload} B not < 1/100 of the "
            f"{graph_payload} B pickled graph"
        )

    metrics = {
        "freeze_ms": Metric(freeze_seconds * 1e3, unit="ms", kind="time",
                            tolerance_pct=40.0),
        "dict_ms": Metric(dict_seconds * 1e3, unit="ms", kind="time",
                          tolerance_pct=40.0),
        "csr_ms": Metric(csr_seconds * 1e3, unit="ms", kind="time",
                         tolerance_pct=40.0),
        "speedup": Metric(speedup, kind="ratio", direction="higher",
                          tolerance_pct=40.0),
        "csr_nbytes": Metric(float(csr.nbytes), unit="B", kind="bytes",
                             tolerance_pct=0.0),
        "handle_payload_bytes": Metric(float(handle_payload), unit="B",
                                       kind="bytes", tolerance_pct=0.0),
        "graph_payload_bytes": Metric(float(graph_payload), unit="B",
                                      kind="bytes", tolerance_pct=0.0),
        "attach_ms": Metric(attach_seconds * 1e3, unit="ms", kind="time",
                            tolerance_pct=60.0),
        "budget_failures": Metric(float(len(failures)), kind="info"),
    }
    return CsrOutcome(metrics=metrics, rendered="\n".join(lines),
                      failures=failures)


@suite("csr", "frozen-CSR kernel speedup and spawn-payload budget",
       default_scale="xlarge")
def csr_suite(ctx: SuiteContext) -> SuiteRun:
    scale = ctx.scale if ctx.scale is not None else env_str("REPRO_CSR_SCALE", "xlarge")
    outcome = run_csr(
        scale=scale,
        pairs=env_int("REPRO_CSR_PAIRS", 40),
        rounds=env_int("REPRO_CSR_ROUNDS", 5),
        min_speedup=env_float("REPRO_CSR_MIN_SPEEDUP", 2.0),
    )
    return SuiteRun(metrics=outcome.metrics, rendered=outcome.rendered)
