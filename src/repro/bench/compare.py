"""Base-vs-candidate comparison with a relative noise threshold.

``compare_labels`` loads every suite recorded under two labels, matches
metrics by ``(suite, key)``, and classifies each pair:

* ``within-noise`` — |relative delta| at or under the effective
  threshold, which is ``max(--noise-threshold, metric tolerance)`` so
  inherently noisy wall-time metrics carry their own floor;
* ``improved`` / ``regressed`` — beyond the threshold, signed by the
  metric's declared direction (``lower`` or ``higher`` is better);
* ``missing-in-base`` / ``missing-in-candidate`` — present on one side
  only (new metric, or one that disappeared);
* ``incomparable`` — NaN/inf on one side, so no relative delta exists.

A zero baseline has no relative delta either: an exactly-equal candidate
is within noise, anything else is classified by direction with the delta
reported as undefined.  ``info``-kind metrics are never compared.

The output is a markdown report (for humans and CI job summaries) plus a
machine-readable verdict payload; exit code 1 when anything regressed or
a result file failed schema validation, 0 otherwise — ``missing`` and
``incomparable`` are reported but do not fail the advisory gate.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .schema import Metric, PathLike, SuiteResult, load_result

DEFAULT_NOISE_THRESHOLD_PCT = 5.0

IMPROVED = "improved"
REGRESSED = "regressed"
WITHIN_NOISE = "within-noise"
MISSING_IN_BASE = "missing-in-base"
MISSING_IN_CANDIDATE = "missing-in-candidate"
INCOMPARABLE = "incomparable"

VERDICTS = (
    REGRESSED,
    IMPROVED,
    WITHIN_NOISE,
    MISSING_IN_BASE,
    MISSING_IN_CANDIDATE,
    INCOMPARABLE,
)


@dataclass
class MetricDelta:
    """One (suite, metric) pair's classification."""

    suite: str
    key: str
    base: Optional[float]
    candidate: Optional[float]
    #: Relative delta in percent; ``None`` when undefined (zero or
    #: non-finite baseline, missing side).
    delta_pct: Optional[float]
    threshold_pct: float
    verdict: str
    unit: str = ""
    direction: str = "lower"


@dataclass
class CompareReport:
    base_label: str
    candidate_label: str
    noise_threshold_pct: float
    rows: List[MetricDelta] = field(default_factory=list)
    #: Suite-level problems: schema mismatches, unreadable files.
    issues: List[str] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        counter = Counter(row.verdict for row in self.rows)
        return {verdict: counter.get(verdict, 0) for verdict in VERDICTS}

    @property
    def regressions(self) -> List[MetricDelta]:
        return [row for row in self.rows if row.verdict == REGRESSED]

    @property
    def exit_code(self) -> int:
        return 1 if (self.regressions or self.issues) else 0


def classify_metric(
    suite: str, key: str, base: Metric, candidate: Metric, noise_threshold_pct: float
) -> MetricDelta:
    threshold = max(
        noise_threshold_pct,
        base.tolerance_pct or 0.0,
        candidate.tolerance_pct or 0.0,
    )
    direction = base.direction
    b, c = float(base.value), float(candidate.value)

    def out(verdict: str, delta_pct: Optional[float]) -> MetricDelta:
        return MetricDelta(
            suite=suite, key=key, base=b, candidate=c, delta_pct=delta_pct,
            threshold_pct=threshold, verdict=verdict, unit=base.unit,
            direction=direction,
        )

    if b == c:  # covers inf == inf and exact zero-to-zero
        return out(WITHIN_NOISE, 0.0)
    if not (math.isfinite(b) and math.isfinite(c)):
        return out(INCOMPARABLE, None)
    if b == 0.0:
        # No relative delta exists; any change off an exact zero is real.
        better = (c < b) if direction == "lower" else (c > b)
        return out(IMPROVED if better else REGRESSED, None)
    delta_pct = 100.0 * (c - b) / abs(b)
    if abs(delta_pct) <= threshold:
        return out(WITHIN_NOISE, delta_pct)
    better = (c < b) if direction == "lower" else (c > b)
    return out(IMPROVED if better else REGRESSED, delta_pct)


def compare_results(
    base: Dict[str, SuiteResult],
    candidate: Dict[str, SuiteResult],
    *,
    base_label: str,
    candidate_label: str,
    noise_threshold_pct: float = DEFAULT_NOISE_THRESHOLD_PCT,
) -> CompareReport:
    report = CompareReport(
        base_label=base_label,
        candidate_label=candidate_label,
        noise_threshold_pct=noise_threshold_pct,
    )
    for suite in sorted(set(base) | set(candidate)):
        base_metrics = base[suite].metrics if suite in base else {}
        cand_metrics = candidate[suite].metrics if suite in candidate else {}
        for key in sorted(set(base_metrics) | set(cand_metrics)):
            bm = base_metrics.get(key)
            cm = cand_metrics.get(key)
            if (bm is not None and bm.kind == "info") or (
                cm is not None and cm.kind == "info"
            ):
                continue
            if bm is None:
                report.rows.append(MetricDelta(
                    suite=suite, key=key, base=None, candidate=cm.value,
                    delta_pct=None, threshold_pct=noise_threshold_pct,
                    verdict=MISSING_IN_BASE, unit=cm.unit,
                    direction=cm.direction,
                ))
            elif cm is None:
                report.rows.append(MetricDelta(
                    suite=suite, key=key, base=bm.value, candidate=None,
                    delta_pct=None, threshold_pct=noise_threshold_pct,
                    verdict=MISSING_IN_CANDIDATE, unit=bm.unit,
                    direction=bm.direction,
                ))
            else:
                report.rows.append(
                    classify_metric(suite, key, bm, cm, noise_threshold_pct)
                )
    return report


def median_value(values: List[float]) -> float:
    """Median with explicit non-finite policy: any NaN poisons to NaN.

    Infinities sort normally, so a run that times out to ``inf`` only
    shifts the median if half the runs did.
    """
    if not values:
        return math.nan
    if any(math.isnan(v) for v in values):
        return math.nan
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    lo, hi = ordered[mid - 1], ordered[mid]
    if math.isinf(lo) or math.isinf(hi):
        # inf + (-inf) is NaN; equal infinities keep their sign.
        return lo if lo == hi else math.nan
    return (lo + hi) / 2.0


def aggregate_runs(runs: List[SuiteResult]) -> SuiteResult:
    """Collapse repeated runs of one suite into a median-of-N result.

    Metric typing (unit/kind/direction/tolerance) comes from the first
    run that declares the key; the value is the median over the runs
    that recorded it.  ``info`` metrics keep the first run's value —
    medians of fingerprints are meaningless and the comparator skips
    them anyway.
    """
    if not runs:
        raise ValueError("aggregate_runs needs at least one run")
    if len(runs) == 1:
        return runs[0]
    first = runs[0]
    merged: Dict[str, Metric] = {}
    for run in runs:
        for key, metric in run.metrics.items():
            if key not in merged:
                merged[key] = metric
    metrics: Dict[str, Metric] = {}
    for key, proto in merged.items():
        if proto.kind == "info":
            metrics[key] = proto
            continue
        samples = [
            float(run.metrics[key].value) for run in runs if key in run.metrics
        ]
        metrics[key] = Metric(
            value=median_value(samples),
            unit=proto.unit,
            kind=proto.kind,
            direction=proto.direction,
            tolerance_pct=proto.tolerance_pct,
        )
    return SuiteResult(
        suite=first.suite,
        label=first.label,
        meta=first.meta,
        metrics=metrics,
        rendered=first.rendered,
        schema_version=first.schema_version,
    )


def load_label_lenient(
    results_dir: PathLike, label: str
) -> Tuple[Dict[str, SuiteResult], List[str]]:
    """Load a label, turning per-file schema failures into issue strings.

    A label directory may hold several result files per suite (``repro
    bench run --repeat N`` writes ``<suite>.json`` plus
    ``<suite>.run<k>.json`` siblings); multi-run suites collapse to their
    per-metric median via :func:`aggregate_runs`, so a comparison against
    a repeated baseline compares medians, not whichever file sorted last.

    A missing/empty label directory is still a hard error (there is
    nothing to compare against) — :class:`~repro.bench.schema.SchemaError`.
    """
    from .schema import SchemaError

    label_dir = Path(results_dir) / label
    if not label_dir.is_dir():
        raise SchemaError(f"label {label!r} has no results under {Path(results_dir)}")
    grouped: Dict[str, List[SuiteResult]] = {}
    issues: List[str] = []
    paths = sorted(label_dir.glob("*.json"))
    if not paths:
        raise SchemaError(f"label {label!r} has no *.json results in {label_dir}")
    for path in paths:
        try:
            result = load_result(path)
        except SchemaError as err:
            issues.append(f"label {label!r}: {err}")
            continue
        grouped.setdefault(result.suite, []).append(result)
    results = {
        suite: aggregate_runs(runs) for suite, runs in grouped.items()
    }
    return results, issues


def compare_labels(
    results_dir: PathLike,
    base_label: str,
    candidate_label: str,
    noise_threshold_pct: float = DEFAULT_NOISE_THRESHOLD_PCT,
) -> CompareReport:
    base, base_issues = load_label_lenient(results_dir, base_label)
    candidate, cand_issues = load_label_lenient(results_dir, candidate_label)
    report = compare_results(
        base,
        candidate,
        base_label=base_label,
        candidate_label=candidate_label,
        noise_threshold_pct=noise_threshold_pct,
    )
    report.issues = base_issues + cand_issues + report.issues
    return report


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _fmt(value: Optional[float], unit: str = "") -> str:
    if value is None:
        return "—"
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    text = f"{value:.6g}"
    return f"{text} {unit}".rstrip()


def _fmt_delta(delta_pct: Optional[float]) -> str:
    if delta_pct is None:
        return "n/a"
    return f"{delta_pct:+.2f}%"


def render_markdown(report: CompareReport, include_within_noise: bool = False) -> str:
    """Markdown comparison: verdict summary plus the notable-metric table."""
    counts = report.counts()
    lines = [
        f"### bench compare: `{report.base_label}` → `{report.candidate_label}`",
        "",
        f"Noise threshold {report.noise_threshold_pct:g}% "
        "(per-metric tolerances may widen it).",
        "",
        "| verdict | metrics |",
        "| --- | ---: |",
    ]
    for verdict in VERDICTS:
        lines.append(f"| {verdict} | {counts[verdict]} |")
    lines.append(f"| **total compared** | {len(report.rows)} |")
    lines.append("")
    notable = [row for row in report.rows if row.verdict != WITHIN_NOISE]
    detail = report.rows if include_within_noise else notable
    if report.issues:
        lines.append("**Issues:**")
        lines.extend(f"- {issue}" for issue in report.issues)
        lines.append("")
    if detail:
        lines.append("| suite | metric | base | candidate | Δ | threshold | verdict |")
        lines.append("| --- | --- | ---: | ---: | ---: | ---: | --- |")
        for row in detail:
            lines.append(
                f"| {row.suite} | `{row.key}` | {_fmt(row.base, row.unit)} | "
                f"{_fmt(row.candidate, row.unit)} | {_fmt_delta(row.delta_pct)} | "
                f"{row.threshold_pct:g}% | {row.verdict} |"
            )
    elif not report.rows:
        lines.append("_No comparable metrics found._")
    else:
        lines.append(
            f"All {len(report.rows)} compared metrics within the noise threshold."
        )
    return "\n".join(lines)


def verdict_payload(report: CompareReport) -> dict:
    """Machine-readable verdict (stable keys; for CI and tooling)."""
    return {
        "base": report.base_label,
        "candidate": report.candidate_label,
        "noise_threshold_pct": report.noise_threshold_pct,
        "counts": report.counts(),
        "exit_code": report.exit_code,
        "issues": list(report.issues),
        "metrics": [
            {
                "suite": row.suite,
                "key": row.key,
                "base": row.base if row.base is None or math.isfinite(row.base)
                else str(row.base),
                "candidate": row.candidate
                if row.candidate is None or math.isfinite(row.candidate)
                else str(row.candidate),
                "delta_pct": row.delta_pct,
                "threshold_pct": row.threshold_pct,
                "verdict": row.verdict,
            }
            for row in report.rows
        ],
    }
