"""Versioned result schema for harnessed benchmark runs.

One benchmark *suite* run produces one :class:`SuiteResult`: a flat
``{key: Metric}`` mapping plus :class:`RunMeta` capture (UTC timestamp,
git sha, machine fingerprint, seed, effective knobs) under an explicit
``schema_version``, persisted as ``benchmarks/results/<label>/<suite>.json``.
The schema is the contract between ``repro bench run`` and
``repro bench compare``: two labels are comparable exactly when their
files validate against the same schema version.

Non-finite metric values are stored as the strings ``"nan"`` / ``"inf"``
/ ``"-inf"`` so the files stay strict JSON (``json.dumps(allow_nan=False)``
round-trips them).
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Dict, Optional, Union

from ..exceptions import ReproError

SCHEMA_VERSION = 1

#: Metric kinds.  ``info`` metrics are recorded for humans and skipped by
#: the comparator (machine fingerprints, counts that are timing-dependent).
KINDS = ("time", "count", "ratio", "bytes", "info")
DIRECTIONS = ("lower", "higher")

PathLike = Union[str, Path]


class SchemaError(ReproError):
    """A result file does not validate against the known schema."""


@dataclass
class Metric:
    """One measured value with enough typing for automated comparison."""

    value: float
    unit: str = ""
    #: ``time`` | ``count`` | ``ratio`` | ``bytes`` | ``info``.
    kind: str = "time"
    #: Which way is better: ``lower`` (latencies) or ``higher`` (qps).
    direction: str = "lower"
    #: Per-metric noise floor (percent).  The comparator uses
    #: ``max(tolerance_pct, --noise-threshold)`` so inherently noisy
    #: wall-time metrics do not produce false regressions.
    tolerance_pct: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SchemaError(f"unknown metric kind {self.kind!r} (one of {KINDS})")
        if self.direction not in DIRECTIONS:
            raise SchemaError(
                f"unknown metric direction {self.direction!r} (one of {DIRECTIONS})"
            )


@dataclass
class RunMeta:
    """Provenance of one suite run: when, what code, what machine, what knobs."""

    created_utc: str
    git_sha: str
    label: str
    seed: int = 0
    knobs: Dict[str, str] = field(default_factory=dict)
    machine: Dict[str, str] = field(default_factory=dict)


@dataclass
class SuiteResult:
    """One suite's schema'd output for one label."""

    suite: str
    label: str
    meta: RunMeta
    metrics: Dict[str, Metric]
    #: Legacy paper-style text artefact, kept verbatim as a secondary render.
    rendered: Optional[str] = None
    schema_version: int = SCHEMA_VERSION


def utc_now_iso() -> str:
    """UTC ISO-8601 with explicit offset — never a naive local time."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def git_sha(cwd: Optional[PathLike] = None) -> str:
    """Current commit sha (``REPRO_GIT_SHA`` override, ``unknown`` fallback)."""
    override = os.environ.get("REPRO_GIT_SHA")
    if override:
        return override
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else "unknown"


def machine_fingerprint() -> Dict[str, str]:
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": str(os.cpu_count() or 0),
    }


def run_metadata(label: str, seed: int = 0, knobs: Optional[Dict[str, str]] = None) -> RunMeta:
    """Capture full provenance for a run starting now."""
    return RunMeta(
        created_utc=utc_now_iso(),
        git_sha=git_sha(),
        label=label,
        seed=seed,
        knobs=dict(knobs or {}),
        machine=machine_fingerprint(),
    )


def _encode_value(value: float) -> Union[float, str]:
    value = float(value)
    if math.isnan(value):
        return "nan"
    if math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _decode_value(raw: object, where: str) -> float:
    if isinstance(raw, bool) or not isinstance(raw, (int, float, str)):
        raise SchemaError(f"{where}: metric value {raw!r} is not a number")
    try:
        return float(raw)
    except ValueError:
        raise SchemaError(f"{where}: metric value {raw!r} is not a number") from None


def to_dict(result: SuiteResult) -> dict:
    return {
        "schema_version": result.schema_version,
        "suite": result.suite,
        "label": result.label,
        "meta": {
            "created_utc": result.meta.created_utc,
            "git_sha": result.meta.git_sha,
            "label": result.meta.label,
            "seed": result.meta.seed,
            "knobs": dict(result.meta.knobs),
            "machine": dict(result.meta.machine),
        },
        "metrics": {
            key: {
                "value": _encode_value(m.value),
                "unit": m.unit,
                "kind": m.kind,
                "direction": m.direction,
                **(
                    {"tolerance_pct": m.tolerance_pct}
                    if m.tolerance_pct is not None
                    else {}
                ),
            }
            for key, m in sorted(result.metrics.items())
        },
        **({"rendered": result.rendered} if result.rendered is not None else {}),
    }


def from_dict(data: object, where: str = "<memory>") -> SuiteResult:
    """Validate and decode one suite-result payload.

    Raises :class:`SchemaError` on a missing/unsupported ``schema_version``
    or any structural mismatch, naming ``where`` (usually the file path).
    """
    if not isinstance(data, dict):
        raise SchemaError(f"{where}: expected a JSON object, got {type(data).__name__}")
    version = data.get("schema_version")
    if version is None:
        raise SchemaError(f"{where}: missing schema_version")
    if version != SCHEMA_VERSION:
        raise SchemaError(
            f"{where}: schema_version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    for key in ("suite", "label", "meta", "metrics"):
        if key not in data:
            raise SchemaError(f"{where}: missing required field {key!r}")
    meta_raw = data["meta"]
    if not isinstance(meta_raw, dict):
        raise SchemaError(f"{where}: meta must be an object")
    for key in ("created_utc", "git_sha", "label"):
        if not isinstance(meta_raw.get(key), str):
            raise SchemaError(f"{where}: meta.{key} must be a string")
    meta = RunMeta(
        created_utc=meta_raw["created_utc"],
        git_sha=meta_raw["git_sha"],
        label=meta_raw["label"],
        seed=int(meta_raw.get("seed", 0)),
        knobs={str(k): str(v) for k, v in dict(meta_raw.get("knobs", {})).items()},
        machine={str(k): str(v) for k, v in dict(meta_raw.get("machine", {})).items()},
    )
    metrics_raw = data["metrics"]
    if not isinstance(metrics_raw, dict):
        raise SchemaError(f"{where}: metrics must be an object")
    metrics: Dict[str, Metric] = {}
    for key, payload in metrics_raw.items():
        if not isinstance(payload, dict) or "value" not in payload:
            raise SchemaError(f"{where}: metric {key!r} must be an object with a value")
        tolerance = payload.get("tolerance_pct")
        try:
            metrics[str(key)] = Metric(
                value=_decode_value(payload["value"], f"{where}:{key}"),
                unit=str(payload.get("unit", "")),
                kind=str(payload.get("kind", "time")),
                direction=str(payload.get("direction", "lower")),
                tolerance_pct=float(tolerance) if tolerance is not None else None,
            )
        except SchemaError as err:
            raise SchemaError(f"{where}: metric {key!r}: {err}") from None
    rendered = data.get("rendered")
    if rendered is not None and not isinstance(rendered, str):
        raise SchemaError(f"{where}: rendered must be a string when present")
    return SuiteResult(
        suite=str(data["suite"]),
        label=str(data["label"]),
        meta=meta,
        metrics=metrics,
        rendered=rendered,
        schema_version=int(version),
    )


def save_result(
    result: SuiteResult, results_dir: PathLike, run_index: Optional[int] = None
) -> Path:
    """Write ``<results_dir>/<label>/<suite>.json``; returns the path.

    ``run_index`` > 1 (repeated runs for median-of-N comparison) writes a
    sibling ``<suite>.run<k>.json`` instead, so the first run's filename
    stays stable for single-run consumers.
    """
    label_dir = Path(results_dir) / result.label
    label_dir.mkdir(parents=True, exist_ok=True)
    if run_index is not None and run_index > 1:
        path = label_dir / f"{result.suite}.run{run_index}.json"
    else:
        path = label_dir / f"{result.suite}.json"
    path.write_text(
        json.dumps(to_dict(result), indent=1, sort_keys=False, allow_nan=False)
        + "\n",
        encoding="utf-8",
    )
    return path


def load_result(path: PathLike) -> SuiteResult:
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as err:
        raise SchemaError(f"{path}: not valid JSON ({err})") from None
    return from_dict(data, where=str(path))


def load_label(results_dir: PathLike, label: str) -> Dict[str, SuiteResult]:
    """All suite results recorded under one label, keyed by suite name.

    Raises :class:`SchemaError` when the label directory does not exist;
    individual unreadable files also raise, naming the file.
    """
    label_dir = Path(results_dir) / label
    if not label_dir.is_dir():
        raise SchemaError(
            f"label {label!r} has no results under {Path(results_dir)}"
        )
    out: Dict[str, SuiteResult] = {}
    for path in sorted(label_dir.glob("*.json")):
        result = load_result(path)
        out[result.suite] = result
    if not out:
        raise SchemaError(f"label {label!r} has no *.json results in {label_dir}")
    return out
