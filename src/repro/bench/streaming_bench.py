"""Streaming-service throughput/latency measurement body.

Runs the same real-clock Poisson stream through
:class:`~repro.streaming.StreamingQueryService` once per worker count and
reports sustained qps, p50/p99 end-to-end latency and window/shed
accounting.  Used by both ``benchmarks/bench_streaming.py`` (which
appends provenance-stamped JSONL rows) and the ``streaming`` harness
suite (which records schema'd JSON per label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .knobs import env_float, env_int, env_int_list, env_str
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric


@dataclass
class StreamingOutcome:
    rows: List[dict]
    metrics: Dict[str, Metric]
    rendered: str


def bench_one(graph, arrivals, workers: int, *, scale: str, rate: float,
              duration: float, window_ms: float, max_batch: int) -> dict:
    from ..streaming import StreamingQueryService

    with StreamingQueryService(
        graph,
        window_seconds=window_ms / 1000.0,
        max_batch=max_batch,
        workers=workers,
        clock="real",
    ) as service:
        report = service.run(arrivals)
    assert report.unaccounted_queries == 0, (
        f"workers={workers}: {report.unaccounted_queries} queries unaccounted"
    )
    assert report.dropped_queries == 0, (
        f"workers={workers}: {report.dropped_queries} queries dropped"
    )
    return {
        "workers": workers,
        "scale": scale,
        "rate": rate,
        "duration": duration,
        "window_ms": window_ms,
        "max_batch": max_batch,
        "arrivals": report.total_arrivals,
        "answered": report.answered_queries,
        "qps": round(report.qps, 2),
        "p50_latency_ms": round(report.p50_latency * 1000, 2),
        "p99_latency_ms": round(report.p99_latency * 1000, 2),
        "windows": len(report.windows),
        "windows_by_trigger": report.windows_by_trigger,
        "cache_hits": report.stream_cache_hits,
        "shed_degraded": report.shed_degraded,
        "wall_seconds": round(report.wall_seconds, 3),
    }


def run_streaming(
    scale: str = "small",
    rate: float = 400.0,
    duration: float = 5.0,
    workers: Sequence[int] = (0, 2, 4),
    window_ms: float = 250.0,
    max_batch: int = 64,
    progress: bool = False,
) -> StreamingOutcome:
    from ..network.generators import beijing_like
    from ..queries.arrivals import PoissonArrivals
    from ..queries.workload import WorkloadGenerator

    lines = [f"network   : beijing_like({scale!r})"]
    graph = beijing_like(scale, seed=0)
    lines.append(
        f"size      : {graph.num_vertices} vertices, {graph.num_edges} edges"
    )
    workload = WorkloadGenerator(graph, seed=7)
    arrivals = PoissonArrivals(workload, rate=rate, seed=7).duration(duration)
    lines.append(
        f"stream    : {len(arrivals)} queries, {rate:g} qps nominal, "
        f"{duration:g}s, window {window_ms:g}ms / max {max_batch}"
    )
    lines.append("")
    header = (f"{'workers':>7} | {'qps':>8} | {'p50(ms)':>8} | "
              f"{'p99(ms)':>8} | {'windows':>7} | {'hits':>6} | {'shed':>5}")
    lines.append(header)
    lines.append("-" * len(header))
    if progress:
        for line in lines:
            print(line, flush=True)

    rows = []
    metrics: Dict[str, Metric] = {
        "arrivals": Metric(float(len(arrivals)), kind="count",
                           direction="higher", tolerance_pct=0.0),
    }
    for w in workers:
        row = bench_one(graph, arrivals, w, scale=scale, rate=rate,
                        duration=duration, window_ms=window_ms,
                        max_batch=max_batch)
        rows.append(row)
        line = (f"{row['workers']:>7} | {row['qps']:>8.1f} | "
                f"{row['p50_latency_ms']:>8.1f} | {row['p99_latency_ms']:>8.1f} | "
                f"{row['windows']:>7} | {row['cache_hits']:>6} | "
                f"{row['shed_degraded']:>5}")
        lines.append(line)
        if progress:
            print(line, flush=True)
        # Real-clock measurements: generous tolerances on latency/qps,
        # info-only on the timing-dependent window/cache counters.
        metrics[f"qps[w={w}]"] = Metric(row["qps"], unit="qps", kind="ratio",
                                        direction="higher", tolerance_pct=35.0)
        metrics[f"p50_ms[w={w}]"] = Metric(row["p50_latency_ms"], unit="ms",
                                           kind="time", tolerance_pct=45.0)
        metrics[f"p99_ms[w={w}]"] = Metric(row["p99_latency_ms"], unit="ms",
                                           kind="time", tolerance_pct=45.0)
        metrics[f"answered[w={w}]"] = Metric(float(row["answered"]),
                                             kind="count", direction="higher",
                                             tolerance_pct=0.0)
        metrics[f"windows[w={w}]"] = Metric(float(row["windows"]), kind="info")
        metrics[f"cache_hits[w={w}]"] = Metric(float(row["cache_hits"]),
                                               kind="info")
        metrics[f"shed_degraded[w={w}]"] = Metric(float(row["shed_degraded"]),
                                                  kind="info")
    return StreamingOutcome(rows=rows, metrics=metrics,
                            rendered="\n".join(lines))


def streaming_knobs() -> dict:
    """The streaming benchmark's effective knob set (validated)."""
    return {
        "scale": env_str("REPRO_STREAM_SCALE", "small"),
        "rate": env_float("REPRO_STREAM_RATE", 400.0),
        "duration": env_float("REPRO_STREAM_DURATION", 5.0),
        "workers": env_int_list("REPRO_STREAM_WORKERS", (0, 2, 4)),
        "window_ms": env_float("REPRO_STREAM_WINDOW_MS", 250.0),
        "max_batch": env_int("REPRO_STREAM_MAX_BATCH", 64),
    }


@suite("streaming", "streaming service qps + latency at several worker counts",
       default_scale="small")
def streaming_suite(ctx: SuiteContext) -> SuiteRun:
    knobs = streaming_knobs()
    if ctx.scale is not None:
        knobs["scale"] = ctx.scale
    outcome = run_streaming(**knobs)
    return SuiteRun(metrics=outcome.metrics, rendered=outcome.rendered)
