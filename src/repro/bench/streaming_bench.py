"""Streaming-service throughput/latency measurement body.

Runs the same real-clock Poisson stream through
:class:`~repro.streaming.StreamingQueryService` once per worker count and
reports sustained qps, p50/p99 end-to-end latency and window/shed
accounting.  Used by both ``benchmarks/bench_streaming.py`` (which
appends provenance-stamped JSONL rows) and the ``streaming`` harness
suite (which records schema'd JSON per label).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .knobs import env_float, env_int, env_int_list, env_str
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric


@dataclass
class StreamingOutcome:
    rows: List[dict]
    metrics: Dict[str, Metric]
    rendered: str


def bench_one(graph, arrivals, workers: int, *, scale: str, rate: float,
              duration: float, window_ms: float, max_batch: int,
              **backend_options) -> dict:
    from ..streaming import StreamingQueryService

    with StreamingQueryService(
        graph,
        window_seconds=window_ms / 1000.0,
        max_batch=max_batch,
        workers=workers,
        clock="real",
        **backend_options,
    ) as service:
        report = service.run(arrivals)
    assert report.unaccounted_queries == 0, (
        f"workers={workers}: {report.unaccounted_queries} queries unaccounted"
    )
    assert report.dropped_queries == 0, (
        f"workers={workers}: {report.dropped_queries} queries dropped"
    )
    return {
        "workers": workers,
        "scale": scale,
        "rate": rate,
        "duration": duration,
        "window_ms": window_ms,
        "max_batch": max_batch,
        "arrivals": report.total_arrivals,
        "answered": report.answered_queries,
        "qps": round(report.qps, 2),
        "p50_latency_ms": round(report.p50_latency * 1000, 2),
        "p99_latency_ms": round(report.p99_latency * 1000, 2),
        "windows": len(report.windows),
        "windows_by_trigger": report.windows_by_trigger,
        "cache_hits": report.stream_cache_hits,
        "shed_degraded": report.shed_degraded,
        "wall_seconds": round(report.wall_seconds, 3),
    }


def run_streaming(
    scale: str = "small",
    rate: float = 400.0,
    duration: float = 5.0,
    workers: Sequence[int] = (0, 2, 4),
    window_ms: float = 250.0,
    max_batch: int = 64,
    progress: bool = False,
) -> StreamingOutcome:
    from ..network.generators import beijing_like
    from ..queries.arrivals import PoissonArrivals
    from ..queries.workload import WorkloadGenerator

    lines = [f"network   : beijing_like({scale!r})"]
    graph = beijing_like(scale, seed=0)
    lines.append(
        f"size      : {graph.num_vertices} vertices, {graph.num_edges} edges"
    )
    workload = WorkloadGenerator(graph, seed=7)
    arrivals = PoissonArrivals(workload, rate=rate, seed=7).duration(duration)
    lines.append(
        f"stream    : {len(arrivals)} queries, {rate:g} qps nominal, "
        f"{duration:g}s, window {window_ms:g}ms / max {max_batch}"
    )
    lines.append("")
    header = (f"{'workers':>7} | {'qps':>8} | {'p50(ms)':>8} | "
              f"{'p99(ms)':>8} | {'windows':>7} | {'hits':>6} | {'shed':>5}")
    lines.append(header)
    lines.append("-" * len(header))
    if progress:
        for line in lines:
            print(line, flush=True)

    rows = []
    metrics: Dict[str, Metric] = {
        "arrivals": Metric(float(len(arrivals)), kind="count",
                           direction="higher", tolerance_pct=0.0),
    }
    for w in workers:
        row = bench_one(graph, arrivals, w, scale=scale, rate=rate,
                        duration=duration, window_ms=window_ms,
                        max_batch=max_batch)
        rows.append(row)
        line = (f"{row['workers']:>7} | {row['qps']:>8.1f} | "
                f"{row['p50_latency_ms']:>8.1f} | {row['p99_latency_ms']:>8.1f} | "
                f"{row['windows']:>7} | {row['cache_hits']:>6} | "
                f"{row['shed_degraded']:>5}")
        lines.append(line)
        if progress:
            print(line, flush=True)
        # Real-clock measurements: generous tolerances on latency/qps,
        # info-only on the timing-dependent window/cache counters.
        metrics[f"qps[w={w}]"] = Metric(row["qps"], unit="qps", kind="ratio",
                                        direction="higher", tolerance_pct=35.0)
        metrics[f"p50_ms[w={w}]"] = Metric(row["p50_latency_ms"], unit="ms",
                                           kind="time", tolerance_pct=45.0)
        metrics[f"p99_ms[w={w}]"] = Metric(row["p99_latency_ms"], unit="ms",
                                           kind="time", tolerance_pct=45.0)
        metrics[f"answered[w={w}]"] = Metric(float(row["answered"]),
                                             kind="count", direction="higher",
                                             tolerance_pct=0.0)
        metrics[f"windows[w={w}]"] = Metric(float(row["windows"]), kind="info")
        metrics[f"cache_hits[w={w}]"] = Metric(float(row["cache_hits"]),
                                               kind="info")
        metrics[f"shed_degraded[w={w}]"] = Metric(float(row["shed_degraded"]),
                                                  kind="info")
    return StreamingOutcome(rows=rows, metrics=metrics,
                            rendered="\n".join(lines))


def run_numpy_row(
    scale: str = "tiny",
    rate: float = 200.0,
    duration: float = 5.0,
    window_ms: float = 250.0,
    max_batch: int = 64,
    progress: bool = False,
) -> StreamingOutcome:
    """Paired serial-engine runs: default kernels vs forced numpy batching.

    The ``np`` row pins ``REPRO_KERNEL=np`` with floor thresholds (so the
    vectorized sweeps dispatch even on the small streaming network) and
    answers cluster misses through :class:`LocalCacheAnswerer`'s batched
    one-to-many mode.  Measured honestly: on ``tiny`` the per-query A*
    frontier is a handful of vertices, so vectorization overhead can
    offset the batching win — the point of the row is to record the
    actual p99 delta, not to presume one.
    """
    import os

    from ..core.local_cache import LocalCacheAnswerer
    from ..network.generators import beijing_like
    from ..queries.arrivals import PoissonArrivals
    from ..queries.workload import WorkloadGenerator
    from ..search import np_kernels

    lines = [f"numpy row : beijing_like({scale!r}), {rate:g} qps, serial engine"]
    graph = beijing_like(scale, seed=0)
    workload = WorkloadGenerator(graph, seed=7)
    arrivals = PoissonArrivals(workload, rate=rate, seed=7).duration(duration)

    knob_sets = {
        "baseline": {},
        "np": {
            np_kernels.BACKEND_KNOB: "np",
            np_kernels.AUTO_MIN_KNOB: "1",
            np_kernels.BATCH_MIN_KNOB: "2",
        },
    }
    rows: List[dict] = []
    metrics: Dict[str, Metric] = {}
    for kernel, env in knob_sets.items():
        if kernel == "np" and not np_kernels.np_available():
            lines.append("np        : numpy unavailable, row skipped")
            continue
        saved = {k: os.environ.get(k) for k in env}
        os.environ.update(env)
        try:
            answerer = LocalCacheAnswerer(
                graph,
                cache_bytes=512 * 1024,
                order="longest",
                eviction="lru",
                batch_one_to_many=(kernel == "np"),
            )
            row = bench_one(
                graph, arrivals, 0, scale=scale, rate=rate,
                duration=duration, window_ms=window_ms, max_batch=max_batch,
                answerer=answerer,
            )
        finally:
            for k, v in saved.items():
                if v is None:
                    os.environ.pop(k, None)
                else:
                    os.environ[k] = v
        row["kernel"] = kernel
        rows.append(row)
        line = (f"{kernel:>9} : p50 {row['p50_latency_ms']:.1f} ms, "
                f"p99 {row['p99_latency_ms']:.1f} ms, {row['qps']:.1f} qps")
        lines.append(line)
        if progress:
            print(line, flush=True)
        metrics[f"p99_ms[kernel={kernel}]"] = Metric(
            row["p99_latency_ms"], unit="ms", kind="time", tolerance_pct=45.0)
        metrics[f"p50_ms[kernel={kernel}]"] = Metric(
            row["p50_latency_ms"], unit="ms", kind="time", tolerance_pct=45.0)
    if len(rows) == 2:
        base, np_row = rows[0]["p99_latency_ms"], rows[1]["p99_latency_ms"]
        delta_pct = 100.0 * (base - np_row) / base if base > 0 else 0.0
        lines.append(f"p99 delta : {delta_pct:+.1f}% (positive = np faster)")
        metrics["np_p99_reduction_pct"] = Metric(delta_pct, kind="info")
    return StreamingOutcome(rows=rows, metrics=metrics,
                            rendered="\n".join(lines))


def streaming_knobs() -> dict:
    """The streaming benchmark's effective knob set (validated)."""
    return {
        "scale": env_str("REPRO_STREAM_SCALE", "small"),
        "rate": env_float("REPRO_STREAM_RATE", 400.0),
        "duration": env_float("REPRO_STREAM_DURATION", 5.0),
        "workers": env_int_list("REPRO_STREAM_WORKERS", (0, 2, 4)),
        "window_ms": env_float("REPRO_STREAM_WINDOW_MS", 250.0),
        "max_batch": env_int("REPRO_STREAM_MAX_BATCH", 64),
    }


def numpy_row_knobs() -> dict:
    """Knobs for the paired baseline-vs-numpy kernel rows (validated)."""
    return {
        "scale": env_str("REPRO_STREAM_NP_SCALE", "tiny"),
        "rate": env_float("REPRO_STREAM_NP_RATE", 200.0),
        "duration": env_float("REPRO_STREAM_DURATION", 5.0),
        "window_ms": env_float("REPRO_STREAM_WINDOW_MS", 250.0),
        "max_batch": env_int("REPRO_STREAM_MAX_BATCH", 64),
    }


@suite("streaming", "streaming service qps + latency at several worker counts",
       default_scale="small")
def streaming_suite(ctx: SuiteContext) -> SuiteRun:
    knobs = streaming_knobs()
    if ctx.scale is not None:
        knobs["scale"] = ctx.scale
    outcome = run_streaming(**knobs)
    np_outcome = run_numpy_row(**numpy_row_knobs())
    metrics = {**outcome.metrics, **np_outcome.metrics}
    rendered = outcome.rendered + "\n\n" + np_outcome.rendered
    return SuiteRun(metrics=metrics, rendered=rendered)
