"""Ablation measurement bodies (shared by pytest and the harness).

Each function is one ablation from ``benchmarks/test_ablations.py``,
returning an :class:`AblationOutcome` — the table rows, the legacy
text render, and typed metrics — so the pytest file keeps asserting the
paper-shape claims on the *same* measurement the ``ablations`` suite
records for ``repro bench compare``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List

from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric

TIME_TOL = 40.0


@dataclass
class AblationOutcome:
    name: str
    rendered: str
    rows: List[list]
    metrics: Dict[str, Metric]


def _count(value: float, direction: str = "lower") -> Metric:
    return Metric(float(value), kind="count", direction=direction,
                  tolerance_pct=0.0)


def _seconds(value: float) -> Metric:
    return Metric(float(value), unit="s", kind="time", tolerance_pct=TIME_TOL)


def run_gen_astar(env) -> AblationOutcome:
    """Offset-representative vs min-target: VNN and wall time per petal."""
    from ..analysis.tables import render_table
    from ..search.generalized_astar import generalized_a_star

    workload = env.fresh_workload(901)
    rows = []
    metrics: Dict[str, Metric] = {}
    batches = [workload.batch(40) for _ in range(4)]
    for mode in ("representative", "min-target", "zero"):
        visited = 0
        t0 = time.perf_counter()
        for batch in batches:
            for source, group in batch.by_source().items():
                _, v = generalized_a_star(
                    env.graph, source, [q.target for q in group], mode=mode
                )
                visited += v
        elapsed = time.perf_counter() - t0
        rows.append([mode, visited, elapsed])
        metrics[f"vnn[{mode}]"] = _count(visited)
        metrics[f"seconds[{mode}]"] = _seconds(elapsed)
    rendered = render_table(["heuristic mode", "VNN", "seconds"], rows,
                            title="Ablation: generalized-A* heuristic mode")
    return AblationOutcome("ablation_gen_astar", rendered, rows, metrics)


def run_sse_merge(env) -> AblationOutcome:
    """Lower overlap thresholds merge more: fewer, larger clusters."""
    from ..analysis.tables import render_table
    from ..core.search_space import SearchSpaceDecomposer

    workload = env.fresh_workload(902)
    queries = workload.batch(800, *env.cache_band)
    rows = []
    metrics: Dict[str, Metric] = {}
    for threshold in (0.2, 0.4, 0.6, 0.8, 1.0):
        d = SearchSpaceDecomposer(env.graph, merge_threshold=threshold).decompose(
            queries
        )
        rows.append([threshold, len(d), max(d.cluster_sizes), d.elapsed_seconds])
        metrics[f"clusters[{threshold}]"] = _count(len(d))
        metrics[f"largest[{threshold}]"] = _count(max(d.cluster_sizes))
    rendered = render_table(
        ["overlap threshold", "clusters", "largest", "seconds"], rows,
        title="Ablation: SSE merge threshold",
    )
    return AblationOutcome("ablation_sse_merge", rendered, rows, metrics)


def run_detour_ratio(env) -> AblationOutcome:
    """The paper's 1.2x Euclidean calibration: clusters vs error safety."""
    from ..analysis.tables import render_table
    from ..core.coclustering import CoClusteringDecomposer
    from ..core.r2r import RegionToRegionAnswerer
    from ..search.dijkstra import dijkstra

    workload = env.fresh_workload(903)
    queries = workload.batch(600, *env.r2r_band)
    exact = {
        q: dijkstra(env.graph, q.source, q.target).distance
        for q in queries.deduplicated()
    }
    rows = []
    metrics: Dict[str, Metric] = {}
    for ratio in (1.0, 1.2, 1.5, 2.0):
        d = CoClusteringDecomposer(env.graph, eta=0.05, detour_ratio=ratio).decompose(
            queries
        )
        answer = RegionToRegionAnswerer(env.graph, eta=0.05).answer(d)
        max_err = 0.0
        for q, r in answer.answers:
            truth = exact[q]
            if truth > 0:
                max_err = max(max_err, (r.distance - truth) / truth)
        rows.append([ratio, len(d), f"{100 * max_err:.3f}"])
        metrics[f"clusters[{ratio}]"] = _count(len(d))
        metrics[f"max_error_pct[{ratio}]"] = Metric(
            100 * max_err, unit="%", kind="ratio", tolerance_pct=0.0
        )
    rendered = render_table(
        ["detour ratio", "clusters", "max error %"], rows,
        title="Ablation: co-clustering detour constant",
    )
    return AblationOutcome("ablation_detour_ratio", rendered, rows, metrics)


def run_delta_angle(env) -> AblationOutcome:
    """Petal angle delta: wider petals, fewer clusters, weaker coherence."""
    from ..analysis.tables import render_table
    from ..core.zigzag import ZigzagDecomposer

    workload = env.fresh_workload(904)
    queries = workload.batch(800, *env.cache_band)
    rows = []
    metrics: Dict[str, Metric] = {}
    for delta in (10.0, 30.0, 60.0, 120.0):
        d = ZigzagDecomposer(env.graph, delta=delta).decompose(queries)
        rows.append([delta, len(d), max(d.cluster_sizes)])
        metrics[f"clusters[{delta:g}]"] = _count(len(d))
    rendered = render_table(
        ["delta (deg)", "clusters", "largest"], rows,
        title="Ablation: Zigzag petal angle threshold",
    )
    return AblationOutcome("ablation_delta", rendered, rows, metrics)


def run_super_vertices(env) -> AblationOutcome:
    """Super-vertex snapping trades exactness for hit ratio (Section V-A2)."""
    from ..analysis.tables import render_table
    from ..core.local_cache import LocalCacheAnswerer
    from ..core.search_space import SearchSpaceDecomposer

    workload = env.fresh_workload(905)
    queries = workload.batch(800, *env.cache_band)
    decomposition = SearchSpaceDecomposer(env.graph).decompose(queries)
    rows = []
    metrics: Dict[str, Metric] = {}
    for radius in (0.0, 0.5, 1.0, 2.0):
        answerer = LocalCacheAnswerer(
            env.graph, 10**6, order="longest", super_snap_radius=radius
        )
        answer = answerer.answer(decomposition)
        inexact = sum(1 for _, r in answer.answers if not r.exact)
        rows.append([radius, f"{answer.hit_ratio:.3f}", inexact])
        metrics[f"hit_ratio[{radius:g}]"] = Metric(
            answer.hit_ratio, kind="ratio", direction="higher", tolerance_pct=0.0
        )
        metrics[f"inexact[{radius:g}]"] = _count(inexact)
    rendered = render_table(
        ["snap radius (km)", "hit ratio", "inexact answers"], rows,
        title="Ablation: super-vertex snapping",
    )
    return AblationOutcome("ablation_super_vertex", rendered, rows, metrics)


def run_oracle_fidelity(env) -> AblationOutcome:
    """Figure 2 ellipse-model fidelity: recall/precision per length band."""
    from ..analysis.tables import render_table
    from ..analysis.validation import summarize_coverage, validate_search_space

    workload = env.fresh_workload(908)
    rows = []
    metrics: Dict[str, Metric] = {}
    for band_name, (lo, hi) in (
        ("short", (0.0, env.cache_band[1] / 2)),
        ("cache", env.cache_band),
        ("long", env.r2r_band),
    ):
        queries = workload.batch(60, min_dist=lo, max_dist=hi)
        reports = validate_search_space(env.graph, list(queries))
        summary = summarize_coverage(reports)
        rows.append(
            [
                band_name,
                f"{summary['recall']:.3f}",
                f"{summary['precision']:.3f}",
                f"{summary['inflation']:.2f}",
            ]
        )
        metrics[f"recall[{band_name}]"] = Metric(
            summary["recall"], kind="ratio", direction="higher", tolerance_pct=0.0
        )
        metrics[f"precision[{band_name}]"] = Metric(
            summary["precision"], kind="ratio", direction="higher",
            tolerance_pct=0.0,
        )
    rendered = render_table(
        ["band", "recall", "precision", "predicted/actual"], rows,
        title="Validation: search-space oracle vs real A* (Figure 2 model)",
    )
    return AblationOutcome("ablation_oracle_fidelity", rendered, rows, metrics)


def run_dbscan_strawman(env) -> AblationOutcome:
    """Section IV-A1's rejected strawman, measured."""
    from ..analysis.tables import render_table
    from ..core.dbscan import DBSCANDecomposer, angular_spread
    from ..core.zigzag import ZigzagDecomposer
    from ..search.generalized_astar import generalized_a_star

    workload = env.fresh_workload(907)
    queries = workload.batch(600, *env.cache_band)

    min_x, min_y, max_x, max_y = env.graph.extent()
    eps = max(max_x - min_x, max_y - min_y) * 0.05
    db = DBSCANDecomposer(env.graph, eps=eps, min_points=3).decompose(queries)
    ad = ZigzagDecomposer(env.graph, absorb_singletons=False).decompose(queries)

    def mean_multi_spread(decomposition):
        spreads = [angular_spread(env.graph, c) for c in decomposition if len(c) > 1]
        return sum(spreads) / len(spreads) if spreads else 0.0

    def batch_vnn(decomposition):
        total = 0
        for cluster in decomposition:
            for source, group in cluster.as_query_set().by_source().items():
                _, v = generalized_a_star(
                    env.graph, source, [q.target for q in group]
                )
                total += v
        return total

    rows = [
        ["dbscan", len(db), f"{mean_multi_spread(db):.1f}", batch_vnn(db)],
        ["ad-petals", len(ad), f"{mean_multi_spread(ad):.1f}", batch_vnn(ad)],
    ]
    metrics = {
        "spread_deg[dbscan]": Metric(mean_multi_spread(db), unit="deg",
                                     kind="ratio", tolerance_pct=0.0),
        "spread_deg[ad-petals]": Metric(mean_multi_spread(ad), unit="deg",
                                        kind="ratio", tolerance_pct=0.0),
        "vnn[dbscan]": _count(batch_vnn(db)),
        "vnn[ad-petals]": _count(batch_vnn(ad)),
    }
    rendered = render_table(
        ["decomposition", "clusters", "mean spread (deg)", "batch VNN"], rows,
        title="Ablation: DBSCAN strawman vs AD petals (Section IV-A1)",
    )
    return AblationOutcome("ablation_dbscan", rendered, rows, metrics)


def run_region_radius(env) -> AblationOutcome:
    """Theorem 1: pushing the region from r* to 2r* doubles the reach."""
    from ..analysis.tables import render_table
    from ..core.wspd import guaranteed_radius
    from ..search.dijkstra import bounded_ball, dijkstra

    workload = env.fresh_workload(906)
    queries = workload.batch(60, *env.r2r_band)
    total_small = total_big = 0
    for q in list(queries)[:20]:
        d = dijkstra(env.graph, q.source, q.target).distance
        r_star = guaranteed_radius(0.05, d)
        small, _ = bounded_ball(env.graph, q.source, r_star)
        big, _ = bounded_ball(env.graph, q.source, 2 * r_star)
        total_small += len(small)
        total_big += len(big)
    rows = [["r*", total_small], ["2r* (Theorem 1)", total_big]]
    metrics = {
        "candidates[r*]": _count(total_small, direction="higher"),
        "candidates[2r*]": _count(total_big, direction="higher"),
    }
    rendered = render_table(
        ["region radius", "candidate vertices (20 reps)"], rows,
        title="Ablation: R2R region radius",
    )
    return AblationOutcome("ablation_region_radius", rendered, rows, metrics)


#: name -> body, in stable order (namespaces the suite's metric keys).
ABLATIONS: Dict[str, Callable] = {
    "gen_astar": run_gen_astar,
    "sse_merge": run_sse_merge,
    "detour_ratio": run_detour_ratio,
    "delta_angle": run_delta_angle,
    "super_vertex": run_super_vertices,
    "oracle_fidelity": run_oracle_fidelity,
    "dbscan": run_dbscan_strawman,
    "region_radius": run_region_radius,
}


@suite("ablations", "design-knob ablations (DESIGN.md's callouts)")
def ablations_suite(ctx: SuiteContext) -> SuiteRun:
    scale = ctx.scale_for(ablations_suite.__suite__)
    env = ctx.env(scale)
    metrics: Dict[str, Metric] = {}
    renders: Dict[str, str] = {}
    sections: List[str] = []
    for name, body in ABLATIONS.items():
        outcome = body(env)
        for key, metric in outcome.metrics.items():
            metrics[f"{name}.{key}"] = metric
        renders[outcome.name] = outcome.rendered
        sections.append(outcome.rendered)
    return SuiteRun(metrics=metrics, rendered="\n\n".join(sections),
                    extra_renders=renders)
