"""Unified benchmark harness: registered suites, schema'd results, compare.

Every performance claim in this repo reports through this package:

* ``repro bench run --suite <name> --label <label>`` executes registered
  suites (:mod:`repro.bench.suites`) and writes versioned JSON — metrics
  plus run metadata (UTC timestamp, git sha, machine, seed, knobs) —
  under ``benchmarks/results/<label>/``;
* ``repro bench compare <base> <candidate>`` matches metrics across two
  labels, applies a relative noise threshold, and emits a markdown table
  plus a machine-readable verdict.

See ``docs/benchmarks.md`` for the workflow.
"""

from .compare import (
    CompareReport,
    DEFAULT_NOISE_THRESHOLD_PCT,
    MetricDelta,
    aggregate_runs,
    compare_labels,
    compare_results,
    load_label_lenient,
    median_value,
    render_markdown,
    verdict_payload,
)
from .knobs import (
    BenchConfigError,
    consumed_knobs,
    env_float,
    env_int,
    env_int_list,
    env_str,
)
from .registry import Suite, SuiteContext, SuiteRun, all_suites, get_suite, suite
from .runner import DEFAULT_RESULTS_DIR, run_suites
from .schema import (
    Metric,
    RunMeta,
    SCHEMA_VERSION,
    SchemaError,
    SuiteResult,
    from_dict,
    git_sha,
    load_label,
    load_result,
    run_metadata,
    save_result,
    to_dict,
    utc_now_iso,
)

__all__ = [
    "BenchConfigError",
    "CompareReport",
    "DEFAULT_NOISE_THRESHOLD_PCT",
    "DEFAULT_RESULTS_DIR",
    "Metric",
    "MetricDelta",
    "RunMeta",
    "SCHEMA_VERSION",
    "SchemaError",
    "Suite",
    "SuiteContext",
    "SuiteResult",
    "SuiteRun",
    "aggregate_runs",
    "all_suites",
    "compare_labels",
    "compare_results",
    "consumed_knobs",
    "env_float",
    "env_int",
    "env_int_list",
    "env_str",
    "from_dict",
    "get_suite",
    "git_sha",
    "load_label",
    "load_label_lenient",
    "load_result",
    "median_value",
    "render_markdown",
    "run_metadata",
    "run_suites",
    "save_result",
    "suite",
    "to_dict",
    "utc_now_iso",
    "verdict_payload",
]
