"""Suite registry: named, discoverable benchmark suites.

A *suite* is a callable ``fn(ctx) -> SuiteRun`` taking a shared
:class:`SuiteContext` (so suites that reuse the same heavy fixtures —
the cache suite, the R2R suite — compute them once per invocation) and
returning the measured metrics plus the legacy text render.  Suites are
registered at import of :mod:`repro.bench.suites` via the
:func:`suite` decorator and resolved by ``repro bench run --suite``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from .schema import Metric


@dataclass
class SuiteRun:
    """What one suite execution measured."""

    metrics: Dict[str, Metric]
    #: Paper-style text artefact (written next to the JSON as ``.txt``).
    rendered: Optional[str] = None
    #: Extra legacy renders keyed by artefact name (e.g. the seven
    #: ablation tables), written as ``<name>.txt`` like the old scripts.
    extra_renders: Dict[str, str] = field(default_factory=dict)


@dataclass
class Suite:
    name: str
    fn: Callable[["SuiteContext"], SuiteRun]  # noqa: F821 - forward ref
    description: str
    #: Scale preset used when neither --scale nor REPRO_BENCH_SCALE is set.
    default_scale: str = "medium"


#: Network presets ``beijing_like`` accepts; validated at the knob site
#: so a typo'd ``REPRO_BENCH_SCALE`` names the knob, not the generator.
SCALE_CHOICES = ("tiny", "small", "medium", "large", "xlarge")

_REGISTRY: Dict[str, Suite] = {}


def register(suite: Suite) -> Suite:
    if suite.name in _REGISTRY:
        raise ConfigurationError(f"benchmark suite {suite.name!r} registered twice")
    _REGISTRY[suite.name] = suite
    return suite


def suite(
    name: str, description: str, default_scale: str = "medium"
) -> Callable[[Callable], Callable]:
    """Decorator: register ``fn`` as the body of suite ``name``."""

    def wrap(fn: Callable) -> Callable:
        entry = Suite(name=name, fn=fn, description=description,
                      default_scale=default_scale)
        register(entry)
        fn.__suite__ = entry  # type: ignore[attr-defined]
        return fn

    return wrap


def get_suite(name: str) -> Suite:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown benchmark suite {name!r}; registered suites: {known}"
        ) from None


def all_suites() -> List[Suite]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def resolve_suites(names: Sequence[str]) -> List[Suite]:
    """Expand ``all`` and validate every requested suite name."""
    if any(name == "all" for name in names):
        return all_suites()
    seen: List[Suite] = []
    for name in names:
        s = get_suite(name)
        if s not in seen:
            seen.append(s)
    return seen


def _ensure_loaded() -> None:
    # Suite bodies live in repro.bench.suites; importing it populates the
    # registry.  Deferred so `import repro.bench.registry` stays light.
    from . import suites  # noqa: F401


class SuiteContext:
    """Shared fixtures for one ``bench run`` invocation.

    Lazily builds (and memoizes) the experiment environment, the cache
    suite and the R2R suite per (scale, sizes), exactly like
    ``benchmarks/conftest.py``'s session-scoped fixtures — so
    ``repro bench run --suite fig7b --suite fig7d`` pays for the cache
    sweep once.
    """

    def __init__(
        self,
        scale: Optional[str] = None,
        sizes: Optional[Sequence[int]] = None,
        seed: int = 7,
    ) -> None:
        #: Explicit override; ``None`` defers to knobs/suite defaults.
        self.scale = scale
        self._sizes = tuple(sizes) if sizes is not None else None
        self.seed = seed
        self._envs: Dict[Tuple[str, int], object] = {}
        self._cache_suites: Dict[Tuple[str, Tuple[int, ...]], object] = {}
        self._r2r_suites: Dict[Tuple[str, Tuple[int, ...]], object] = {}

    # -- knob resolution ------------------------------------------------
    def scale_for(self, suite: Suite) -> str:
        if self.scale is not None:
            return self.scale
        from .knobs import env_str

        return env_str(
            "REPRO_BENCH_SCALE", suite.default_scale, choices=SCALE_CHOICES
        )

    def sizes(self) -> Tuple[int, ...]:
        if self._sizes is not None:
            return self._sizes
        from .knobs import env_int_list

        return env_int_list("REPRO_BENCH_SIZES", (100, 300, 900, 1800))

    # -- heavy fixtures -------------------------------------------------
    def env(self, scale: str):
        key = (scale, self.seed)
        if key not in self._envs:
            from ..analysis import experiments as exp

            self._envs[key] = exp.build_env(scale=scale, seed=self.seed)
        return self._envs[key]

    def cache_suites(self, scale: str):
        key = (scale, self.sizes())
        if key not in self._cache_suites:
            from ..analysis import experiments as exp

            self._cache_suites[key] = exp.run_cache_suite(
                self.env(scale), self.sizes()
            )
        return self._cache_suites[key]

    def r2r_suites(self, scale: str):
        key = (scale, self.sizes())
        if key not in self._r2r_suites:
            from ..analysis import experiments as exp

            self._r2r_suites[key] = exp.run_r2r_suite(self.env(scale), self.sizes())
        return self._r2r_suites[key]
