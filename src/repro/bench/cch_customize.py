"""Customize-vs-rebuild budget for the customizable contraction index.

The claim :class:`~repro.index.cch.CustomizableContractionHierarchy`
makes, measured directly: after a traffic epoch perturbs edge weights,
re-customizing the metric-independent hierarchy is at least
``min_speedup``x (default 5) faster than rebuilding the legacy
witness-search :class:`~repro.index.ch.ContractionHierarchy` from
scratch.  Exactness is asserted (not timed) before and after the
epochs: every sampled customized-index distance must equal Dijkstra's
bit-for-bit.

Timing uses best-of-``rounds`` (minimum) for the customization pass and
the minimum of the legacy builds for the rebuild — the same "how fast
can this code go" estimator the other kernel suites use, so scheduler
noise cannot manufacture a pass either way.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List

from .knobs import env_float, env_int, env_str
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric


@dataclass
class CchOutcome:
    metrics: Dict[str, Metric]
    rendered: str
    #: Budget or exactness violations (empty = the claims hold).
    failures: List[str] = field(default_factory=list)


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_cch_customize(
    scale: str = "large",
    queries: int = 40,
    rounds: int = 3,
    epochs: int = 3,
    min_speedup: float = 5.0,
) -> CchOutcome:
    """Measure customize-vs-rebuild and query latency; never exits."""
    from ..index.cch import CustomizableContractionHierarchy
    from ..index.ch import ContractionHierarchy
    from ..network.generators import beijing_like
    from ..search.dijkstra import dijkstra

    failures: List[str] = []
    lines = [f"network        : beijing_like({scale!r})"]
    graph = beijing_like(scale, seed=0)
    n = graph.num_vertices
    lines.append(f"size           : {n} vertices, {graph.num_edges} edges")

    rng = random.Random(99)
    pairs = [(rng.randrange(n), rng.randrange(n)) for _ in range(queries)]
    edges = [(u, v) for u, v, _ in graph.edges()]

    def perturb() -> None:
        """One traffic epoch: slow ~20% of the arcs by 1.1-2.5x."""
        for u, v in rng.sample(edges, max(1, len(edges) // 5)):
            graph.set_weight(u, v, graph.weight(u, v) * rng.uniform(1.1, 2.5))

    def check_exact(index, label: str) -> None:
        for s, t in pairs:
            want = dijkstra(graph, s, t).distance
            got = index.distance(s, t)
            if got != want:
                failures.append(
                    f"{label} diverged on {s}->{t}: index {got!r}, "
                    f"dijkstra {want!r}"
                )
                return

    # --- builds: legacy full-price vs order/customize split -----------
    legacy = ContractionHierarchy(graph)
    build_seconds = legacy.construction_seconds
    cch = CustomizableContractionHierarchy(graph)
    lines.append(
        f"legacy CH      : built in {build_seconds:.2f} s "
        f"({legacy.num_shortcuts} shortcuts)"
    )
    lines.append(
        f"cch order      : {cch.order_seconds * 1e3:.0f} ms "
        f"({cch.num_super_edges} super-edges, {cch.num_triangles} triangles)"
    )
    lines.append(f"cch customize  : {cch.customize_seconds * 1e3:.1f} ms (initial)")
    check_exact(cch, "cch (initial)")

    # --- traffic epochs: re-customize only, never re-order ------------
    for _ in range(epochs):
        perturb()
        cch.customize()
    check_exact(cch, f"cch (after {epochs} epochs)")
    customize_seconds = _best_of(cch.customize, rounds)
    lines.append(
        f"re-customize   : {customize_seconds * 1e3:.1f} ms "
        f"(best of {rounds}, after {epochs} weight epochs)"
    )

    # --- the rebuild the legacy index would need for the same epochs --
    rebuild_seconds = min(
        build_seconds, ContractionHierarchy(graph).construction_seconds
    )
    speedup = (
        rebuild_seconds / customize_seconds
        if customize_seconds > 0
        else float("inf")
    )
    lines.append(f"legacy rebuild : {rebuild_seconds:.2f} s")
    lines.append(
        f"speedup        : {speedup:.1f}x (required >= {min_speedup:.1f}x)"
    )

    # --- query latency (informational) --------------------------------
    def cch_queries() -> None:
        for s, t in pairs:
            cch.query(s, t)

    def dijkstra_queries() -> None:
        for s, t in pairs:
            dijkstra(graph, s, t)

    cch_query_us = _best_of(cch_queries, rounds) / queries * 1e6
    dijkstra_query_us = _best_of(dijkstra_queries, rounds) / queries * 1e6
    lines.append(
        f"query latency  : cch {cch_query_us:.0f} us, "
        f"dijkstra {dijkstra_query_us:.0f} us "
        f"({dijkstra_query_us / max(cch_query_us, 1e-9):.1f}x)"
    )

    if speedup < min_speedup:
        failures.append(
            f"customize speedup {speedup:.2f}x below the "
            f"{min_speedup:.2f}x budget"
        )

    metrics = {
        "ch_rebuild_s": Metric(rebuild_seconds, unit="s", kind="time",
                               tolerance_pct=40.0),
        "cch_order_ms": Metric(cch.order_seconds * 1e3, unit="ms", kind="time",
                               tolerance_pct=40.0),
        "cch_customize_ms": Metric(customize_seconds * 1e3, unit="ms",
                                   kind="time", tolerance_pct=40.0),
        "customize_speedup": Metric(speedup, kind="ratio", direction="higher",
                                    tolerance_pct=40.0),
        "super_edges": Metric(float(cch.num_super_edges), kind="count"),
        "triangles": Metric(float(cch.num_triangles), kind="count"),
        "cch_query_us": Metric(cch_query_us, unit="us", kind="time",
                               tolerance_pct=60.0),
        "dijkstra_query_us": Metric(dijkstra_query_us, unit="us", kind="time",
                                    tolerance_pct=60.0),
        "budget_failures": Metric(float(len(failures)), kind="info"),
    }
    return CchOutcome(metrics=metrics, rendered="\n".join(lines),
                      failures=failures)


@suite("cch_customize", "CCH customize-vs-rebuild speedup budget",
       default_scale="large")
def cch_customize_suite(ctx: SuiteContext) -> SuiteRun:
    scale = ctx.scale if ctx.scale is not None else env_str(
        "REPRO_CCH_SCALE", "large"
    )
    outcome = run_cch_customize(
        scale=scale,
        queries=env_int("REPRO_CCH_QUERIES", 40),
        rounds=env_int("REPRO_CCH_ROUNDS", 3),
        epochs=env_int("REPRO_CCH_EPOCHS", 3),
        min_speedup=env_float("REPRO_CCH_MIN_SPEEDUP", 5.0),
    )
    return SuiteRun(metrics=outcome.metrics, rendered=outcome.rendered)
