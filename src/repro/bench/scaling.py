"""Cross-scale scaling study body (shared by pytest and the harness).

Varies the *network* size at a fixed batch size (the paper evaluates one
network); see ``benchmarks/test_scaling.py`` for the paper-shape
assertions layered on this measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric

DEFAULT_SCALES = ("tiny", "small", "medium")
DEFAULT_BATCH = 400


@dataclass
class ScalingOutcome:
    rendered: str
    rows: List[list]
    #: ``scale -> SLC-S VNN / A* VNN`` (the batch advantage).
    rel_vnn: Dict[str, float]
    #: ``scale -> SLC-S hit ratio``.
    hit_ratio: Dict[str, float]
    metrics: Dict[str, Metric]


def run_scaling(
    scales: Sequence[str] = DEFAULT_SCALES,
    batch: int = DEFAULT_BATCH,
    seed: int = 7,
) -> ScalingOutcome:
    from ..analysis import experiments as exp
    from ..analysis.tables import render_table
    from ..baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream
    from ..baselines.one_by_one import OneByOneAnswerer
    from ..core.local_cache import LocalCacheAnswerer
    from ..core.search_space import SearchSpaceDecomposer

    rows = []
    rel_vnn: Dict[str, float] = {}
    hit_ratio: Dict[str, float] = {}
    metrics: Dict[str, Metric] = {}
    for scale in scales:
        env = exp.build_env(scale=scale, seed=seed)
        queries = env.fresh_workload(501).batch(batch, *env.cache_band)
        log, stream = split_log_and_stream(queries, 0.2)

        astar = OneByOneAnswerer(env.graph).answer(stream)

        gc = GlobalCacheAnswerer(env.graph)
        gc.build(log)
        decomposition = SearchSpaceDecomposer(env.graph).decompose(stream)
        slc = LocalCacheAnswerer(env.graph, max(gc.cache_bytes, 1)).answer(
            decomposition
        )

        rel = slc.visited / astar.visited if astar.visited else 1.0
        rel_vnn[scale] = rel
        hit_ratio[scale] = slc.hit_ratio
        rows.append(
            [
                scale,
                env.graph.num_vertices,
                astar.visited,
                slc.visited,
                f"{rel:.3f}",
                f"{slc.hit_ratio:.3f}",
            ]
        )
        metrics[f"astar_vnn[{scale}]"] = Metric(float(astar.visited),
                                                kind="count", tolerance_pct=0.0)
        metrics[f"slc_vnn[{scale}]"] = Metric(float(slc.visited),
                                              kind="count", tolerance_pct=0.0)
        metrics[f"rel_vnn[{scale}]"] = Metric(rel, kind="ratio",
                                              tolerance_pct=0.0)
        metrics[f"hit_ratio[{scale}]"] = Metric(slc.hit_ratio, kind="ratio",
                                                direction="higher",
                                                tolerance_pct=0.0)

    rendered = render_table(
        ["scale", "|V|", "A* VNN", "SLC-S VNN", "SLC/A*", "hit ratio"],
        rows,
        title=f"Scaling study: |Q|={batch} across network sizes",
    )
    return ScalingOutcome(rendered=rendered, rows=rows, rel_vnn=rel_vnn,
                          hit_ratio=hit_ratio, metrics=metrics)


@suite("scaling", "batch advantage across network sizes at fixed |Q|")
def scaling_suite(ctx: SuiteContext) -> SuiteRun:
    outcome = run_scaling(seed=ctx.seed)
    return SuiteRun(metrics=outcome.metrics, rendered=outcome.rendered)
