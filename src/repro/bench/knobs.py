"""Central, validated parsing of ``REPRO_*`` environment knobs.

Every benchmark script historically parsed its own environment —
``int(os.environ.get("REPRO_CSR_PAIRS", "40"))`` and friends — which
crashes at import time with a bare ``ValueError: invalid literal`` that
names neither the knob nor the offending value.  These helpers make a
malformed knob a :class:`BenchConfigError` that says exactly which
variable is broken and what it contained, and they record every knob
they read so a benchmark run's metadata can capture the configuration
it actually ran under (see :func:`consumed_knobs`).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError


class BenchConfigError(ConfigurationError):
    """A ``REPRO_*`` environment knob holds a value that cannot be parsed."""

    def __init__(self, name: str, raw: str, expected: str) -> None:
        super().__init__(
            f"environment knob {name}={raw!r} is not a valid {expected}"
        )
        self.name = name
        self.raw = raw
        self.expected = expected


#: Knobs read since interpreter start (name -> raw value actually used),
#: so run metadata can embed the effective configuration.
_CONSUMED: Dict[str, str] = {}


def consumed_knobs() -> Dict[str, str]:
    """Knobs read so far, as ``{name: raw_value}`` (defaults included)."""
    return dict(_CONSUMED)


def _raw(name: str, default: object) -> str:
    raw = os.environ.get(name)
    if raw is None:
        raw = str(default)
    _CONSUMED[name] = raw
    return raw


def env_str(name: str, default: str, choices: Optional[Sequence[str]] = None) -> str:
    raw = _raw(name, default)
    if choices is not None and raw not in choices:
        raise BenchConfigError(name, raw, f"choice from {tuple(choices)}")
    return raw


def env_int(name: str, default: int) -> int:
    raw = _raw(name, default)
    try:
        return int(raw)
    except ValueError:
        raise BenchConfigError(name, raw, "integer") from None


def env_float(name: str, default: float) -> float:
    raw = _raw(name, default)
    try:
        return float(raw)
    except ValueError:
        raise BenchConfigError(name, raw, "number") from None


def env_int_list(name: str, default: Sequence[int]) -> Tuple[int, ...]:
    """Comma-separated integer list; blanks between commas are skipped."""
    raw = _raw(name, ",".join(str(v) for v in default))
    try:
        values = tuple(int(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise BenchConfigError(name, raw, "comma-separated integer list") from None
    if not values:
        raise BenchConfigError(name, raw, "non-empty comma-separated integer list")
    return values
