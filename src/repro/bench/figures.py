"""Figure/table experiments as harnessed suites.

The measurement bodies are the existing :mod:`repro.analysis.experiments`
runners — the same ones the ``benchmarks/test_fig*.py`` pytest scripts
assert shapes on.  This module only *types* their output: each series
point becomes a :class:`~repro.bench.schema.Metric` with a kind,
direction and noise tolerance, so ``repro bench compare`` can tell a
hit-ratio regression (deterministic, zero tolerance) from wall-time
scatter (generous tolerance).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..analysis.export import series_points
from .registry import SuiteContext, SuiteRun, suite
from .schema import Metric

#: Wall-time series vary run-to-run; counters and ratios do not.
TIME_TOLERANCE_PCT = 35.0


@dataclass(frozen=True)
class MetricStyle:
    unit: str = "s"
    kind: str = "time"
    direction: str = "lower"
    tolerance_pct: float = TIME_TOLERANCE_PCT


#: How each experiment's series values are typed.
STYLES: Dict[str, MetricStyle] = {
    "fig7a": MetricStyle(),
    "fig7b": MetricStyle(unit="", kind="ratio", direction="higher", tolerance_pct=0.0),
    "fig7c": MetricStyle(unit="", kind="ratio", direction="higher", tolerance_pct=0.0),
    "fig7d": MetricStyle(),
    "fig7d_vnn": MetricStyle(unit="vertices", kind="count", tolerance_pct=0.0),
    "fig7e": MetricStyle(),
    "fig7f": MetricStyle(),
    "fig7f_vnn": MetricStyle(unit="vertices", kind="count", tolerance_pct=0.0),
    "fig8": MetricStyle(tolerance_pct=45.0),
    "table1": MetricStyle(unit="MB", kind="bytes", tolerance_pct=0.0),
    "table2": MetricStyle(unit="%", kind="ratio", tolerance_pct=0.0),
}


def experiment_metrics(result) -> Dict[str, Metric]:
    """Type an :class:`ExperimentResult`'s flattened series as metrics."""
    style = STYLES.get(result.experiment, MetricStyle())
    return {
        key: Metric(
            value=value,
            unit=style.unit,
            kind=style.kind,
            direction=style.direction,
            tolerance_pct=style.tolerance_pct,
        )
        for key, value in series_points(result)
    }


def _run(result) -> SuiteRun:
    return SuiteRun(metrics=experiment_metrics(result), rendered=result.rendered)


@suite("fig7a", "decomposition time of the three methods vs batch size")
def fig7a(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig7a.__suite__)
    return _run(exp.run_fig7a(ctx.env(scale), ctx.sizes()))


@suite("fig7b", "cache hit ratio of GC/ZLC/SLC vs batch size")
def fig7b(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig7b.__suite__)
    return _run(exp.run_fig7b(ctx.env(scale), ctx.cache_suites(scale)))


@suite("fig7c", "hit ratio vs cache-size fraction")
def fig7c(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig7c.__suite__)
    return _run(exp.run_fig7c(ctx.env(scale), ctx.cache_suites(scale)))


@suite("fig7d", "batch answering time (plus the VNN companion artefact)")
def fig7d(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig7d.__suite__)
    suites = ctx.cache_suites(scale)
    main = exp.run_fig7d(ctx.env(scale), suites)
    vnn = exp.run_fig7d_vnn(ctx.env(scale), suites)
    run = _run(main)
    run.metrics.update(
        {f"vnn.{k}": m for k, m in experiment_metrics(vnn).items()}
    )
    run.extra_renders[vnn.experiment] = vnn.rendered
    return run


@suite("fig7e", "answering time vs cache-size fraction")
def fig7e(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig7e.__suite__)
    return _run(exp.run_fig7e(ctx.env(scale), ctx.cache_suites(scale)))


@suite("fig7f", "R2R query time (plus the VNN companion artefact)")
def fig7f(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig7f.__suite__)
    suites = ctx.r2r_suites(scale)
    main = exp.run_fig7f(ctx.env(scale), suites)
    vnn = exp.run_fig7f_vnn(ctx.env(scale), suites)
    run = _run(main)
    run.metrics.update(
        {f"vnn.{k}": m for k, m in experiment_metrics(vnn).items()}
    )
    run.extra_renders[vnn.experiment] = vnn.rendered
    return run


@suite("fig8", "40-server makespan per method plus index construction")
def fig8(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(fig8.__suite__)
    result = exp.run_fig8(ctx.env(scale), size=400, num_servers=40,
                          include_indexes=True)
    return _run(result)


@suite("table1", "Global Cache size (MB) per batch size")
def table1(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(table1.__suite__)
    return _run(exp.run_table1(ctx.env(scale), ctx.cache_suites(scale)))


@suite("table2", "R2R approximation error vs eta")
def table2(ctx: SuiteContext) -> SuiteRun:
    from ..analysis import experiments as exp

    scale = ctx.scale_for(table2.__suite__)
    return _run(exp.run_table2(ctx.env(scale), ctx.r2r_suites(scale)))
