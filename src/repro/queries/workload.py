"""Synthetic taxi-like query workloads.

The paper samples queries from 12M Beijing taxi trajectories: trips start
and end disproportionately at hotspots (stations, airports, malls) and the
experiments filter the sample into two distance bands — under 50 km for the
cache tests, 30-80 km for the region-to-region tests (Section VI-A1).

:class:`WorkloadGenerator` reproduces that structure without the private
data: endpoints are drawn from a mixture of Gaussian hotspots (snapped to
the nearest network vertex through a grid index) plus a uniform background,
then rejection-sampled into the requested distance band.  Batches for the
dynamic experiment are just consecutive windows of the stream.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError, QueryError
from ..network.grid import GridIndex
from .query import Query, QuerySet


@dataclass(frozen=True)
class Hotspot:
    """A Gaussian endpoint attractor (station / airport / mall)."""

    x: float
    y: float
    sigma: float
    weight: float = 1.0


class WorkloadGenerator:
    """Draws hotspot-biased query batches from a road network.

    Parameters
    ----------
    graph:
        The road network to sample vertices from.
    hotspots:
        Explicit hotspot list; when omitted, ``num_hotspots`` are placed
        uniformly over the network extent with sigma a fraction of it.
    hotspot_fraction:
        Probability that an endpoint comes from a hotspot rather than the
        uniform background.
    seed:
        Seed of the private RNG; every draw is deterministic given it.
    """

    def __init__(
        self,
        graph,
        hotspots: Optional[Sequence[Hotspot]] = None,
        num_hotspots: int = 8,
        hotspot_fraction: float = 0.7,
        seed: int = 0,
        grid_levels: int = 5,
    ) -> None:
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ConfigurationError("hotspot_fraction must be in [0, 1]")
        if graph.num_vertices == 0:
            raise ConfigurationError("cannot generate workload on an empty network")
        self.graph = graph
        self.hotspot_fraction = hotspot_fraction
        self._rng = random.Random(seed)
        self._grid = GridIndex(graph, levels=grid_levels)
        min_x, min_y, max_x, max_y = graph.extent()
        self._extent = (min_x, min_y, max_x, max_y)
        if hotspots is None:
            span = max(max_x - min_x, max_y - min_y)
            hotspots = [
                Hotspot(
                    x=self._rng.uniform(min_x, max_x),
                    y=self._rng.uniform(min_y, max_y),
                    sigma=span * 0.03,
                    weight=self._rng.uniform(0.5, 2.0),
                )
                for _ in range(num_hotspots)
            ]
        if not hotspots:
            raise ConfigurationError("need at least one hotspot")
        self.hotspots: List[Hotspot] = list(hotspots)
        self._hotspot_weights = [h.weight for h in self.hotspots]

    # ------------------------------------------------------------------
    # Vertex sampling
    # ------------------------------------------------------------------
    def _nearest_vertex(self, x: float, y: float) -> int:
        """Snap a point to its nearest network vertex (expanding ring search).

        Scans grid cells ring by ring around the point's (clamped) cell and
        stops once every unvisited ring is provably farther than the best
        candidate: a vertex in Chebyshev ring ``r`` is at least
        ``(r - 1) * cell_size - d0`` away, where ``d0`` is the clamping
        offset for points outside the grid extent.
        """
        grid = self._grid
        ci, cj = grid.cell_of_point(x, y)
        # Clamping offset: zero for in-grid points, otherwise the distance
        # from the point to its clamped cell's nearest corner region.
        x0 = grid.origin[0] + ci * grid.cell_size
        y0 = grid.origin[1] + cj * grid.cell_size
        dx = max(x0 - x, 0.0, x - (x0 + grid.cell_size))
        dy = max(y0 - y, 0.0, y - (y0 + grid.cell_size))
        d0 = math.hypot(dx, dy)

        best = -1
        best_d = math.inf
        n = grid.cells_per_side
        max_radius = 2 * n  # generous: covers the whole grid from any cell
        for radius in range(max_radius + 1):
            if best >= 0 and (radius - 1) * grid.cell_size - d0 > best_d:
                break
            lo_i, hi_i = ci - radius, ci + radius
            lo_j, hi_j = cj - radius, cj + radius
            for i in range(max(0, lo_i), min(n, hi_i + 1)):
                for j in range(max(0, lo_j), min(n, hi_j + 1)):
                    if radius > 0 and lo_i < i < hi_i and lo_j < j < hi_j:
                        continue  # interior already scanned at smaller radius
                    for v in grid.vertices_in_cell((i, j)):
                        d = math.hypot(self.graph.xs[v] - x, self.graph.ys[v] - y)
                        if d < best_d:
                            best_d = d
                            best = v
        if best < 0:
            raise QueryError("no vertex found while snapping workload point")
        return best

    def sample_vertex(self) -> int:
        """One endpoint: hotspot-Gaussian with uniform background mixture."""
        min_x, min_y, max_x, max_y = self._extent
        if self._rng.random() < self.hotspot_fraction:
            spot = self._rng.choices(self.hotspots, weights=self._hotspot_weights)[0]
            x = self._rng.gauss(spot.x, spot.sigma)
            y = self._rng.gauss(spot.y, spot.sigma)
            x = min(max(x, min_x), max_x)
            y = min(max(y, min_y), max_y)
        else:
            x = self._rng.uniform(min_x, max_x)
            y = self._rng.uniform(min_y, max_y)
        return self._nearest_vertex(x, y)

    # ------------------------------------------------------------------
    # Batch sampling
    # ------------------------------------------------------------------
    def batch(
        self,
        size: int,
        min_dist: float = 0.0,
        max_dist: float = math.inf,
        max_attempts_factor: int = 200,
    ) -> QuerySet:
        """A batch of ``size`` queries whose Euclidean length is in band.

        Rejection-samples endpoint pairs; raises
        :class:`~repro.exceptions.QueryError` if the band is infeasible for
        this network (too few accepted pairs after
        ``size * max_attempts_factor`` attempts).
        """
        if size < 0:
            raise ConfigurationError("batch size must be non-negative")
        queries: List[Query] = []
        attempts = 0
        budget = max(size, 1) * max_attempts_factor
        while len(queries) < size and attempts < budget:
            attempts += 1
            s = self.sample_vertex()
            t = self.sample_vertex()
            if s == t:
                continue
            d = self.graph.euclidean(s, t)
            if min_dist <= d <= max_dist:
                queries.append(Query(s, t))
        if len(queries) < size:
            raise QueryError(
                f"could only draw {len(queries)}/{size} queries in band "
                f"[{min_dist}, {max_dist}] after {attempts} attempts"
            )
        return QuerySet(queries)

    def cache_band(self, size: int, limit: float = 50.0) -> QuerySet:
        """The paper's cache-test band: distances shorter than ``limit``."""
        return self.batch(size, min_dist=0.0, max_dist=limit)

    def r2r_band(self, size: int, low: float = 30.0, high: float = 80.0) -> QuerySet:
        """The paper's region-to-region band: distances in ``[low, high]``."""
        return self.batch(size, min_dist=low, max_dist=high)

    def batch_stream(
        self,
        num_batches: int,
        batch_size: int,
        min_dist: float = 0.0,
        max_dist: float = math.inf,
    ) -> List[QuerySet]:
        """Consecutive batches for the dynamic experiment (Section V-A3)."""
        return [
            self.batch(batch_size, min_dist=min_dist, max_dist=max_dist)
            for _ in range(num_batches)
        ]


def band_for_network(graph, kind: str) -> Tuple[float, float]:
    """Scale the paper's Beijing distance bands to an arbitrary network.

    The paper's bands (cache < 50 km, R2R 30-80 km) are fractions of the
    Beijing extent (~184 km): 0.27x and 0.16x-0.43x.  This helper applies
    the same fractions to ``graph`` so scaled-down networks keep the same
    short/long query regimes.
    """
    min_x, min_y, max_x, max_y = graph.extent()
    span = max(max_x - min_x, max_y - min_y)
    if kind == "cache":
        return (0.0, span * 50.0 / 184.0)
    if kind == "r2r":
        return (span * 30.0 / 184.0, span * 80.0 / 184.0)
    raise ConfigurationError(f"unknown band kind {kind!r}; use 'cache' or 'r2r'")
