"""Workload profiling: the statistics that predict batch-method benefit.

Which batch method pays off depends on measurable workload properties:

* the *distance distribution* decides the cache band vs the R2R band,
* *endpoint concentration* (how few vertices carry most endpoints)
  predicts cache hit ratios and co-cluster sizes, and
* the *direction distribution* predicts how much the angle-bounded
  decompositions (delta) fragment the batch.

:func:`profile_workload` computes them for any query set so a downstream
user can compare their production workload to the synthetic ones here and
pick parameters accordingly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..exceptions import QueryError
from ..network.spatial import bearing_angle
from .query import Query, QuerySet


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary statistics of one query workload."""

    num_queries: int
    distinct_queries: int
    distinct_sources: int
    distinct_targets: int
    mean_distance: float
    median_distance: float
    p90_distance: float
    endpoint_gini: float
    direction_histogram: Dict[str, int]  # 8 compass sectors
    repeat_fraction: float  # share of queries that repeat an earlier pair

    def as_dict(self) -> Dict[str, object]:
        return {
            "num_queries": self.num_queries,
            "distinct_queries": self.distinct_queries,
            "distinct_sources": self.distinct_sources,
            "distinct_targets": self.distinct_targets,
            "mean_distance": self.mean_distance,
            "median_distance": self.median_distance,
            "p90_distance": self.p90_distance,
            "endpoint_gini": self.endpoint_gini,
            "direction_histogram": dict(self.direction_histogram),
            "repeat_fraction": self.repeat_fraction,
        }


_SECTORS = ("E", "NE", "N", "NW", "W", "SW", "S", "SE")


def _gini(counts: Sequence[int]) -> float:
    """Gini coefficient of a count distribution (0 uniform, ->1 skewed)."""
    values = sorted(c for c in counts if c > 0)
    n = len(values)
    if n == 0:
        return 0.0
    total = sum(values)
    if total == 0:
        return 0.0
    cum = 0.0
    weighted = 0.0
    for i, v in enumerate(values, start=1):
        cum += v
        weighted += cum
    # Standard formula: G = (n + 1 - 2 * sum(cum_i)/total) / n
    return max(0.0, (n + 1 - 2 * weighted / total) / n)


def profile_workload(graph, queries: QuerySet) -> WorkloadProfile:
    """Compute the :class:`WorkloadProfile` of ``queries`` on ``graph``."""
    if len(queries) == 0:
        raise QueryError("cannot profile an empty workload")
    distances: List[float] = []
    endpoint_counts: Dict[int, int] = {}
    histogram = {sector: 0 for sector in _SECTORS}
    seen = set()
    repeats = 0
    for q in queries:
        d = graph.euclidean(q.source, q.target)
        distances.append(d)
        endpoint_counts[q.source] = endpoint_counts.get(q.source, 0) + 1
        endpoint_counts[q.target] = endpoint_counts.get(q.target, 0) + 1
        bearing = bearing_angle(
            graph.xs[q.target] - graph.xs[q.source],
            graph.ys[q.target] - graph.ys[q.source],
        )
        histogram[_SECTORS[int(((bearing + 22.5) % 360) / 45.0)]] += 1
        if q in seen:
            repeats += 1
        seen.add(q)

    ordered = sorted(distances)
    n = len(ordered)

    def percentile(p: float) -> float:
        rank = p * (n - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            # The naive interpolation would compute ordered[lo] * 1.0 +
            # ordered[lo] * 0.0, which can be 1 ULP off the sample itself
            # and break percentile monotonicity on repeated values.
            return ordered[lo]
        frac = rank - lo
        value = ordered[lo] * (1 - frac) + ordered[hi] * frac
        # Clamp to the bracketing samples so percentiles stay monotone
        # even when the interpolation rounds outside [ordered[lo],
        # ordered[hi]].
        return min(max(value, ordered[lo]), ordered[hi])

    return WorkloadProfile(
        num_queries=n,
        distinct_queries=len(seen),
        distinct_sources=len(queries.sources),
        distinct_targets=len(queries.targets),
        mean_distance=sum(ordered) / n,
        median_distance=percentile(0.5),
        p90_distance=percentile(0.9),
        endpoint_gini=_gini(list(endpoint_counts.values())),
        direction_histogram=histogram,
        repeat_fraction=repeats / n,
    )
