"""Shortest-path queries and query sets (paper Definition 1).

A :class:`Query` is an ``(s, t)`` vertex pair; a :class:`QuerySet` is the
batch ``Q`` issued within one scheduling window.  The query set knows its
source set ``S`` and target set ``T`` and offers the groupings the Zigzag
decomposition starts from: the 1-N set ``Q_s`` per source and the N-1 set
``Q_t`` per target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..exceptions import QueryError


@dataclass(frozen=True, order=True)
class Query:
    """A single shortest-path request from vertex ``source`` to ``target``."""

    source: int
    target: int

    def __post_init__(self) -> None:
        if self.source < 0 or self.target < 0:
            raise QueryError(f"negative vertex id in query ({self.source}, {self.target})")

    @property
    def s(self) -> int:
        return self.source

    @property
    def t(self) -> int:
        return self.target

    def euclidean(self, graph) -> float:
        """Straight-line length of the query on ``graph``."""
        return graph.euclidean(self.source, self.target)


class QuerySet:
    """An ordered batch of queries with set-level views.

    Duplicates are allowed (two customers may request the same trip) but
    :meth:`deduplicated` collapses them when an algorithm answers per
    distinct pair.  Definition 1's size bound
    ``max(|S|, |T|) <= |Q| <= |S| x |T|`` holds for deduplicated sets and is
    checked by :meth:`validate`.
    """

    def __init__(self, queries: Iterable[Query] = ()) -> None:
        self._queries: List[Query] = list(queries)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_pairs(cls, pairs: Iterable[Tuple[int, int]]) -> "QuerySet":
        return cls(Query(s, t) for s, t in pairs)

    def copy(self) -> "QuerySet":
        return QuerySet(self._queries)

    # -- container protocol ----------------------------------------------
    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, index):
        result = self._queries[index]
        if isinstance(index, slice):
            return QuerySet(result)
        return result

    def __contains__(self, query: Query) -> bool:
        return query in set(self._queries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuerySet):
            return NotImplemented
        return self._queries == other._queries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuerySet({len(self._queries)} queries)"

    def append(self, query: Query) -> None:
        self._queries.append(query)

    def extend(self, queries: Iterable[Query]) -> None:
        self._queries.extend(queries)

    @property
    def queries(self) -> List[Query]:
        """The underlying list (treat as read-only)."""
        return self._queries

    # -- set-level views --------------------------------------------------
    @property
    def sources(self) -> Set[int]:
        """The source set ``S``."""
        return {q.source for q in self._queries}

    @property
    def targets(self) -> Set[int]:
        """The target set ``T``."""
        return {q.target for q in self._queries}

    def by_source(self) -> Dict[int, List[Query]]:
        """The 1-N query sets ``Q_{s_i}`` keyed by source."""
        groups: Dict[int, List[Query]] = {}
        for q in self._queries:
            groups.setdefault(q.source, []).append(q)
        return groups

    def by_target(self) -> Dict[int, List[Query]]:
        """The N-1 query sets ``Q_{t_j}`` keyed by target."""
        groups: Dict[int, List[Query]] = {}
        for q in self._queries:
            groups.setdefault(q.target, []).append(q)
        return groups

    def deduplicated(self) -> "QuerySet":
        """Distinct queries in first-seen order."""
        return QuerySet(dict.fromkeys(self._queries))

    def validate_endpoints(self, graph) -> None:
        """Raise :class:`QueryError` if any endpoint is not a vertex of ``graph``.

        Catching bad ids here turns what would otherwise surface as a bare
        ``KeyError``/``IndexError`` deep inside a search heap into a typed,
        actionable error at the service boundary.
        """
        n = graph.num_vertices
        for q in self._queries:
            if q.source >= n or q.target >= n:
                raise QueryError(
                    f"query ({q.source}, {q.target}) references a vertex outside "
                    f"the network (|V| = {n})"
                )

    def partition_valid(self, graph) -> Tuple["QuerySet", List[Tuple[Query, str]]]:
        """Split into (valid queries, rejected ``(query, reason)`` pairs).

        The service uses this to dead-letter malformed queries instead of
        aborting the whole scheduling window.
        """
        n = graph.num_vertices
        valid: List[Query] = []
        rejected: List[Tuple[Query, str]] = []
        for q in self._queries:
            if q.source >= n or q.target >= n:
                rejected.append(
                    (q, f"vertex id out of range (|V| = {n})")
                )
            else:
                valid.append(q)
        return QuerySet(valid), rejected

    def validate(self) -> None:
        """Check Definition 1's size bounds on the deduplicated set."""
        distinct = dict.fromkeys(self._queries)
        n = len(distinct)
        s = len({q.source for q in distinct})
        t = len({q.target for q in distinct})
        if n and not max(s, t) <= n <= s * t:
            raise QueryError(
                f"query set violates Definition 1: |Q|={n}, |S|={s}, |T|={t}"
            )

    # -- geometry helpers -------------------------------------------------
    def sorted_by_euclidean(self, graph, descending: bool = True) -> "QuerySet":
        """Queries ordered by straight-line length (longest first by default)."""
        return QuerySet(
            sorted(
                self._queries,
                key=lambda q: graph.euclidean(q.source, q.target),
                reverse=descending,
            )
        )

    def within_band(self, graph, min_dist: float, max_dist: float) -> "QuerySet":
        """Queries whose Euclidean length lies in ``[min_dist, max_dist]``.

        The paper filters by network distance; Euclidean is the index-free
        stand-in used at scheduling time (Section IV-A1 uses the same
        substitution).
        """
        return QuerySet(
            q
            for q in self._queries
            if min_dist <= graph.euclidean(q.source, q.target) <= max_dist
        )

    def shuffled(self, seed: int = 0) -> "QuerySet":
        """A deterministic random permutation of the batch."""
        import random

        queries = list(self._queries)
        random.Random(seed).shuffle(queries)
        return QuerySet(queries)
