"""Query arrival processes and batching windows.

Definition 1 defines a batch as "a collection of shortest path queries
issued within a short time period (e.g., 1 second)".  This module supplies
the missing piece between a raw query stream and the batch algorithms: a
Poisson (or fixed-rate) arrival process stamping queries with arrival
times, and a windowing scheduler that groups them into the per-second
batches the rest of the library consumes.

Used by the streaming example and the dynamic experiments; also handy for
downstream users replaying their own logs (any iterable of
``TimedQuery`` works).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from ..exceptions import ConfigurationError
from .query import Query, QuerySet


@dataclass(frozen=True, order=True)
class TimedQuery:
    """A query stamped with its arrival time (seconds from stream start).

    ``seq`` is the arrivals-journal sequence number, stamped by the
    streaming service when a journal is attached (``None`` otherwise).
    It is excluded from ordering and equality so journaled and plain
    streams sort and compare identically.
    """

    arrival: float
    query: Query
    seq: Optional[int] = field(default=None, compare=False)


class PoissonArrivals:
    """Memoryless arrivals at ``rate`` queries/second from a workload.

    The inter-arrival gaps are exponential, matching how independent users
    issue requests; ``rate`` is the lambda of the process.
    """

    def __init__(self, workload, rate: float, seed: int = 0,
                 min_dist: float = 0.0, max_dist: float = math.inf) -> None:
        if rate <= 0:
            raise ConfigurationError("rate must be positive")
        self.workload = workload
        self.rate = rate
        self.min_dist = min_dist
        self.max_dist = max_dist
        self._rng = random.Random(seed)

    def take(self, count: int) -> List[TimedQuery]:
        """The next ``count`` timed queries of the process."""
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        out: List[TimedQuery] = []
        clock = 0.0
        queries = self.workload.batch(
            count, min_dist=self.min_dist, max_dist=self.max_dist
        )
        for q in queries:
            clock += self._rng.expovariate(self.rate)
            out.append(TimedQuery(clock, q))
        return out

    def duration(self, seconds: float) -> List[TimedQuery]:
        """All arrivals within the first ``seconds`` of the process.

        Draws in chunks until the clock passes the horizon; the expected
        count is ``rate * seconds``.
        """
        if seconds < 0:
            raise ConfigurationError("seconds must be non-negative")
        expected = max(1, int(self.rate * seconds * 1.5) + 10)
        arrivals = self.take(expected)
        while arrivals and arrivals[-1].arrival < seconds:
            more = self.take(expected // 2 + 1)
            offset = arrivals[-1].arrival
            arrivals.extend(
                TimedQuery(offset + tq.arrival, tq.query) for tq in more
            )
        # Half-open horizon, matching the window predicate of
        # :func:`window_batches`: an arrival at exactly ``seconds`` belongs
        # to the *next* window, which would be a phantom extra window here.
        return [tq for tq in arrivals if tq.arrival < seconds]


def window_batches(
    arrivals: Iterable[TimedQuery],
    window_seconds: float = 1.0,
) -> List[QuerySet]:
    """Group timed queries into consecutive fixed windows (Definition 1).

    Window ``k`` holds queries with ``k * w <= arrival < (k + 1) * w``.
    Empty leading/interior windows are preserved as empty QuerySets so a
    scheduler sees the true cadence; trailing emptiness is trimmed.

    Arrival times must be non-negative: a negative arrival has no window
    under Definition 1, and before this was checked its ``-1`` bucket
    index silently appended the query to the *last* window via Python's
    negative indexing — a misbucketing, not an error.
    """
    if window_seconds <= 0:
        raise ConfigurationError("window_seconds must be positive")
    ordered = sorted(arrivals)
    if not ordered:
        return []
    if ordered[0].arrival < 0:
        raise ConfigurationError(
            f"arrival times must be non-negative, got {ordered[0].arrival!r}"
        )
    last_window = _window_index(ordered[-1].arrival, window_seconds)
    batches: List[QuerySet] = [QuerySet() for _ in range(last_window + 1)]
    for tq in ordered:
        batches[_window_index(tq.arrival, window_seconds)].append(tq.query)
    return batches


def _window_index(arrival: float, window_seconds: float) -> int:
    """The window ``k`` with ``k * w <= arrival < (k + 1) * w``, exactly.

    ``floor(arrival / w)`` alone can land one window off: the quotient is
    rounded, so the documented multiplicative bounds may exclude the
    arrival (e.g. ``arrival=42.99999999999999``, ``w=1/3``).  Nudge the
    bucket until the predicate holds under the same float arithmetic the
    callers (and tests) use.
    """
    k = int(math.floor(arrival / window_seconds))
    while k > 0 and arrival < k * window_seconds:
        k -= 1
    while arrival >= (k + 1) * window_seconds:
        k += 1
    return k


def stream_statistics(arrivals: Sequence[TimedQuery]) -> dict:
    """Quick summary of an arrival stream (count, rate, burstiness)."""
    if not arrivals:
        return {"count": 0, "duration": 0.0, "rate": 0.0, "cv": 0.0}
    ordered = sorted(arrivals)
    gaps = [
        b.arrival - a.arrival for a, b in zip(ordered, ordered[1:])
    ]
    duration = ordered[-1].arrival
    rate = len(ordered) / duration if duration > 0 else 0.0
    if gaps:
        mean_gap = sum(gaps) / len(gaps)
        var = sum((g - mean_gap) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(var) / mean_gap if mean_gap > 0 else 0.0
    else:
        cv = 0.0
    return {
        "count": len(ordered),
        "duration": duration,
        "rate": rate,
        "cv": cv,  # ~1 for Poisson
    }
