"""Taxi-trajectory simulation — the paper's query source, synthesised.

Section VI-A1: "The query data is sampled from Beijing taxi trajectory...
Each pair of starting and ending location is regarded as a shortest path
query."  This module provides that pipeline end to end without the
proprietary data: simulate trips on the network (hotspot-biased ODs,
realistic detours via waypoints), then derive the query workload from the
trip endpoints exactly as the paper does.

Beyond endpoint queries, :func:`subtrip_queries` samples queries from
*within* trips (a passenger picked up mid-route), which raises sub-path
coherence — useful for stress-testing the caches' hit ratio under very
favourable conditions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..exceptions import ConfigurationError, QueryError
from ..search.astar import a_star
from .query import Query, QuerySet
from .workload import WorkloadGenerator


@dataclass(frozen=True)
class Trip:
    """One simulated taxi trip: a realisable route with a start time."""

    path: tuple  # vertex sequence, origin..destination
    start_time: float
    distance: float

    @property
    def origin(self) -> int:
        return self.path[0]

    @property
    def destination(self) -> int:
        return self.path[-1]

    def __len__(self) -> int:
        return len(self.path)


class TrajectorySimulator:
    """Simulates trips whose routes are realisable on the network.

    Parameters
    ----------
    graph:
        The road network.
    workload:
        Endpoint sampler (hotspot-biased); built with defaults if omitted.
    waypoint_probability:
        Chance a trip detours via a random intermediate waypoint — real
        taxi routes are rarely exact shortest paths; a waypointed trip's
        route is shortest(o, w) + shortest(w, d).
    seed:
        Deterministic RNG seed.
    """

    def __init__(
        self,
        graph,
        workload: Optional[WorkloadGenerator] = None,
        waypoint_probability: float = 0.25,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= waypoint_probability <= 1.0:
            raise ConfigurationError("waypoint_probability must be in [0, 1]")
        self.graph = graph
        self.workload = (
            workload if workload is not None else WorkloadGenerator(graph, seed=seed)
        )
        self.waypoint_probability = waypoint_probability
        self._rng = random.Random(seed)

    def simulate(
        self,
        num_trips: int,
        rate_per_second: float = 10.0,
        min_dist: float = 0.0,
        max_dist: float = float("inf"),
    ) -> List[Trip]:
        """Generate ``num_trips`` trips with exponential start-time gaps."""
        if num_trips < 0:
            raise ConfigurationError("num_trips must be non-negative")
        if rate_per_second <= 0:
            raise ConfigurationError("rate_per_second must be positive")
        trips: List[Trip] = []
        clock = 0.0
        attempts = 0
        budget = max(num_trips, 1) * 50
        while len(trips) < num_trips and attempts < budget:
            attempts += 1
            o = self.workload.sample_vertex()
            d = self.workload.sample_vertex()
            if o == d:
                continue
            euclid = self.graph.euclidean(o, d)
            if not min_dist <= euclid <= max_dist:
                continue
            path = self._route(o, d)
            if path is None:
                continue
            clock += self._rng.expovariate(rate_per_second)
            distance = sum(
                self.graph.weight(u, v) for u, v in zip(path, path[1:])
            )
            trips.append(Trip(tuple(path), clock, distance))
        if len(trips) < num_trips:
            raise QueryError(
                f"could only simulate {len(trips)}/{num_trips} trips "
                f"in band [{min_dist}, {max_dist}]"
            )
        return trips

    def _route(self, origin: int, destination: int) -> Optional[List[int]]:
        if self._rng.random() < self.waypoint_probability:
            waypoint = self.workload.sample_vertex()
            if waypoint not in (origin, destination):
                first = a_star(self.graph, origin, waypoint)
                second = a_star(self.graph, waypoint, destination)
                if first.found and second.found:
                    return first.path + second.path[1:]
        direct = a_star(self.graph, origin, destination)
        return direct.path if direct.found else None


def queries_from_trips(trips: Sequence[Trip]) -> QuerySet:
    """The paper's derivation: one (origin, destination) query per trip."""
    return QuerySet(Query(t.origin, t.destination) for t in trips)


def subtrip_queries(
    trips: Sequence[Trip],
    per_trip: int = 1,
    seed: int = 0,
    min_hops: int = 2,
) -> QuerySet:
    """Sample queries from within trips (mid-route pickups).

    Each sampled query's endpoints are two route vertices in travel order,
    at least ``min_hops`` apart, so every sampled query is answerable by
    caching the trip's route — the coherence ceiling for the caches.
    """
    if per_trip < 0:
        raise ConfigurationError("per_trip must be non-negative")
    if min_hops < 1:
        raise ConfigurationError("min_hops must be at least 1")
    rng = random.Random(seed)
    queries = QuerySet()
    for trip in trips:
        n = len(trip.path)
        if n <= min_hops:
            continue
        for _ in range(per_trip):
            i = rng.randrange(0, n - min_hops)
            j = rng.randrange(i + min_hops, n)
            if trip.path[i] != trip.path[j]:
                queries.append(Query(trip.path[i], trip.path[j]))
    return queries
