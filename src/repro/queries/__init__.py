"""Query model, workloads, arrival processes, and trajectory simulation."""

from .arrivals import PoissonArrivals, TimedQuery, stream_statistics, window_batches
from .profile import WorkloadProfile, profile_workload
from .query import Query, QuerySet
from .trajectories import (
    TrajectorySimulator,
    Trip,
    queries_from_trips,
    subtrip_queries,
)
from .workload import Hotspot, WorkloadGenerator, band_for_network

__all__ = [
    "Hotspot",
    "PoissonArrivals",
    "Query",
    "QuerySet",
    "TimedQuery",
    "TrajectorySimulator",
    "Trip",
    "WorkloadGenerator",
    "WorkloadProfile",
    "band_for_network",
    "profile_workload",
    "queries_from_trips",
    "stream_statistics",
    "subtrip_queries",
    "window_batches",
]
