"""A batch query-answering service: the deployment-shaped entry point.

Everything the paper proposes, assembled the way a routing backend would
run it:

* queries arrive continuously (any iterable of
  :class:`~repro.queries.arrivals.TimedQuery`), are grouped into fixed
  scheduling windows (Definition 1),
* each window is decomposed and answered through a
  :class:`~repro.core.dynamic.DynamicBatchSession` (cache reuse within a
  traffic epoch, flush on weight changes),
* an optional :class:`~repro.network.timeline.TrafficTimeline` drives the
  snapshots as simulated time advances, and
* per-window latency is tracked against an SLO so operators see at a
  glance whether the current server would keep up.

With ``workers=1`` (the default) the service runs synchronously in one
process and window answering goes through the cache-reusing dynamic
session.  With ``workers=k`` each window is dispatched across ``k``
worker processes by :class:`repro.parallel.ParallelBatchEngine` — one
cluster per indivisible work unit, caches worker-local — and every
:class:`WindowReport` carries the measured
:class:`~repro.analysis.parallel.ScheduleResult` so operators can read
per-window speedup and utilisation next to the latency SLO.
:mod:`repro.analysis.capacity` still sizes the horizontal fleet from the
per-window costs this service records.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .core.dynamic import DynamicBatchSession
from .core.local_cache import LocalCacheAnswerer
from .core.results import BatchAnswer
from .core.search_space import SearchSpaceDecomposer
from .exceptions import ConfigurationError
from .obs import MetricsSnapshot, TIME_BUCKETS, get_registry
from .queries.arrivals import TimedQuery, window_batches
from .queries.query import QuerySet

logger = logging.getLogger(__name__)


@dataclass
class WindowReport:
    """Outcome of one scheduling window."""

    window_index: int
    queries: int
    answer: Optional[BatchAnswer]
    wall_seconds: float
    deadline_seconds: float
    timeline_events: int = 0
    #: Worker processes that answered this window.
    workers: int = 1
    #: Measured :class:`~repro.analysis.parallel.ScheduleResult` of a
    #: multiprocess window (``None`` for single-process windows).
    schedule: Optional[object] = None

    @property
    def met_deadline(self) -> bool:
        return self.wall_seconds <= self.deadline_seconds

    @property
    def hit_ratio(self) -> float:
        return self.answer.hit_ratio if self.answer is not None else 0.0


@dataclass
class ServiceReport:
    """Aggregate over a whole run of the service."""

    windows: List[WindowReport] = field(default_factory=list)
    #: Snapshot of the active metrics registry taken when :meth:`run`
    #: finished (``None`` when no registry was installed).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def total_queries(self) -> int:
        return sum(w.queries for w in self.windows)

    @property
    def busy_windows(self) -> int:
        return sum(1 for w in self.windows if w.queries)

    @property
    def deadline_misses(self) -> int:
        return sum(1 for w in self.windows if w.queries and not w.met_deadline)

    @property
    def worst_window_seconds(self) -> float:
        busy = [w.wall_seconds for w in self.windows if w.queries]
        return max(busy) if busy else 0.0

    @property
    def mean_hit_ratio(self) -> float:
        busy = [w.hit_ratio for w in self.windows if w.queries]
        return sum(busy) / len(busy) if busy else 0.0

    @property
    def mean_utilisation(self) -> float:
        """Mean worker utilisation over measured multiprocess windows."""
        measured = [w.schedule for w in self.windows if w.schedule is not None]
        if not measured:
            return 0.0
        return sum(s.utilisation for s in measured) / len(measured)

    def window_costs(self) -> List[float]:
        """Per-window wall costs — input for the capacity planner."""
        return [w.wall_seconds for w in self.windows if w.queries]


class BatchQueryService:
    """Windowed batch answering over a live road network.

    Parameters
    ----------
    graph:
        The (mutable) road network.
    window_seconds:
        Scheduling window length; also the default latency SLO (a window's
        answers should be ready before the next window closes).
    decomposer / answerer:
        Injected pipeline pieces; defaults to SSE + longest-first Local
        Cache with an LRU-refreshed 512 KiB budget per cache.
    timeline:
        Optional traffic timeline advanced to each window's start time.
    deadline_seconds:
        Latency SLO per window; defaults to ``window_seconds``.
    workers:
        Worker processes per window.  ``1`` (default) keeps the
        single-process dynamic session with cross-window cache reuse;
        ``k > 1`` answers each window through a multiprocess
        :class:`~repro.parallel.ParallelBatchEngine` (worker-local caches,
        re-forked automatically when the timeline bumps the graph
        version).  ``0`` runs the *same* engine path serially in-process —
        identical per-unit cache locality to ``k > 1``, no processes — so
        serial and parallel runs of one workload are directly comparable
        (their metrics counter totals match exactly).  Call :meth:`close`
        (or use the service as a context manager) to release the worker
        pool.
    """

    def __init__(
        self,
        graph,
        window_seconds: float = 1.0,
        decomposer=None,
        answerer: Optional[LocalCacheAnswerer] = None,
        timeline=None,
        deadline_seconds: Optional[float] = None,
        similarity_threshold: float = 0.3,
        workers: int = 1,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if workers < 0:
            raise ConfigurationError("workers must be non-negative")
        self.graph = graph
        self.window_seconds = window_seconds
        self.deadline_seconds = (
            window_seconds if deadline_seconds is None else deadline_seconds
        )
        if self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be positive")
        if decomposer is None:
            decomposer = SearchSpaceDecomposer(graph)
        if answerer is None:
            answerer = LocalCacheAnswerer(
                graph, cache_bytes=512 * 1024, order="longest", eviction="lru"
            )
        self.decomposer = decomposer
        self.workers = workers
        self.session = DynamicBatchSession(
            graph,
            decomposer=decomposer,
            answerer=answerer,
            similarity_threshold=similarity_threshold,
        )
        self._engine = None
        if workers != 1:
            from .parallel import ParallelBatchEngine

            # workers=0 builds a one-worker engine whose units run in the
            # parent process: the same decompose -> unit -> merge path as
            # workers=k, minus the pool.
            self._engine = ParallelBatchEngine.from_answerer(
                answerer, workers=max(1, workers)
            )
        self.timeline = timeline

    def close(self) -> None:
        """Release the worker pool of a multiprocess service (idempotent)."""
        if self._engine is not None:
            self._engine.close()

    def __enter__(self) -> "BatchQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, arrivals: Iterable[TimedQuery]) -> ServiceReport:
        """Consume a whole arrival stream and answer it window by window."""
        report = ServiceReport()
        for index, batch in enumerate(window_batches(arrivals, self.window_seconds)):
            report.windows.append(self._process_window(index, batch))
        registry = get_registry()
        if registry.enabled:
            report.metrics = registry.snapshot()
        return report

    def _process_window(self, index: int, batch: QuerySet) -> WindowReport:
        fired = 0
        if self.timeline is not None:
            target = index * self.window_seconds
            # process_window() may have advanced the clock past the window
            # start already; the timeline is monotone, so only move forward.
            if target > self.timeline.clock:
                fired = self.timeline.advance_to(target)
        if len(batch) == 0:
            return WindowReport(index, 0, None, 0.0, self.deadline_seconds, fired)
        schedule = None
        registry = get_registry()
        start = time.perf_counter()
        with registry.span("window", index=index, queries=len(batch)):
            if self._engine is not None:
                decomposition = self.decomposer.decompose(batch)
                outcome = self._engine.execute(decomposition, method="window-parallel")
                answer = outcome.answer
                schedule = outcome.report.schedule_result()
            else:
                answer = self.session.process_batch(batch)
        wall = time.perf_counter() - start
        if registry.enabled:
            registry.counter("service.windows").add(1)
            registry.histogram("service.window_seconds", TIME_BUCKETS).observe(wall)
            if wall > self.deadline_seconds:
                registry.counter("service.deadline_misses").add(1)
        if wall > self.deadline_seconds:
            logger.warning(
                "window %d missed its %.2fs deadline (%.3fs, %d queries)",
                index,
                self.deadline_seconds,
                wall,
                len(batch),
            )
        return WindowReport(
            index,
            len(batch),
            answer,
            wall,
            self.deadline_seconds,
            fired,
            workers=answer.workers,
            schedule=schedule,
        )

    def process_window(self, batch: QuerySet, at_seconds: Optional[float] = None) -> WindowReport:
        """Answer one externally-formed window (e.g. replayed from a log)."""
        if at_seconds is not None and self.timeline is not None:
            self.timeline.advance_to(at_seconds)
        index = int((at_seconds or 0.0) / self.window_seconds)
        return self._process_window(index, batch)
