"""A batch query-answering service: the deployment-shaped entry point.

Everything the paper proposes, assembled the way a routing backend would
run it:

* queries arrive continuously (any iterable of
  :class:`~repro.queries.arrivals.TimedQuery`), are grouped into fixed
  scheduling windows (Definition 1),
* each window is decomposed and answered through a
  :class:`~repro.core.dynamic.DynamicBatchSession` (cache reuse within a
  traffic epoch, flush on weight changes),
* an optional :class:`~repro.network.timeline.TrafficTimeline` drives the
  snapshots as simulated time advances, and
* per-window latency is tracked against an SLO so operators see at a
  glance whether the current server would keep up.

With ``workers=1`` (the default) the service runs synchronously in one
process and window answering goes through the cache-reusing dynamic
session.  With ``workers=k`` each window is dispatched across ``k``
worker processes by :class:`repro.parallel.ParallelBatchEngine` — one
cluster per indivisible work unit, caches worker-local — and every
:class:`WindowReport` carries the measured
:class:`~repro.analysis.parallel.ScheduleResult` so operators can read
per-window speedup and utilisation next to the latency SLO.
:mod:`repro.analysis.capacity` still sizes the horizontal fleet from the
per-window costs this service records.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence

from .core.dynamic import DynamicBatchSession
from .core.local_cache import LocalCacheAnswerer
from .core.results import BatchAnswer
from .core.search_space import SearchSpaceDecomposer
from .exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    FaultInjectionError,
)
from .obs import (
    MetricsSnapshot,
    TIME_BUCKETS,
    get_registry,
    record_dead_letters,
    record_deadline,
    record_fault,
    record_retry,
)
from .queries.arrivals import TimedQuery, window_batches
from .queries.query import QuerySet
from .resilience import (
    DeadLetterRecord,
    Deadline,
    FaultPlan,
    REASON_DEADLINE_EXCEEDED,
    REASON_INVALID_QUERY,
    REASON_NO_PATH,
    REASON_WINDOW_DEGRADED,
    RetryPolicy,
    STAGE_SESSION,
    STAGE_VALIDATION,
    use_deadline,
)

logger = logging.getLogger(__name__)


@dataclass
class WindowReport:
    """Outcome of one scheduling window."""

    window_index: int
    queries: int
    answer: Optional[BatchAnswer]
    wall_seconds: float
    deadline_seconds: float
    timeline_events: int = 0
    #: Worker processes that answered this window.
    workers: int = 1
    #: Measured :class:`~repro.analysis.parallel.ScheduleResult` of a
    #: multiprocess window (``None`` for single-process windows).
    schedule: Optional[object] = None
    #: Queries this window could not answer (validation failures, no
    #: path, exhausted degradation ladder) — recorded, never dropped.
    dead_letters: List[DeadLetterRecord] = field(default_factory=list)
    #: Work-unit / session re-dispatches spent on this window.
    retries: int = 0
    #: The session path exhausted its retries and the window was answered
    #: by the last-resort per-query Dijkstra rung.
    degraded: bool = False

    @property
    def met_deadline(self) -> bool:
        return self.wall_seconds <= self.deadline_seconds

    @property
    def answered_queries(self) -> int:
        return len(self.answer.answers) if self.answer is not None else 0

    @property
    def hit_ratio(self) -> float:
        return self.answer.hit_ratio if self.answer is not None else 0.0


@dataclass
class ServiceReport:
    """Aggregate over a whole run of the service."""

    windows: List[WindowReport] = field(default_factory=list)
    #: Snapshot of the active metrics registry taken when :meth:`run`
    #: finished (``None`` when no registry was installed).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def total_queries(self) -> int:
        return sum(w.queries for w in self.windows)

    @property
    def busy_windows(self) -> int:
        return sum(1 for w in self.windows if w.queries)

    @property
    def deadline_misses(self) -> int:
        return sum(1 for w in self.windows if w.queries and not w.met_deadline)

    @property
    def worst_window_seconds(self) -> float:
        busy = [w.wall_seconds for w in self.windows if w.queries]
        return max(busy) if busy else 0.0

    @property
    def mean_hit_ratio(self) -> float:
        busy = [w.hit_ratio for w in self.windows if w.queries]
        return sum(busy) / len(busy) if busy else 0.0

    @property
    def mean_utilisation(self) -> float:
        """Mean worker utilisation over measured multiprocess windows."""
        measured = [w.schedule for w in self.windows if w.schedule is not None]
        if not measured:
            return 0.0
        return sum(s.utilisation for s in measured) / len(measured)

    @property
    def dead_letters(self) -> List[DeadLetterRecord]:
        """Every dead letter of the run, in window order."""
        return [d for w in self.windows for d in w.dead_letters]

    @property
    def total_retries(self) -> int:
        return sum(w.retries for w in self.windows)

    @property
    def degraded_windows(self) -> int:
        return sum(1 for w in self.windows if w.degraded)

    @property
    def answered_queries(self) -> int:
        return sum(w.answered_queries for w in self.windows)

    def window_costs(self) -> List[float]:
        """Per-window wall costs — input for the capacity planner."""
        return [w.wall_seconds for w in self.windows if w.queries]


class BatchQueryService:
    """Windowed batch answering over a live road network.

    Parameters
    ----------
    graph:
        The (mutable) road network.
    window_seconds:
        Scheduling window length; also the default latency SLO (a window's
        answers should be ready before the next window closes).
    decomposer / answerer:
        Injected pipeline pieces; defaults to SSE + longest-first Local
        Cache with an LRU-refreshed 512 KiB budget per cache.
    timeline:
        Optional traffic timeline advanced to each window's start time.
    deadline_seconds:
        Latency SLO per window; defaults to ``window_seconds``.
    workers:
        Worker processes per window.  ``1`` (default) keeps the
        single-process dynamic session with cross-window cache reuse;
        ``k > 1`` answers each window through a multiprocess
        :class:`~repro.parallel.ParallelBatchEngine` (worker-local caches,
        re-forked automatically when the timeline bumps the graph
        version).  ``0`` runs the *same* engine path serially in-process —
        identical per-unit cache locality to ``k > 1``, no processes — so
        serial and parallel runs of one workload are directly comparable
        (their metrics counter totals match exactly).  Call :meth:`close`
        (or use the service as a context manager) to release the worker
        pool.
    retry_policy:
        Bounded-attempt :class:`~repro.resilience.RetryPolicy` applied to
        failed work units (engine path) and transient session failures
        (serial path).
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` injecting
        deterministic failures into the engine and the dynamic session
        for chaos testing.
    unit_timeout:
        Per-attempt deadline (seconds) on each multiprocess work unit.
    breaker:
        :class:`~repro.resilience.CircuitBreaker` guarding the engine's
        pool path.
    frozen:
        When true (default) each window re-freezes the graph after the
        timeline advances, so searches run the CSR kernels and worker
        pools share the snapshot zero-copy (fork COW / spawn shared
        memory).  Answers are bit-identical either way.
    start_method:
        Optional ``multiprocessing`` start method for the engine path
        (e.g. ``"spawn"`` to exercise the shared-memory attach on Linux).

    Invalid queries (endpoints outside the network) and queries that
    exhaust the degradation ladder never abort a window: they land in the
    window's ``dead_letters`` with a structured reason.
    """

    def __init__(
        self,
        graph,
        window_seconds: float = 1.0,
        decomposer=None,
        answerer: Optional[LocalCacheAnswerer] = None,
        timeline=None,
        deadline_seconds: Optional[float] = None,
        similarity_threshold: float = 0.3,
        workers: int = 1,
        retry_policy: Optional[RetryPolicy] = None,
        fault_plan: Optional[FaultPlan] = None,
        unit_timeout: Optional[float] = None,
        breaker=None,
        frozen: bool = True,
        start_method: Optional[str] = None,
        watchdog=None,
    ) -> None:
        if window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if workers < 0:
            raise ConfigurationError("workers must be non-negative")
        self.graph = graph
        self.window_seconds = window_seconds
        self.deadline_seconds = (
            window_seconds if deadline_seconds is None else deadline_seconds
        )
        if self.deadline_seconds <= 0:
            raise ConfigurationError("deadline_seconds must be positive")
        if decomposer is None:
            decomposer = SearchSpaceDecomposer(graph)
        if answerer is None:
            answerer = LocalCacheAnswerer(
                graph, cache_bytes=512 * 1024, order="longest", eviction="lru"
            )
        self.decomposer = decomposer
        self.workers = workers
        self.frozen = frozen
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.fault_plan = fault_plan
        self.session = DynamicBatchSession(
            graph,
            decomposer=decomposer,
            answerer=answerer,
            similarity_threshold=similarity_threshold,
            fault_plan=fault_plan,
        )
        self._engine = None
        if workers != 1:
            from .parallel import ParallelBatchEngine

            # workers=0 builds a one-worker engine whose units run in the
            # parent process: the same decompose -> unit -> merge path as
            # workers=k, minus the pool.
            engine_options = dict(
                retry_policy=self.retry_policy,
                fault_plan=fault_plan,
                unit_timeout=unit_timeout,
                shared_graph=frozen,
            )
            if breaker is not None:
                engine_options["breaker"] = breaker
            if start_method is not None:
                engine_options["start_method"] = start_method
            if watchdog is not None:
                engine_options["watchdog"] = watchdog
            self._engine = ParallelBatchEngine.from_answerer(
                answerer, workers=max(1, workers), **engine_options
            )
        self.timeline = timeline

    def close(self) -> None:
        """Release the worker pool of a multiprocess service (idempotent)."""
        if self._engine is not None:
            self._engine.close()

    def warm(self) -> bool:
        """Pre-build the engine's worker pool (no-op on the serial path).

        The streaming front door calls this before opening the first
        window so pool construction is not billed to the first burst.
        """
        if self._engine is not None:
            return self._engine.warm()
        return False

    def __enter__(self) -> "BatchQueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def run(self, arrivals: Iterable[TimedQuery]) -> ServiceReport:
        """Consume a whole arrival stream and answer it window by window."""
        report = ServiceReport()
        for index, batch in enumerate(window_batches(arrivals, self.window_seconds)):
            report.windows.append(self._process_window(index, batch))
        registry = get_registry()
        if registry.enabled:
            report.metrics = registry.snapshot()
        return report

    def _process_window(
        self,
        index: int,
        batch: QuerySet,
        deadline: Optional[Deadline] = None,
    ) -> WindowReport:
        fired = 0
        if self.timeline is not None:
            target = index * self.window_seconds
            # process_window() may have advanced the clock past the window
            # start already; the timeline is monotone, so only move forward.
            if target > self.timeline.clock:
                fired = self.timeline.advance_to(target)
        if self.frozen:
            # Re-freeze after any timeline mutation: cached by version, so
            # quiet windows reuse the previous snapshot for free.
            self.graph.freeze()
        if len(batch) == 0:
            return WindowReport(index, 0, None, 0.0, self.deadline_seconds, fired)
        schedule = None
        registry = get_registry()
        dead_letters: List[DeadLetterRecord] = []
        retries = 0
        degraded = False
        # Malformed queries are stripped at the service boundary so they
        # never surface as a bare KeyError inside a search heap.
        valid, rejected = batch.partition_valid(self.graph)
        for query, reason in rejected:
            dead_letters.append(
                DeadLetterRecord(
                    source=query.source,
                    target=query.target,
                    reason=REASON_INVALID_QUERY,
                    stage=STAGE_VALIDATION,
                    detail=reason,
                )
            )
        start = time.perf_counter()
        with registry.span("window", index=index, queries=len(batch)):
            if len(valid) == 0:
                answer = None
            elif self._engine is not None:
                decomposition = self.decomposer.decompose(valid)
                outcome = self._engine.execute(
                    decomposition, method="window-parallel", deadline=deadline
                )
                answer = outcome.answer
                schedule = outcome.report.schedule_result()
                dead_letters.extend(outcome.report.dead_letters)
                retries = outcome.report.retries
            else:
                answer, retries, degraded = self._answer_with_session(
                    index, valid, dead_letters, deadline
                )
        wall = time.perf_counter() - start
        record_dead_letters(len(dead_letters))
        if registry.enabled:
            registry.counter("service.windows").add(1)
            registry.histogram("service.window_seconds", TIME_BUCKETS).observe(wall)
            if wall > self.deadline_seconds:
                registry.counter("service.deadline_misses").add(1)
            if degraded:
                registry.counter("service.degraded_windows").add(1)
        if wall > self.deadline_seconds:
            logger.warning(
                "window %d missed its %.2fs deadline (%.3fs, %d queries)",
                index,
                self.deadline_seconds,
                wall,
                len(batch),
            )
        return WindowReport(
            index,
            len(batch),
            answer,
            wall,
            self.deadline_seconds,
            fired,
            workers=answer.workers if answer is not None else 1,
            schedule=schedule,
            dead_letters=dead_letters,
            retries=retries,
            degraded=degraded,
        )

    def _answer_with_session(
        self,
        index: int,
        batch: QuerySet,
        dead_letters: List[DeadLetterRecord],
        deadline: Optional[Deadline] = None,
    ):
        """Serial window path: dynamic session under the retry policy.

        Transient session failures are retried with backoff; once the
        budget is exhausted the window degrades to per-query Dijkstra so
        the queries are still answered (at cache-free cost) rather than
        lost.  A :class:`~repro.exceptions.DeadlineExceededError` is never
        retried: the budget is gone, so the whole batch dead-letters with
        reason ``deadline-exceeded``.
        """
        attempt = 1
        while True:
            try:
                with use_deadline(deadline):
                    return (
                        self.session.process_batch(batch, attempt=attempt),
                        attempt - 1,
                        False,
                    )
            except DeadlineExceededError as exc:
                record_deadline(expired=len(batch), preempted=1)
                for q in batch:
                    dead_letters.append(
                        DeadLetterRecord(
                            source=q.source,
                            target=q.target,
                            reason=REASON_DEADLINE_EXCEEDED,
                            stage=STAGE_SESSION,
                            error="DeadlineExceededError",
                            detail=str(exc),
                            attempts=attempt,
                        )
                    )
                return BatchAnswer(method="deadline[session]"), attempt - 1, False
            except Exception as exc:
                if isinstance(exc, FaultInjectionError):
                    record_fault("transient")
                if self.retry_policy.allows_retry(attempt):
                    record_retry()
                    logger.warning(
                        "window %d session attempt %d failed (%s: %s); retrying",
                        index,
                        attempt,
                        type(exc).__name__,
                        exc,
                    )
                    delay = self.retry_policy.delay_seconds(attempt, key=index)
                    if delay > 0:
                        time.sleep(delay)
                    attempt += 1
                    continue
                logger.warning(
                    "window %d session failed %d times (%s: %s); degrading to "
                    "per-query Dijkstra",
                    index,
                    attempt,
                    type(exc).__name__,
                    exc,
                )
                return (
                    self._degraded_window_answer(batch, dead_letters),
                    attempt - 1,
                    True,
                )

    def _degraded_window_answer(
        self, batch: QuerySet, dead_letters: List[DeadLetterRecord]
    ) -> BatchAnswer:
        """Last-resort window answering: each query alone, plain Dijkstra."""
        import math

        from .search.dijkstra import dijkstra

        answer = BatchAnswer(method="degraded[dijkstra]")
        for q in batch:
            try:
                result = dijkstra(self.graph, q.source, q.target)
            except DeadlineExceededError as exc:
                record_deadline(expired=1, preempted=1)
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_DEADLINE_EXCEEDED,
                        stage=STAGE_SESSION,
                        error="DeadlineExceededError",
                        detail=str(exc),
                        attempts=self.retry_policy.max_attempts,
                    )
                )
                continue
            except Exception as exc:
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_WINDOW_DEGRADED,
                        stage=STAGE_SESSION,
                        error=type(exc).__name__,
                        detail=str(exc),
                        attempts=self.retry_policy.max_attempts,
                    )
                )
                continue
            if not math.isfinite(result.distance):
                dead_letters.append(
                    DeadLetterRecord(
                        source=q.source,
                        target=q.target,
                        reason=REASON_NO_PATH,
                        stage=STAGE_SESSION,
                        error="NoPathError",
                        detail=f"no path from {q.source} to {q.target}",
                        attempts=self.retry_policy.max_attempts,
                    )
                )
                continue
            answer.answers.append((q, result))
            answer.visited += result.visited
            answer.singleton_queries += 1
        return answer

    def process_window(
        self,
        batch: QuerySet,
        at_seconds: Optional[float] = None,
        index: Optional[int] = None,
        deadline: Optional[Deadline] = None,
    ) -> WindowReport:
        """Answer one externally-formed window (e.g. replayed from a log).

        ``index`` labels the window explicitly; callers whose windows are
        not grid-aligned (the micro-batch streaming service cuts windows
        anchored at their first query) pass their own running index so
        reports and spans stay in submission order.  ``deadline`` is an
        optional wall-clock budget for the window's batch work,
        propagated into the engine/session and down to the search
        kernels; queries cut off by it dead-letter with reason
        ``deadline-exceeded``.
        """
        if at_seconds is not None and self.timeline is not None:
            self.timeline.advance_to(at_seconds)
        if index is None:
            index = int((at_seconds or 0.0) / self.window_seconds)
        return self._process_window(index, batch, deadline)
