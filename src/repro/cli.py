"""Command-line interface: reproduce any table/figure, or run one batch.

Examples
--------
Reproduce one experiment at benchmark scale::

    python -m repro.cli reproduce --experiment fig7a --scale small

Reproduce everything (writes plain-text artefacts to ``--out``)::

    python -m repro.cli reproduce --experiment all --out results/

Answer one generated batch with a chosen method, saving metrics/spans::

    python -m repro.cli run --method slc-s --size 500 --scale small \
        --metrics-out metrics.json --spans-out spans.jsonl
    python -m repro.cli obs summary metrics.json
    python -m repro.cli obs summary spans.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .analysis import experiments as exp
from .core.batch_runner import METHODS, BatchProcessor

EXPERIMENTS = (
    "fig7a",
    "table1",
    "fig7b",
    "fig7c",
    "fig7d",
    "fig7e",
    "fig7f",
    "table2",
    "fig8",
)


def _parse_sizes(text: Optional[str]) -> Sequence[int]:
    if not text:
        return exp.DEFAULT_SIZES
    try:
        sizes = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid --sizes value {text!r}; expected e.g. 100,300,900")
    if not sizes:
        raise SystemExit("--sizes must name at least one size")
    return sizes


def cmd_reproduce(args: argparse.Namespace) -> int:
    if args.report:
        from .analysis.report import generate_report

        text = generate_report(
            scale=args.scale,
            sizes=_parse_sizes(args.sizes),
            seed=args.seed,
            fig8_size=args.fig8_size,
            num_servers=args.servers,
            path=args.report,
        )
        print(f"report written to {args.report} ({len(text.splitlines())} lines)")
        return 0

    env = exp.build_env(scale=args.scale, seed=args.seed)
    sizes = _parse_sizes(args.sizes)
    wanted = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    results: List[exp.ExperimentResult] = []
    cache_suites = None
    r2r_suites = None
    for name in wanted:
        if name == "fig7a":
            results.append(exp.run_fig7a(env, sizes))
        elif name in ("table1", "fig7b", "fig7c", "fig7d", "fig7e"):
            if cache_suites is None:
                cache_suites = exp.run_cache_suite(env, sizes)
            runner = {
                "table1": exp.run_table1,
                "fig7b": exp.run_fig7b,
                "fig7c": exp.run_fig7c,
                "fig7d": exp.run_fig7d,
                "fig7e": exp.run_fig7e,
            }[name]
            results.append(runner(env, cache_suites))
        elif name in ("fig7f", "table2"):
            if r2r_suites is None:
                r2r_suites = exp.run_r2r_suite(env, sizes)
            runner = {"fig7f": exp.run_fig7f, "table2": exp.run_table2}[name]
            results.append(runner(env, r2r_suites))
        elif name == "fig8":
            results.append(
                exp.run_fig8(
                    env,
                    size=args.fig8_size,
                    num_servers=args.servers,
                    measure_workers=args.measure_workers,
                )
            )
        else:
            raise SystemExit(f"unknown experiment {name!r}; choose from {EXPERIMENTS}")

    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    for result in results:
        print(result.rendered)
        print()
        if out_dir is not None:
            (out_dir / f"{result.experiment}.txt").write_text(
                result.rendered + "\n", encoding="utf-8"
            )
    return 0


def _engine_options(args: argparse.Namespace) -> dict:
    """Resilience knobs shared by ``run`` and ``chaos``."""
    from .resilience import FaultPlan, RetryPolicy

    options: dict = {}
    if getattr(args, "fault_plan", None):
        options["fault_plan"] = FaultPlan.from_file(args.fault_plan)
    if getattr(args, "max_attempts", None):
        options["retry_policy"] = RetryPolicy(max_attempts=args.max_attempts)
    if getattr(args, "unit_timeout", None):
        options["unit_timeout"] = args.unit_timeout
    return options


def _print_resilience(report) -> None:
    from .resilience import render_dead_letters

    print(f"{'retries':>20}: {report.retries}")
    print(f"{'quarantined units':>20}: {report.quarantined_units}")
    if report.faults_injected:
        kinds = ", ".join(
            f"{kind}={count}" for kind, count in sorted(report.faults_by_kind.items())
        )
        print(f"{'faults injected':>20}: {report.faults_injected} ({kinds})")
    if report.dead_letters:
        print(f"{'dead letters':>20}: {len(report.dead_letters)}")
        print(render_dead_letters(report.dead_letters))


def cmd_run(args: argparse.Namespace) -> int:
    from .obs import MetricsRegistry, use_registry, write_metrics_json

    env = exp.build_env(scale=args.scale, seed=args.seed)
    band = env.r2r_band if args.method.startswith("r2r") else env.cache_band
    queries = env.workload.batch(args.size, min_dist=band[0], max_dist=band[1])
    processor = BatchProcessor(
        env.graph,
        eta=args.eta,
        seed=args.seed,
        super_snap_radius=args.snap_radius,
        eviction=args.eviction,
        workers=args.workers,
        engine_options=_engine_options(args),
        frozen=args.frozen,
    )
    registry = MetricsRegistry() if (args.metrics_out or args.spans_out) else None
    if registry is not None:
        with use_registry(registry):
            answer = processor.process(queries, args.method)
    else:
        answer = processor.process(queries, args.method)
    for key, value in answer.summary().items():
        print(f"{key:>20}: {value:.6g}")
    report = answer.execution_report
    if report is not None:
        schedule = report.schedule_result()
        print(f"{'measured speedup':>20}: {schedule.speedup:.6g}")
        print(f"{'utilisation':>20}: {schedule.utilisation:.6g}")
        print(f"{'mean queue wait':>20}: {schedule.mean_queue_wait_seconds:.6g}")
        print(f"{'fallback units':>20}: {report.fallbacks}")
        _print_resilience(report)
    if registry is not None:
        import json

        snapshot = registry.snapshot()
        if args.metrics_out:
            write_metrics_json(snapshot, args.metrics_out)
            print(f"metrics written to {args.metrics_out}")
        if args.spans_out:
            with open(args.spans_out, "w", encoding="utf-8") as fh:
                for span in snapshot.spans:
                    fh.write(json.dumps(span, sort_keys=True) + "\n")
            print(f"spans written to {args.spans_out}")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Render a saved metrics JSON or span JSONL file as text tables."""
    import json

    from .obs import read_jsonl, render_metrics_summary, render_stage_table

    path = Path(args.file)
    if not path.exists():
        raise SystemExit(f"no such file: {path}")
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        data = None
    if isinstance(data, dict) and (
        "counters" in data or "gauges" in data or "histograms" in data
    ):
        print(render_metrics_summary(data))
    else:
        # Span JSONL (one object per line) — fall back to the stage table.
        print(render_stage_table(read_jsonl(path)))
    return 0


def cmd_dynamic(args: argparse.Namespace) -> int:
    """Run the dynamic-traffic scenario: epochs, cache reuse, flushes."""
    import random

    from .core.dynamic import DynamicBatchSession
    from .core.local_cache import LocalCacheAnswerer
    from .core.search_space import SearchSpaceDecomposer

    env = exp.build_env(scale=args.scale, seed=args.seed)
    graph = env.graph.copy()  # weights will be mutated
    session = DynamicBatchSession(
        graph,
        decomposer=SearchSpaceDecomposer(graph),
        answerer=LocalCacheAnswerer(graph, cache_bytes=args.cache_kb * 1024),
        similarity_threshold=args.similarity,
    )
    rng = random.Random(args.seed)
    workload = env.fresh_workload(707)
    print(f"{'batch':>5} {'epoch':>5} {'time(s)':>8} {'hit':>6} {'caches':>6} {'reused':>6}")
    epoch = 1
    for i in range(1, args.batches + 1):
        if args.epoch_every and i > 1 and (i - 1) % args.epoch_every == 0:
            edges = list(graph.edges())
            for u, v, w in rng.sample(edges, max(1, len(edges) // 10)):
                graph.set_weight(u, v, w * rng.uniform(1.2, 2.5))
            epoch += 1
        batch = workload.batch(args.size)
        answer = session.process_batch(batch)
        print(
            f"{i:>5} {epoch:>5} {answer.total_seconds:>8.4f} "
            f"{answer.hit_ratio:>6.3f} {session.live_cache_count:>6} "
            f"{session.caches_reused:>6}"
        )
    print(
        f"created={session.caches_created} reused={session.caches_reused} "
        f"flushed_epochs={session.epochs_flushed}"
    )
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """End-to-end chaos drill: the windowed service under a seeded fault plan.

    Runs the same arrival stream twice — a fault-free serial baseline and
    a faulted run with ``--workers`` processes — and enforces the chaos
    invariant: every valid query answered with a distance identical to the
    baseline, every malformed query dead-lettered with a reason, zero
    queries dropped.  Exit status 1 on any violation, so CI can gate on it.
    """
    import math
    import random

    from .obs import MetricsRegistry, use_registry
    from .queries.arrivals import TimedQuery
    from .queries.query import Query
    from .resilience import (
        FaultPlan,
        REASON_INVALID_QUERY,
        RetryPolicy,
        default_chaos_plan,
        summarize_dead_letters,
    )
    from .service import BatchQueryService

    env = exp.build_env(scale=args.scale, seed=args.seed)
    graph = env.graph
    queries = list(env.workload.batch(args.size, *env.cache_band))
    n = graph.num_vertices
    bad = [Query(n + i, i % n) for i in range(args.bad_queries)]
    stream = queries + bad
    random.Random(args.seed).shuffle(stream)
    span = args.windows * args.window_seconds
    dt = span / (len(stream) + 1)
    arrivals = [TimedQuery(i * dt, q) for i, q in enumerate(stream)]

    if args.fault_plan:
        plan = FaultPlan.from_file(args.fault_plan)
    else:
        plan = default_chaos_plan(seed=args.seed)
    policy = RetryPolicy(max_attempts=args.max_attempts)

    # Fault-free serial baseline (workers=0 = the engine path in-process).
    with BatchQueryService(
        graph, window_seconds=args.window_seconds, workers=0, frozen=args.frozen
    ) as baseline_service:
        baseline = baseline_service.run(arrivals)

    registry = MetricsRegistry()
    with use_registry(registry):
        with BatchQueryService(
            graph,
            window_seconds=args.window_seconds,
            workers=args.workers,
            fault_plan=plan,
            retry_policy=policy,
            unit_timeout=args.unit_timeout,
            frozen=args.frozen,
            start_method=args.start_method,
        ) as chaos_service:
            chaos = chaos_service.run(arrivals)

    def answer_key(report):
        return sorted(
            (q.source, q.target, round(r.distance, 9))
            for w in report.windows
            if w.answer is not None
            for q, r in w.answer.answers
        )

    failures = []
    base_key = answer_key(baseline)
    chaos_key = answer_key(chaos)
    if base_key != chaos_key:
        missing = len(set(base_key) - set(chaos_key))
        extra = len(set(chaos_key) - set(base_key))
        failures.append(
            f"answers diverge from the fault-free baseline "
            f"({missing} missing, {extra} unexpected/changed)"
        )
    invalid_letters = [
        d for d in chaos.dead_letters if d.reason == REASON_INVALID_QUERY
    ]
    if len(invalid_letters) != len(bad):
        failures.append(
            f"expected {len(bad)} invalid-query dead letters, got "
            f"{len(invalid_letters)}"
        )
    accounted = chaos.answered_queries + len(chaos.dead_letters)
    if accounted != len(stream):
        failures.append(
            f"{len(stream)} queries in, {accounted} accounted for "
            f"(answered + dead-lettered): queries were dropped"
        )

    snap = registry.snapshot()
    resilience_counts = {
        k: v for k, v in sorted(snap.counters.items()) if k.startswith("resilience.")
    }
    print(f"queries       : {len(stream)} ({len(bad)} malformed)")
    print(f"windows       : {chaos.busy_windows} busy / {len(chaos.windows)}")
    print(f"answered      : {chaos.answered_queries}")
    print(f"dead letters  : {len(chaos.dead_letters)} "
          f"{summarize_dead_letters(chaos.dead_letters)}")
    print(f"retries       : {chaos.total_retries}")
    print(f"degraded wins : {chaos.degraded_windows}")
    for name, value in resilience_counts.items():
        print(f"  {name:<40} {value:g}")
    if not math.isclose(
        sum(1 for _ in baseline.dead_letters if _.reason == REASON_INVALID_QUERY),
        len(bad),
    ):
        failures.append("baseline did not dead-letter the malformed queries")
    if failures:
        for failure in failures:
            print(f"CHAOS FAILED: {failure}")
        return 1
    print("CHAOS OK: every valid query answered identically to the "
          "fault-free baseline; malformed queries dead-lettered")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the online streaming service over a generated arrival stream.

    Generates a Poisson query stream at ``--rate`` qps for ``--duration``
    seconds, then serves it through :class:`~repro.streaming.
    StreamingQueryService`: micro-batch windows cut at ``--window-ms`` or
    ``--max-batch``, admission control with the chosen shedding policy,
    cross-window path caching, and the parallel backend at ``--workers``.
    Exit status 1 if any query goes unaccounted (answered nor
    dead-lettered), or — with ``--fail-on-drop`` — if any query was shed
    without an answer; CI gates its smoke run on that.

    Robustness knobs: ``--deadline-ms`` arms a per-query end-to-end
    budget; ``--journal`` write-aheads every arrival so ``--recover``
    can replay what a killed run still owed; SIGTERM/SIGINT (or
    ``--drain-after``) drain gracefully — stop admitting, flush the open
    window, answer everything in flight; ``--watchdog-timeout`` arms the
    hung-worker watchdog on the pool backend.
    """
    import signal

    from .obs import MetricsRegistry, use_registry, write_metrics_json
    from .queries.arrivals import PoissonArrivals, stream_statistics
    from .streaming import ArrivalJournal, StreamingQueryService

    if args.recover and not args.journal:
        raise SystemExit("--recover requires --journal")

    env = exp.build_env(scale=args.scale, seed=args.seed)
    graph = env.graph.copy() if args.epoch_every else env.graph

    journal = None
    recovered_pending = 0
    if args.journal:
        journal = ArrivalJournal(args.journal)
        recovered_pending = len(journal.pending_arrivals())

    if args.recover:
        arrivals = journal.pending_arrivals()
        if not arrivals:
            print(f"RECOVER OK: journal {args.journal} has no pending "
                  "arrivals")
            journal.close()
            return 0
    else:
        band = env.cache_band
        arrivals = PoissonArrivals(
            env.workload, rate=args.rate, seed=args.seed,
            min_dist=band[0], max_dist=band[1],
        ).duration(args.duration)

    timeline = None
    if args.epoch_every:
        from .network.timeline import TrafficTimeline, congestion_snapshot

        timeline = TrafficTimeline(graph, seed=args.seed)
        t = args.epoch_every
        while t < args.duration:
            timeline.schedule(t, congestion_snapshot(), label=f"epoch@{t:g}s")
            t += args.epoch_every

    backend_options = {}
    if args.fault_plan:
        from .resilience import FaultPlan

        backend_options["fault_plan"] = FaultPlan.from_file(args.fault_plan)
    if args.watchdog_timeout > 0:
        from .resilience import WorkerWatchdog

        backend_options["watchdog"] = WorkerWatchdog(
            hang_timeout=args.watchdog_timeout
        )

    registry = MetricsRegistry()
    try:
        with use_registry(registry):
            with StreamingQueryService(
                graph,
                window_seconds=args.window_ms / 1000.0,
                max_batch=args.max_batch if args.max_batch > 0 else None,
                queue_capacity=args.queue_capacity,
                shed_policy=args.shed_policy,
                workers=args.workers,
                clock=args.clock,
                timeline=timeline,
                index=args.index,
                stream_cache_bytes=args.cache_kb * 1024,
                service_seconds_per_query=args.service_cost,
                query_deadline_seconds=(
                    args.deadline_ms / 1000.0 if args.deadline_ms > 0 else None
                ),
                journal=journal,
                drain_after_seconds=(
                    args.drain_after if args.drain_after > 0 else None
                ),
                **backend_options,
            ) as service:
                # Graceful drain on SIGTERM/SIGINT: flip the flag, let the
                # run loop flush the open window and answer what it owes.
                def _drain_signal(signum, frame):
                    print(f"signal {signum}: draining (stop admitting, "
                          "flush open window)...", flush=True)
                    service.request_drain()

                previous = {}
                for sig in (signal.SIGTERM, signal.SIGINT):
                    try:
                        previous[sig] = signal.signal(sig, _drain_signal)
                    except ValueError:  # pragma: no cover - non-main thread
                        pass
                try:
                    report = service.run(arrivals)
                finally:
                    for sig, handler in previous.items():
                        signal.signal(sig, handler)
    finally:
        if journal is not None:
            journal.close()

    stats = stream_statistics(arrivals)
    print(f"stream        : {stats['count']} queries over "
          f"{stats['duration']:.2f}s (rate {stats['rate']:.1f} qps, "
          f"cv {stats['cv']:.2f})")
    print(f"clock         : {args.clock}")
    triggers = ", ".join(
        f"{k}={v}" for k, v in sorted(report.windows_by_trigger.items())
    )
    print(f"windows       : {len(report.windows)} ({triggers or 'none'}), "
          f"mean size {report.mean_window_size:.1f}")
    print(f"answered      : {report.answered_queries}")
    print(f"shed          : {report.shed_degraded} degraded, "
          f"{report.shed_dropped} dropped "
          f"({report.backpressure_stalls} backpressure stalls)")
    print(f"dead letters  : {len(report.dead_letters)}")
    if args.deadline_ms > 0:
        print(f"deadline      : {args.deadline_ms:g} ms budget, "
              f"{report.deadline_expired} expired, "
              f"{report.deadline_degraded} degraded to Dijkstra")
    if report.drained:
        suffix = " (still pending in the journal)" if args.journal else ""
        print(f"drained       : {report.unadmitted_arrivals} undue arrivals "
              f"abandoned{suffix}")
    if args.journal:
        mode = "recover" if args.recover else "journal"
        print(f"{mode:<14}: {args.journal} "
              f"({report.replayed_arrivals} replayed, "
              f"{recovered_pending} pending at open)")
    print(f"stream cache  : {report.stream_cache_hits} hits / "
          f"{report.stream_cache_misses} misses / "
          f"{report.stream_cache_invalidations} invalidations")
    if args.index != "none":
        print(f"index         : {args.index} "
              f"({report.index_served_windows} windows served, "
              f"{report.index_customizations} re-customizations)")
    print(f"latency       : p50 {report.p50_latency * 1000:.1f} ms, "
          f"p99 {report.p99_latency * 1000:.1f} ms")
    print(f"throughput    : {report.qps:.1f} answered qps over "
          f"{report.wall_seconds:.2f}s")
    if report.metrics is not None and args.metrics_out:
        write_metrics_json(report.metrics, args.metrics_out)
        print(f"metrics written to {args.metrics_out}")

    if report.unaccounted_queries:
        print(f"SERVE FAILED: {report.unaccounted_queries} queries "
              "unaccounted (neither answered nor dead-lettered)")
        return 1
    if args.fail_on_drop and report.dropped_queries:
        print(f"SERVE FAILED: {report.dropped_queries} queries dropped "
              "(--fail-on-drop)")
        return 1
    print("SERVE OK: every query answered or dead-lettered")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    """Cross-validate the stack on this machine: exactness + error bounds."""
    import math

    from .core.batch_runner import BatchProcessor
    from .search.dijkstra import dijkstra

    env = exp.build_env(scale=args.scale, seed=args.seed)
    processor = BatchProcessor(env.graph, eta=args.eta, seed=args.seed)
    failures = 0

    batch = env.fresh_workload(606).batch(args.size, *env.cache_band)
    oracle = {
        q: dijkstra(env.graph, q.source, q.target).distance
        for q in batch.deduplicated()
    }
    for method in ("astar", "gc", "zlc", "slc-s", "slc-r", "zigzag-petal"):
        answer = processor.process(batch, method)
        bad = sum(
            1
            for q, r in answer.answers
            if not math.isclose(r.distance, oracle[q], rel_tol=1e-9)
        )
        failures += bad
        print(f"  exact    {method:<13} {len(answer.answers):>5} answers, "
              f"{bad} mismatches")

    long_batch = env.fresh_workload(607).batch(args.size, *env.r2r_band)
    long_oracle = {
        q: dijkstra(env.graph, q.source, q.target).distance
        for q in long_batch.deduplicated()
    }
    for method in ("r2r-s", "r2r-r"):
        answer = processor.process(long_batch, method)
        bad = sum(
            1
            for q, r in answer.answers
            if r.distance > long_oracle[q] * (1 + args.eta) + 1e-9
            or r.distance < long_oracle[q] - 1e-9
        )
        failures += bad
        print(f"  bounded  {method:<13} {len(answer.answers):>5} answers, "
              f"{bad} bound violations (eta={args.eta})")

    if failures:
        print(f"VERIFY FAILED: {failures} violations")
        return 1
    print("VERIFY OK: every method exact or within its bound")
    return 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Run registered benchmark suites, writing schema'd JSON per label."""
    from .bench import BenchConfigError, run_suites
    from .exceptions import ConfigurationError

    sizes = None
    if args.sizes:
        sizes = _parse_sizes(args.sizes)
    try:
        results = run_suites(
            args.suite,
            args.label,
            args.results_dir,
            scale=args.scale,
            sizes=sizes,
            seed=args.seed,
            repeat=args.repeat,
            on_progress=lambda line: print(line, flush=True),
        )
    except BenchConfigError as err:
        raise SystemExit(f"bench run failed: {err}")
    except ConfigurationError as err:
        raise SystemExit(str(err))
    total = sum(len(result.metrics) for result, _ in results)
    print(f"{len(results)} suite(s), {total} metrics recorded under "
          f"label {args.label!r}")
    return 0


def cmd_bench_compare(args: argparse.Namespace) -> int:
    """Compare two labels; exit 1 on regressions or schema issues."""
    import json

    from .bench import SchemaError, compare_labels, render_markdown, verdict_payload

    try:
        report = compare_labels(
            args.results_dir,
            args.base,
            args.candidate,
            noise_threshold_pct=args.noise_threshold,
        )
    except SchemaError as err:
        raise SystemExit(f"bench compare failed: {err}")
    markdown = render_markdown(report, include_within_noise=args.all)
    print(markdown)
    if args.markdown_out:
        Path(args.markdown_out).write_text(markdown + "\n", encoding="utf-8")
        print(f"\nmarkdown written to {args.markdown_out}")
    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(verdict_payload(report), indent=1) + "\n",
            encoding="utf-8",
        )
        print(f"verdict written to {args.json_out}")
    return report.exit_code


def cmd_bench_list(args: argparse.Namespace) -> int:
    """List registered benchmark suites."""
    from .bench import all_suites

    for entry in all_suites():
        print(f"{entry.name:<14} scale={entry.default_scale:<8} "
              f"{entry.description}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    env = exp.build_env(scale=args.scale, seed=args.seed)
    graph = env.graph
    min_x, min_y, max_x, max_y = graph.extent()
    print(f"scale         : {args.scale}")
    print(f"vertices      : {graph.num_vertices}")
    print(f"edges         : {graph.num_edges}")
    print(f"extent (km)   : {max_x - min_x:.1f} x {max_y - min_y:.1f}")
    print(f"cache band    : {env.cache_band[0]:.1f} - {env.cache_band[1]:.1f} km")
    print(f"r2r band      : {env.r2r_band[0]:.1f} - {env.r2r_band[1]:.1f} km")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Batch shortest-path query decomposition (ICDE 2020 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--scale", default="small", help="network scale preset")
    common.add_argument("--seed", type=int, default=7, help="deterministic seed")

    p_rep = sub.add_parser("reproduce", parents=[common], help="regenerate a table/figure")
    p_rep.add_argument(
        "--experiment", default="all", help=f"one of {EXPERIMENTS} or 'all'"
    )
    p_rep.add_argument("--sizes", default=None, help="comma-separated batch sizes")
    p_rep.add_argument("--out", default=None, help="directory for text artefacts")
    p_rep.add_argument("--servers", type=int, default=40, help="fig8 server count")
    p_rep.add_argument("--fig8-size", type=int, default=600, help="fig8 batch size")
    p_rep.add_argument(
        "--measure-workers",
        type=int,
        default=None,
        help="fig8: also run the slc-s dispatch on this many real worker "
        "processes and report the measured makespan next to the LPT "
        "prediction",
    )
    p_rep.add_argument(
        "--report", default=None, help="write a one-shot markdown report to this path"
    )
    p_rep.set_defaults(func=cmd_reproduce)

    p_run = sub.add_parser("run", parents=[common], help="answer one generated batch")
    p_run.add_argument("--method", required=True, choices=METHODS)
    p_run.add_argument("--size", type=int, default=500)
    p_run.add_argument("--eta", type=float, default=0.05)
    p_run.add_argument("--snap-radius", type=float, default=0.0,
                       help="super-vertex snap radius (km); 0 = exact")
    p_run.add_argument("--eviction", default="none",
                       choices=["none", "lru", "benefit"],
                       help="local-cache eviction policy")
    p_run.add_argument("--workers", type=int, default=1,
                       help="worker processes for zlc/slc-s/r2r-s "
                       "(1 = single-process)")
    p_run.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the run's metrics snapshot as JSON")
    p_run.add_argument("--spans-out", default=None, metavar="FILE",
                       help="write the run's span records as JSONL")
    p_run.add_argument("--fault-plan", default=None, metavar="FILE",
                       help="JSON fault plan to inject into the engine "
                       "(see docs/robustness.md)")
    p_run.add_argument("--max-attempts", type=int, default=None,
                       help="retry budget per work unit (default 2)")
    p_run.add_argument("--unit-timeout", type=float, default=None,
                       help="per-attempt deadline (seconds) on each work unit")
    p_run.add_argument("--frozen", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="freeze the graph to the CSR kernels "
                       "(--no-frozen forces the dict-graph paths)")
    p_run.set_defaults(func=cmd_run)

    p_chaos = sub.add_parser(
        "chaos", parents=[common],
        help="fault-injected end-to-end drill of the windowed service",
    )
    p_chaos.add_argument("--size", type=int, default=120, help="valid queries")
    p_chaos.add_argument("--bad-queries", type=int, default=3,
                         help="malformed queries mixed into the stream")
    p_chaos.add_argument("--workers", type=int, default=2,
                         help="worker processes for the faulted run "
                         "(1 = serial session path)")
    p_chaos.add_argument("--windows", type=int, default=4,
                         help="scheduling windows the stream spans")
    p_chaos.add_argument("--window-seconds", type=float, default=0.5)
    p_chaos.add_argument("--fault-plan", default=None, metavar="FILE",
                         help="JSON fault plan (default: built-in chaos mix)")
    p_chaos.add_argument("--max-attempts", type=int, default=3)
    p_chaos.add_argument("--unit-timeout", type=float, default=None)
    p_chaos.add_argument("--frozen", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="freeze the graph to the CSR kernels "
                         "(--no-frozen forces the dict-graph paths)")
    p_chaos.add_argument("--start-method", default=None,
                         choices=["fork", "spawn", "forkserver"],
                         help="multiprocessing start method for the faulted "
                         "run (spawn exercises the shared-memory attach)")
    p_chaos.set_defaults(func=cmd_chaos)

    p_dyn = sub.add_parser(
        "dynamic", parents=[common], help="dynamic-traffic cache reuse scenario"
    )
    p_dyn.add_argument("--batches", type=int, default=6)
    p_dyn.add_argument("--size", type=int, default=200)
    p_dyn.add_argument("--epoch-every", type=int, default=3, help="weight change period")
    p_dyn.add_argument("--cache-kb", type=int, default=512)
    p_dyn.add_argument("--similarity", type=float, default=0.3)
    p_dyn.set_defaults(func=cmd_dynamic)

    p_srv = sub.add_parser(
        "serve", parents=[common],
        help="online streaming service over a Poisson arrival stream",
    )
    p_srv.add_argument("--duration", type=float, default=5.0,
                       help="stream length in seconds")
    p_srv.add_argument("--rate", type=float, default=200.0,
                       help="Poisson arrival rate (queries/second)")
    p_srv.add_argument("--window-ms", type=float, default=250.0,
                       help="duration trigger: max window span (milliseconds)")
    p_srv.add_argument("--max-batch", type=int, default=64,
                       help="size trigger: max queries per window "
                       "(0 = timer only)")
    p_srv.add_argument("--workers", type=int, default=0,
                       help="backend worker processes (0 = serial engine, "
                       "1 = dynamic session)")
    p_srv.add_argument("--clock", default="simulated",
                       choices=["simulated", "real"],
                       help="simulated = deterministic replay, "
                       "real = wall-clock pacing")
    p_srv.add_argument("--queue-capacity", type=int, default=1024,
                       help="admission queue bound before shedding")
    p_srv.add_argument("--shed-policy", default="degrade",
                       choices=["degrade", "degrade-then-drop", "drop"],
                       help="what happens to queries shed at admission")
    p_srv.add_argument("--cache-kb", type=int, default=2048,
                       help="cross-window path cache budget (KiB, 0 = off)")
    p_srv.add_argument("--service-cost", type=float, default=0.0,
                       help="simulated seconds charged per dispatched query "
                       "(simulated clock only; creates reproducible overload)")
    p_srv.add_argument("--epoch-every", type=float, default=0.0,
                       help="schedule a congestion weight epoch every N "
                       "stream seconds (0 = static weights)")
    p_srv.add_argument("--index", default="none", choices=["none", "cch"],
                       help="answer cache misses from a customizable "
                       "contraction hierarchy that re-customizes on every "
                       "weight epoch (cch) instead of the batch backend")
    p_srv.add_argument("--metrics-out", default=None, metavar="FILE",
                       help="write the run's metrics snapshot as JSON")
    p_srv.add_argument("--fail-on-drop", action="store_true",
                       help="exit 1 if any query was shed without an answer "
                       "(unaccounted queries always exit 1)")
    p_srv.add_argument("--deadline-ms", type=float, default=0.0,
                       help="per-query end-to-end budget in milliseconds "
                       "(0 = no deadline); expired queries dead-letter "
                       "with reason deadline-exceeded")
    p_srv.add_argument("--journal", default=None, metavar="FILE",
                       help="append-only arrivals journal (crash-safe WAL); "
                       "reopening an existing file resumes its sequence")
    p_srv.add_argument("--recover", action="store_true",
                       help="replay the journal's unanswered arrivals "
                       "instead of generating a stream (requires --journal)")
    p_srv.add_argument("--drain-after", type=float, default=0.0,
                       help="request a graceful drain at this stream instant "
                       "(seconds; 0 = run to completion) — the deterministic "
                       "equivalent of SIGTERM")
    p_srv.add_argument("--watchdog-timeout", type=float, default=0.0,
                       help="hung-worker watchdog threshold in seconds "
                       "(0 = off; pool backend only)")
    p_srv.add_argument("--fault-plan", default=None, metavar="FILE",
                       help="JSON fault plan (supports the 'stream' site: "
                       "hard-kill after a window, for recovery drills)")
    p_srv.set_defaults(func=cmd_serve)

    p_ver = sub.add_parser(
        "verify", parents=[common], help="cross-validate exactness and bounds"
    )
    p_ver.add_argument("--size", type=int, default=120)
    p_ver.add_argument("--eta", type=float, default=0.05)
    p_ver.set_defaults(func=cmd_verify)

    p_obs = sub.add_parser("obs", help="observability artefact tools")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_sum = obs_sub.add_parser(
        "summary", help="render a metrics JSON or span JSONL file as tables"
    )
    p_obs_sum.add_argument("file", help="metrics .json or spans .jsonl path")
    p_obs_sum.set_defaults(func=cmd_obs)

    p_bench = sub.add_parser("bench", help="unified benchmark harness")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_bench_run = bench_sub.add_parser(
        "run", help="run registered suites, recording schema'd JSON per label"
    )
    p_bench_run.add_argument(
        "--suite", action="append", required=True, metavar="NAME",
        help="suite to run (repeatable; 'all' runs every registered suite; "
        "see `repro bench list`)",
    )
    p_bench_run.add_argument(
        "--label", required=True,
        help="label this run records under (results/<label>/<suite>.json)",
    )
    p_bench_run.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="results root (default benchmarks/results)",
    )
    p_bench_run.add_argument(
        "--scale", default=None,
        help="network scale override (default: REPRO_BENCH_SCALE or the "
        "suite's own default)",
    )
    p_bench_run.add_argument(
        "--sizes", default=None,
        help="comma-separated batch sizes for the figure suites",
    )
    p_bench_run.add_argument("--seed", type=int, default=7)
    p_bench_run.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run each suite N times (median-of-N comparison; extra runs "
        "write <suite>.run<k>.json siblings)",
    )
    p_bench_run.set_defaults(func=cmd_bench_run)

    p_bench_cmp = bench_sub.add_parser(
        "compare",
        help="compare two labels: markdown table + machine verdict, "
        "exit 1 on regressions",
    )
    p_bench_cmp.add_argument("base", help="baseline label")
    p_bench_cmp.add_argument("candidate", help="candidate label")
    p_bench_cmp.add_argument(
        "--noise-threshold", type=float, default=5.0, metavar="PCT",
        help="relative noise threshold in percent (default 5; per-metric "
        "tolerances widen it)",
    )
    p_bench_cmp.add_argument(
        "--results-dir", default="benchmarks/results", metavar="DIR",
        help="results root (default benchmarks/results)",
    )
    p_bench_cmp.add_argument(
        "--all", action="store_true",
        help="include within-noise rows in the detail table",
    )
    p_bench_cmp.add_argument(
        "--markdown-out", default=None, metavar="FILE",
        help="also write the markdown report to this path",
    )
    p_bench_cmp.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write the machine-readable verdict JSON to this path",
    )
    p_bench_cmp.set_defaults(func=cmd_bench_compare)

    p_bench_list = bench_sub.add_parser("list", help="list registered suites")
    p_bench_list.set_defaults(func=cmd_bench_list)

    p_info = sub.add_parser("info", parents=[common], help="describe the environment")
    p_info.set_defaults(func=cmd_info)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
