"""repro — batch shortest-path processing in road networks.

A complete reproduction of *Fast Query Decomposition for Batch Shortest
Path Processing in Road Networks* (Li, Zhang, Hua, Zhou — ICDE 2020):
three query-decomposition methods (Zigzag, Search-Space Estimation,
Coherence-Aware Co-Clustering), two batch answering algorithms (Local
Cache, error-bounded Region-to-Region), every baseline the paper compares
against, and the full experiment harness for its tables and figures.

Quickstart::

    from repro import beijing_like, WorkloadGenerator, BatchProcessor

    graph = beijing_like("small")
    batch = WorkloadGenerator(graph).batch(200)
    report = BatchProcessor(graph).process(batch, method="slc-s")
    print(report.summary())
"""

from .baselines import (
    GlobalCacheAnswerer,
    GroupAnswerer,
    KPathAnswerer,
    OneByOneAnswerer,
    ZigzagPetalAnswerer,
)
from .core import (
    BatchAnswer,
    BatchProcessor,
    CoClusteringDecomposer,
    Decomposition,
    DynamicBatchSession,
    LocalCacheAnswerer,
    METHODS,
    PathCache,
    QueryCluster,
    RegionToRegionAnswerer,
    SearchSpaceDecomposer,
    SearchSpaceOracle,
    ZigzagDecomposer,
)
from .exceptions import (
    CacheError,
    ConfigurationError,
    DecompositionError,
    GraphError,
    IndexConstructionError,
    NoPathError,
    QueryError,
    ReproError,
    StaleIndexError,
)
from .index import (
    ArcFlags,
    ContractionHierarchy,
    CustomizableContractionHierarchy,
    GeometricContainers,
    PrunedLandmarkLabeling,
)
from .obs import (
    MetricsRegistry,
    MetricsSnapshot,
    NullRegistry,
    SpanTracer,
    get_registry,
    set_registry,
    to_prometheus_text,
    use_registry,
)
from .network import (
    GridIndex,
    RoadNetwork,
    SuperVertexMap,
    TrafficTimeline,
    beijing_like,
    grid_city,
    random_geometric_city,
    ring_radial_city,
)
from .queries import (
    Hotspot,
    PoissonArrivals,
    Query,
    QuerySet,
    TrajectorySimulator,
    WorkloadGenerator,
    profile_workload,
    queries_from_trips,
    window_batches,
)
from .parallel import ExecutionReport, ParallelBatchEngine, ParallelOutcome
from .service import BatchQueryService, ServiceReport, WindowReport
from .streaming import (
    AdmissionController,
    MicroBatcher,
    MicroWindow,
    MonotonicClock,
    SimulatedClock,
    StreamReport,
    StreamingQueryService,
    assemble_micro_batches,
    make_clock,
)
from .search import (
    LandmarkIndex,
    PathResult,
    a_star,
    bidirectional_dijkstra,
    dijkstra,
    generalized_a_star,
)

__version__ = "1.0.0"

__all__ = [
    "ArcFlags",
    "BatchAnswer",
    "BatchProcessor",
    "BatchQueryService",
    "CacheError",
    "CoClusteringDecomposer",
    "ConfigurationError",
    "ContractionHierarchy",
    "CustomizableContractionHierarchy",
    "Decomposition",
    "DecompositionError",
    "DynamicBatchSession",
    "GeometricContainers",
    "GlobalCacheAnswerer",
    "GraphError",
    "GridIndex",
    "GroupAnswerer",
    "Hotspot",
    "IndexConstructionError",
    "KPathAnswerer",
    "LandmarkIndex",
    "LocalCacheAnswerer",
    "METHODS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NoPathError",
    "NullRegistry",
    "OneByOneAnswerer",
    "PathCache",
    "PoissonArrivals",
    "PathResult",
    "ExecutionReport",
    "ParallelBatchEngine",
    "ParallelOutcome",
    "PrunedLandmarkLabeling",
    "Query",
    "QueryCluster",
    "QueryError",
    "QuerySet",
    "RegionToRegionAnswerer",
    "ReproError",
    "RoadNetwork",
    "StaleIndexError",
    "AdmissionController",
    "MicroBatcher",
    "MicroWindow",
    "MonotonicClock",
    "SimulatedClock",
    "StreamReport",
    "StreamingQueryService",
    "assemble_micro_batches",
    "make_clock",
    "SearchSpaceDecomposer",
    "SearchSpaceOracle",
    "ServiceReport",
    "SpanTracer",
    "SuperVertexMap",
    "TrafficTimeline",
    "TrajectorySimulator",
    "WindowReport",
    "WorkloadGenerator",
    "ZigzagDecomposer",
    "ZigzagPetalAnswerer",
    "a_star",
    "beijing_like",
    "bidirectional_dijkstra",
    "dijkstra",
    "generalized_a_star",
    "get_registry",
    "profile_workload",
    "queries_from_trips",
    "grid_city",
    "random_geometric_city",
    "ring_radial_city",
    "set_registry",
    "to_prometheus_text",
    "use_registry",
    "window_batches",
    "__version__",
]
