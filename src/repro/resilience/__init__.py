"""Resilience layer: fault injection, retries, circuit breaking, dead letters.

The batch pipeline's failure story lives here, in four pieces the engine
and service thread together:

* :class:`FaultPlan` — a deterministic, seeded fault-injection harness
  (unit crashes, hangs, hard worker exits, pool-construction breaks,
  transient session failures), so every failure mode is reproducible in
  tests and from the CLI (``repro run --fault-plan``).
* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic jitter; replaces the engine's old one-shot parent
  fallback.
* :class:`CircuitBreaker` — trips the engine to serial in-process
  execution after repeated pool failures, with cooldown and a half-open
  probe.
* :class:`DeadLetterRecord` — the structured record a query that failed
  validation (or exhausted the degradation ladder) leaves behind instead
  of aborting its window.

See ``docs/robustness.md`` for the operator-facing walkthrough.
"""

from .breaker import BREAKER_STATE_VALUES, CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .deadletter import (
    DeadLetterRecord,
    REASON_DEADLINE_EXCEEDED,
    REASON_INVALID_QUERY,
    REASON_NO_PATH,
    REASON_QUARANTINE_FAILED,
    REASON_SHED,
    REASON_WINDOW_DEGRADED,
    STAGE_ADMISSION,
    STAGE_DISPATCH,
    STAGE_QUARANTINE,
    STAGE_SESSION,
    STAGE_VALIDATION,
    render_dead_letters,
    summarize_dead_letters,
)
from .deadline import (
    CHECK_INTERVAL,
    Deadline,
    active_deadline,
    set_deadline,
    use_deadline,
)
from .faults import (
    FAULT_EXIT_CODE,
    FaultDirective,
    FaultPlan,
    FaultSpec,
    SITE_KINDS,
    default_chaos_plan,
)
from .retry import NO_RETRY, RetryPolicy
from .watchdog import WatchdogReport, WorkerHungError, WorkerWatchdog

__all__ = [
    "BREAKER_STATE_VALUES",
    "CHECK_INTERVAL",
    "CLOSED",
    "CircuitBreaker",
    "DeadLetterRecord",
    "Deadline",
    "FAULT_EXIT_CODE",
    "FaultDirective",
    "FaultPlan",
    "FaultSpec",
    "HALF_OPEN",
    "NO_RETRY",
    "OPEN",
    "REASON_DEADLINE_EXCEEDED",
    "REASON_INVALID_QUERY",
    "REASON_NO_PATH",
    "REASON_QUARANTINE_FAILED",
    "REASON_SHED",
    "REASON_WINDOW_DEGRADED",
    "RetryPolicy",
    "SITE_KINDS",
    "STAGE_ADMISSION",
    "STAGE_DISPATCH",
    "STAGE_QUARANTINE",
    "STAGE_SESSION",
    "STAGE_VALIDATION",
    "WatchdogReport",
    "WorkerHungError",
    "WorkerWatchdog",
    "active_deadline",
    "default_chaos_plan",
    "render_dead_letters",
    "set_deadline",
    "summarize_dead_letters",
    "use_deadline",
]
