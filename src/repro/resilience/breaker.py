"""A circuit breaker guarding the multiprocess dispatch path.

Repeated pool-level failures (broken pools, failed pool construction) mean
something environmental is wrong — fork bombs, OOM kills, a bad libc — and
re-forking on every window just multiplies the damage.  The breaker
implements the classic three-state machine:

* **closed** — normal operation; pool failures count against
  ``failure_threshold``.
* **open** — the threshold was reached: the engine answers in-process
  (serial) and does not touch process pools until ``cooldown_seconds``
  have elapsed.
* **half-open** — cooldown expired: exactly one probe dispatch may use a
  pool.  Success closes the breaker, failure re-opens it for another
  cooldown.

The clock is injectable so tests drive the state machine without
sleeping, and the current state is published as the
``resilience.breaker_state`` gauge (see :data:`BREAKER_STATE_VALUES`).
"""

from __future__ import annotations

import time
from typing import Callable

from ..exceptions import ConfigurationError

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

#: Gauge encoding of the breaker state (exported to ``repro.obs``).
BREAKER_STATE_VALUES = {CLOSED: 0, HALF_OPEN: 1, OPEN: 2}


class CircuitBreaker:
    """Trip to serial execution after repeated pool failures.

    Parameters
    ----------
    failure_threshold:
        Consecutive pool-level failures that open the breaker.
    cooldown_seconds:
        How long the breaker stays open before allowing a half-open probe.
    clock:
        Monotonic time source; injectable for tests.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be at least 1")
        if cooldown_seconds < 0:
            raise ConfigurationError("cooldown_seconds must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_inflight = False
        self.transitions = 0

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current state, advancing open -> half-open when cooldown expires."""
        if self._state == OPEN and (
            self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._transition(HALF_OPEN)
        return self._state

    @property
    def state_value(self) -> int:
        """The state as the ``resilience.breaker_state`` gauge value."""
        return BREAKER_STATE_VALUES[self.state]

    def _transition(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self.transitions += 1
        if state == HALF_OPEN:
            self._probe_inflight = False

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May the caller use a process pool right now?

        In half-open state only the first caller gets a probe slot until
        its outcome is recorded; everyone else stays serial.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == OPEN:
            return False
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    def record_failure(self) -> None:
        """Note one pool-level failure (broken pool / failed construction)."""
        if self.state == HALF_OPEN:
            # The probe failed: back to a full cooldown.
            self._failures = self.failure_threshold
            self._open()
            return
        self._failures += 1
        if self._state == CLOSED and self._failures >= self.failure_threshold:
            self._open()

    def record_success(self) -> None:
        """Note one successful pooled dispatch round."""
        if self.state == HALF_OPEN:
            self._transition(CLOSED)
        self._failures = 0
        self._probe_inflight = False

    def trip(self) -> None:
        """Open immediately, bypassing the failure count.

        Used by the worker watchdog on a restart storm: once the rebuild
        budget is spent, re-forking pools is the damage, so the caller
        goes straight to serial in-process execution.
        """
        self._failures = max(self._failures, self.failure_threshold)
        self._open()

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._transition(OPEN)

    def reset(self) -> None:
        """Force the breaker back to a pristine closed state."""
        self._failures = 0
        self._probe_inflight = False
        self._transition(CLOSED)
