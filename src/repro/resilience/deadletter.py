"""Structured dead-letter records for queries the pipeline could not answer.

A production batch service never lets one bad query abort a window: a
query that fails validation, has no path, or sinks a whole quarantined
unit lands here — with enough structure that an operator (or a replay
job) can tell *why* and *where* it died.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

#: Why a query was dead-lettered.
REASON_INVALID_QUERY = "invalid-query"
REASON_NO_PATH = "no-path"
REASON_QUARANTINE_FAILED = "quarantine-failed"
REASON_WINDOW_DEGRADED = "window-degraded"
REASON_SHED = "shed"
REASON_DEADLINE_EXCEEDED = "deadline-exceeded"

#: Pipeline stage the query died in.
STAGE_VALIDATION = "validation"
STAGE_QUARANTINE = "quarantine"
STAGE_SESSION = "session"
STAGE_ADMISSION = "admission"
STAGE_DISPATCH = "dispatch"


@dataclass(frozen=True)
class DeadLetterRecord:
    """One query the pipeline gave up on, with its post-mortem.

    Attributes
    ----------
    source / target:
        The query endpoints (kept as raw ints — the query may be exactly
        what was malformed).
    reason:
        One of the ``REASON_*`` constants.
    stage:
        Pipeline stage that rejected the query (``STAGE_*`` constants).
    error:
        Exception class name that killed it (empty for validation).
    detail:
        Human-readable message.
    unit:
        Work-unit index the query belonged to, when it got that far.
    attempts:
        Attempts spent on the query's unit before it was given up on.
    """

    source: int
    target: int
    reason: str
    stage: str
    error: str = ""
    detail: str = ""
    unit: Optional[int] = None
    attempts: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "target": self.target,
            "reason": self.reason,
            "stage": self.stage,
            "error": self.error,
            "detail": self.detail,
            "unit": self.unit,
            "attempts": self.attempts,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "DeadLetterRecord":
        return DeadLetterRecord(
            source=int(data["source"]),
            target=int(data["target"]),
            reason=str(data["reason"]),
            stage=str(data["stage"]),
            error=str(data.get("error", "")),
            detail=str(data.get("detail", "")),
            unit=data.get("unit"),
            attempts=int(data.get("attempts", 0)),
        )


def summarize_dead_letters(records: Iterable[DeadLetterRecord]) -> Dict[str, int]:
    """Count dead letters by reason — the shape dashboards want."""
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.reason] = counts.get(record.reason, 0) + 1
    return counts


def render_dead_letters(records: List[DeadLetterRecord], limit: int = 10) -> str:
    """A small text table of dead letters for CLI output."""
    if not records:
        return "no dead letters"
    lines = [f"{len(records)} dead letter(s):"]
    for record in records[:limit]:
        where = f" unit={record.unit}" if record.unit is not None else ""
        err = f" {record.error}:" if record.error else ""
        lines.append(
            f"  ({record.source} -> {record.target}) {record.reason} "
            f"at {record.stage}{where}{err} {record.detail}".rstrip()
        )
    if len(records) > limit:
        lines.append(f"  ... and {len(records) - limit} more")
    return "\n".join(lines)
