"""Bounded retries with exponential backoff and deterministic jitter.

A :class:`RetryPolicy` is a frozen value object: it never sleeps or counts
by itself, it only answers "may attempt ``n+1`` happen?" and "how long to
wait before it?".  The jitter draw is a pure function of ``(seed, key,
attempt)`` — two processes replaying the same schedule compute the same
delays, which keeps fault-injection runs reproducible down to the backoff
sleeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How often and how patiently a failed work unit is re-attempted.

    Parameters
    ----------
    max_attempts:
        Total tries including the first; ``1`` disables retries entirely.
    base_delay_seconds:
        Backoff before the second attempt; attempt ``n`` waits
        ``base * multiplier**(n-1)``, capped at ``max_delay_seconds``.
    multiplier:
        Exponential growth factor (>= 1).
    max_delay_seconds:
        Upper bound on any single backoff sleep.
    jitter:
        Fraction of the computed delay added as deterministic noise in
        ``[0, jitter * delay)``; spreads retry bursts without breaking
        reproducibility.
    seed:
        Seed for the jitter draws.
    """

    max_attempts: int = 2
    base_delay_seconds: float = 0.01
    multiplier: float = 2.0
    max_delay_seconds: float = 0.25
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be at least 1")
        if self.base_delay_seconds < 0:
            raise ConfigurationError("base_delay_seconds must be non-negative")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be at least 1")
        if self.max_delay_seconds < 0:
            raise ConfigurationError("max_delay_seconds must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def allows_retry(self, attempt: int) -> bool:
        """Whether another try may follow failed attempt number ``attempt``."""
        return attempt < self.max_attempts

    def delay_seconds(self, attempt: int, key: int = 0) -> float:
        """Backoff to sleep after failed attempt ``attempt`` (1-based).

        ``key`` distinguishes concurrent retry series (e.g. the unit
        index) so their jitter decorrelates deterministically.
        """
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        raw = self.base_delay_seconds * self.multiplier ** (attempt - 1)
        delay = min(raw, self.max_delay_seconds)
        if self.jitter > 0.0 and delay > 0.0:
            draw = random.Random(f"{self.seed}:{key}:{attempt}").random()
            delay += delay * self.jitter * draw
        return min(delay, self.max_delay_seconds * (1.0 + self.jitter))

    def backoff_schedule(self, key: int = 0) -> Iterator[float]:
        """The full delay sequence between attempts 1..max_attempts."""
        for attempt in range(1, self.max_attempts):
            yield self.delay_seconds(attempt, key=key)


#: Retry disabled: one attempt, straight to the degradation ladder.
NO_RETRY = RetryPolicy(max_attempts=1, base_delay_seconds=0.0, jitter=0.0)
