"""Heartbeat-based liveness watchdog for the multiprocess worker pool.

``unit_timeout`` bounds how long the engine waits on *one* future; it says
nothing about the other workers.  While the parent blocks on unit A, a
worker chewing unit B can die (OOM kill, segfault) or wedge (native-code
loop, lost lock) and nothing notices until A's result arrives.  The
watchdog closes that gap:

* workers send a ``(pid, unit, event)`` heartbeat at unit start and unit
  end through a queue the parent drains between waits;
* the parent's :meth:`WorkerWatchdog.scan` pass flags **dead** workers
  (process exited while the pool still lists it) and **hung** workers
  (busy on one unit longer than ``hang_timeout`` with no completion
  beat);
* the engine treats an unhealthy scan like a broken pool: tear down,
  requeue the in-flight units through the existing retry ladder, and
  rebuild — but the watchdog *bounds* the rebuilds.  Once
  ``max_restarts`` pool restarts have been spent in one watchdog's
  lifetime, the next unhealthy scan reports a restart **storm** and the
  engine trips the circuit breaker outright, falling back to serial
  in-process execution instead of thrashing fork/exec.

Every clock is injectable, so the state machine is fully deterministic
under test: feed beats with :meth:`observe_start` / :meth:`observe_done`,
advance a fake clock, and scan fake process handles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..exceptions import ConfigurationError, WorkerError

__all__ = ["HEARTBEAT_START", "HEARTBEAT_DONE", "WatchdogReport", "WorkerWatchdog"]

HEARTBEAT_START = "start"
HEARTBEAT_DONE = "done"


class WorkerHungError(WorkerError):
    """The watchdog declared a pool worker dead or hung."""

    def __init__(self, detail: str) -> None:
        super().__init__(f"watchdog: {detail}")
        self.detail = detail

    def __reduce__(self):
        return (WorkerHungError, (self.detail,))


@dataclass
class WatchdogReport:
    """Outcome of one liveness scan over the pool's workers."""

    #: ``(pid, exitcode)`` for workers that exited while still pooled.
    dead: List[Tuple[int, Optional[int]]] = field(default_factory=list)
    #: ``(pid, unit, stalled_seconds)`` for workers busy past ``hang_timeout``.
    hung: List[Tuple[int, int, float]] = field(default_factory=list)
    #: ``max_restarts`` is exhausted: stop rebuilding, trip the breaker.
    storm: bool = False

    @property
    def healthy(self) -> bool:
        return not self.dead and not self.hung

    def describe(self) -> str:
        parts = []
        if self.dead:
            parts.append(
                "dead worker(s) "
                + ", ".join(f"pid={p} exit={c}" for p, c in self.dead)
            )
        if self.hung:
            parts.append(
                "hung worker(s) "
                + ", ".join(
                    f"pid={p} unit={u} stalled={s:.1f}s" for p, u, s in self.hung
                )
            )
        return "; ".join(parts) if parts else "healthy"


class WorkerWatchdog:
    """Track worker heartbeats and flag dead/hung pool processes.

    Parameters
    ----------
    hang_timeout:
        Seconds a worker may stay busy on one unit without a completion
        beat before it is declared hung.
    max_restarts:
        Pool rebuilds this watchdog tolerates before declaring a restart
        storm (the engine then trips its breaker instead of rebuilding).
    poll_interval:
        How often the engine slices its future waits to run a scan.
    clock:
        Monotonic time source; injectable for deterministic tests.
    """

    def __init__(
        self,
        hang_timeout: float = 30.0,
        max_restarts: int = 3,
        poll_interval: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if hang_timeout <= 0:
            raise ConfigurationError("hang_timeout must be positive")
        if max_restarts < 0:
            raise ConfigurationError("max_restarts must be non-negative")
        if poll_interval <= 0:
            raise ConfigurationError("poll_interval must be positive")
        self.hang_timeout = hang_timeout
        self.max_restarts = max_restarts
        self.poll_interval = poll_interval
        self.clock = clock
        self.restarts = 0
        self.scans = 0
        #: pid -> (unit index, busy-since stamp on ``clock``).
        self._busy: Dict[int, Tuple[int, float]] = {}

    # -- heartbeat intake ----------------------------------------------
    def observe_start(self, pid: int, unit: int) -> None:
        """A worker began a unit (stamped with the parent's clock)."""
        self._busy[pid] = (unit, self.clock())

    def observe_done(self, pid: int) -> None:
        """A worker finished its unit."""
        self._busy.pop(pid, None)

    def drain(self, queue) -> int:
        """Non-blocking drain of a heartbeat queue; returns beats consumed.

        Accepts ``(pid, unit, event)`` tuples as sent by
        :func:`repro.parallel.worker.answer_unit`.  Queue hiccups during
        pool teardown are swallowed — a lost beat only delays detection.
        """
        drained = 0
        if queue is None:
            return drained
        try:
            while not queue.empty():
                pid, unit, event = queue.get_nowait()
                if event == HEARTBEAT_DONE:
                    self.observe_done(pid)
                else:
                    self.observe_start(pid, unit)
                drained += 1
        except Exception:  # pragma: no cover - teardown race
            pass
        return drained

    # -- liveness scan --------------------------------------------------
    def scan(self, processes: Mapping[int, object]) -> WatchdogReport:
        """One liveness pass over ``processes`` (pid -> process handle).

        A handle only needs an ``exitcode`` attribute (``None`` while
        alive), which both :class:`multiprocessing.Process` and test fakes
        provide.
        """
        self.scans += 1
        now = self.clock()
        report = WatchdogReport(storm=self.restarts >= self.max_restarts)
        for pid, proc in list(processes.items()):
            exitcode = getattr(proc, "exitcode", None)
            if exitcode is not None:
                report.dead.append((pid, exitcode))
                self._busy.pop(pid, None)
                continue
            busy = self._busy.get(pid)
            if busy is not None:
                unit, since = busy
                stalled = now - since
                if stalled >= self.hang_timeout:
                    report.hung.append((pid, unit, stalled))
        return report

    def note_restart(self) -> bool:
        """Record one watchdog-triggered pool restart.

        Returns ``True`` while the restart budget allows rebuilding;
        ``False`` once this restart exhausted it (restart storm — the
        caller should trip its breaker and stop using pools).
        """
        self.restarts += 1
        return self.restarts <= self.max_restarts

    def forget(self, pid: Optional[int] = None) -> None:
        """Drop busy-state for ``pid`` (or everything) after a pool teardown."""
        if pid is None:
            self._busy.clear()
        else:
            self._busy.pop(pid, None)
