"""Cooperative deadlines: a time budget threaded down into the search loops.

A :class:`Deadline` is an absolute expiry on a monotonic clock.  The
streaming service (or any caller) installs one with :func:`use_deadline`;
the search kernels poll :func:`active_deadline` once per run and then
check ``expired()`` every :data:`CHECK_INTERVAL` heap pops, raising
:class:`~repro.exceptions.DeadlineExceededError` when the budget is gone.

The design mirrors the obs registry: one module-global active deadline,
``None`` by default, so the no-deadline hot path costs a single global
read per search run plus one masked-integer test per check interval —
measured ≤3% on the benchmark smoke suite.

Worker processes receive a plain remaining-seconds float in their unit
payload and re-arm a local ``Deadline`` against their own monotonic
clock, so nothing here needs to pickle.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from ..exceptions import DeadlineExceededError

__all__ = [
    "CHECK_INTERVAL",
    "Deadline",
    "active_deadline",
    "deadline_check",
    "set_deadline",
    "use_deadline",
]

#: Heap pops between deadline checks inside search loops.  A power of two
#: minus one so kernels can test ``pops & CHECK_MASK == 0``.
CHECK_INTERVAL = 256
CHECK_MASK = CHECK_INTERVAL - 1


class Deadline:
    """An absolute expiry instant on an injectable monotonic clock.

    Parameters
    ----------
    budget_seconds:
        Time remaining from *now*; the expiry is ``clock() + budget``.
    clock:
        Monotonic time source (seconds).  Injectable for deterministic
        tests; defaults to :func:`time.monotonic`.
    """

    __slots__ = ("expires_at", "clock")

    def __init__(
        self,
        budget_seconds: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.clock = clock
        self.expires_at = clock() + max(0.0, budget_seconds)

    @classmethod
    def at(
        cls, expires_at: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """Build a deadline from an absolute instant on ``clock``."""
        deadline = cls.__new__(cls)
        deadline.clock = clock
        deadline.expires_at = expires_at
        return deadline

    def remaining(self) -> float:
        """Seconds left before expiry (negative once expired)."""
        return self.expires_at - self.clock()

    def expired(self) -> bool:
        return self.clock() >= self.expires_at

    def check(self, where: str = "search") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        over = self.clock() - self.expires_at
        if over >= 0.0:
            raise DeadlineExceededError(where, over)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


#: The process-local active deadline the search kernels poll.  ``None``
#: means unbounded — the default, and the cost-free path.
_ACTIVE: Optional[Deadline] = None


def active_deadline() -> Optional[Deadline]:
    """The deadline currently installed for this process (or ``None``)."""
    return _ACTIVE


def set_deadline(deadline: Optional[Deadline]) -> Optional[Deadline]:
    """Install ``deadline`` as the active one; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = deadline
    return previous


@contextmanager
def use_deadline(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Scope ``deadline`` as the active deadline, restoring on exit."""
    previous = set_deadline(deadline)
    try:
        yield deadline
    finally:
        set_deadline(previous)


def deadline_check(pops: int, deadline: Optional[Deadline], where: str) -> None:
    """The kernel-loop check: cheap no-op off the interval or with no deadline.

    Kernels inline the mask test for speed; this helper exists for the
    dict-based reference searches where a function call per
    :data:`CHECK_INTERVAL` pops is already in the noise.
    """
    if deadline is not None and pops & CHECK_MASK == 0:
        deadline.check(where)
