"""Deterministic, seeded fault injection for the batch pipeline.

A :class:`FaultPlan` is a declarative list of :class:`FaultSpec` entries,
each naming an injection *site*, a failure *kind*, and a deterministic
firing rule.  The supported sites mirror the places a production batch
service actually breaks:

=========  ===========================  =====================================
site       kinds                        where it fires
=========  ===========================  =====================================
``unit``   ``crash``, ``hang``,         inside ``worker.answer_unit`` — the
           ``exit``                     unit raises, sleeps, or hard-kills
                                        its worker process (``os._exit``,
                                        which breaks the whole pool)
``pool``   ``break``                    pool construction in the engine — the
                                        build raises before any worker starts
``session``  ``transient``              :meth:`DynamicBatchSession.process_batch`
                                        — a transient snapshot failure
=========  ===========================  =====================================

Firing decisions are *pure functions* of ``(plan.seed, spec position,
site, kind, index, attempt)``: no mutable firing state, so parent and
worker processes, reruns, and resumed retries all agree on exactly which
faults fire.  A spec with ``max_attempt=1`` (the default) only hits the
first attempt of a unit, which is what makes retried execution converge —
the retry of a crashed unit deterministically succeeds.

The parent evaluates the plan and ships a small picklable
:class:`FaultDirective` with the work-unit payload; worker processes never
see the plan itself.

JSON format (``repro run --fault-plan plan.json``)::

    {
      "seed": 7,
      "faults": [
        {"site": "unit", "kind": "crash", "probability": 0.3},
        {"site": "unit", "kind": "hang", "units": [2], "delay_seconds": 0.2},
        {"site": "pool", "kind": "break", "units": [0]},
        {"site": "session", "kind": "transient", "probability": 1.0}
      ]
    }
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..exceptions import ConfigurationError

#: Failure kinds accepted per injection site.
SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    "unit": ("crash", "hang", "exit"),
    "pool": ("break",),
    "session": ("transient",),
    # ``stream``/``kill`` hard-kills the serving process (``os._exit``)
    # after the indexed window is dispatched — the crash-recovery drill
    # for the arrivals journal (``repro serve --journal`` + ``--recover``).
    "stream": ("kill",),
}

#: Exit status used by the ``exit`` fault so a dead worker is recognisable.
FAULT_EXIT_CODE = 117


@dataclass(frozen=True)
class FaultDirective:
    """The picklable instruction shipped to a worker with its unit."""

    kind: str  #: ``"crash"``, ``"hang"`` or ``"exit"``
    delay_seconds: float = 0.0  #: sleep length for ``hang``


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault: where, what, and when it fires.

    Parameters
    ----------
    site / kind:
        Injection point and failure mode (see :data:`SITE_KINDS`).
    probability:
        Chance the fault fires for a matching ``(index, attempt)``; the
        draw is a pure function of the plan seed, so it is reproducible.
    units:
        Restrict firing to these indices (unit index for ``unit`` faults,
        build count for ``pool``, batch index for ``session``).  ``None``
        matches every index.
    max_attempt:
        Fire only while ``attempt <= max_attempt``.  The default ``1``
        makes every fault transient: the first retry escapes it.
    delay_seconds:
        Sleep length for ``hang`` faults; ignored otherwise.
    """

    site: str
    kind: str
    probability: float = 1.0
    units: Optional[Tuple[int, ...]] = None
    max_attempt: int = 1
    delay_seconds: float = 0.05

    def __post_init__(self) -> None:
        kinds = SITE_KINDS.get(self.site)
        if kinds is None:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; choose from {tuple(SITE_KINDS)}"
            )
        if self.kind not in kinds:
            raise ConfigurationError(
                f"fault kind {self.kind!r} not valid at site {self.site!r}; "
                f"choose from {kinds}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError("fault probability must be in [0, 1]")
        if self.max_attempt < 1:
            raise ConfigurationError("max_attempt must be at least 1")
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be non-negative")
        if self.units is not None:
            object.__setattr__(self, "units", tuple(int(u) for u in self.units))

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "site": self.site,
            "kind": self.kind,
            "probability": self.probability,
            "max_attempt": self.max_attempt,
            "delay_seconds": self.delay_seconds,
        }
        if self.units is not None:
            data["units"] = list(self.units)
        return data

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultSpec":
        known = {"site", "kind", "probability", "units", "max_attempt", "delay_seconds"}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec keys {sorted(unknown)}; expected {sorted(known)}"
            )
        if "site" not in data or "kind" not in data:
            raise ConfigurationError("fault spec needs at least 'site' and 'kind'")
        units = data.get("units")
        return FaultSpec(
            site=str(data["site"]),
            kind=str(data["kind"]),
            probability=float(data.get("probability", 1.0)),
            units=tuple(units) if units is not None else None,
            max_attempt=int(data.get("max_attempt", 1)),
            delay_seconds=float(data.get("delay_seconds", 0.05)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered set of :class:`FaultSpec` entries.

    The first matching spec wins at each site, so a plan can layer a
    targeted fault (``units=[3]``) over a background probability.
    """

    seed: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    # -- firing rules ---------------------------------------------------
    def _fires(self, pos: int, spec: FaultSpec, index: int, attempt: int) -> bool:
        if attempt > spec.max_attempt:
            return False
        if spec.units is not None and index not in spec.units:
            return False
        if spec.probability >= 1.0:
            return True
        if spec.probability <= 0.0:
            return False
        # str seeds hash through SHA-512 in CPython: stable across runs,
        # platforms and processes (unlike hash()).
        draw = random.Random(
            f"{self.seed}:{pos}:{spec.site}:{spec.kind}:{index}:{attempt}"
        ).random()
        return draw < spec.probability

    def _first_match(self, site: str, index: int, attempt: int) -> Optional[FaultSpec]:
        for pos, spec in enumerate(self.specs):
            if spec.site == site and self._fires(pos, spec, index, attempt):
                return spec
        return None

    def unit_fault(self, unit: int, attempt: int) -> Optional[FaultDirective]:
        """The directive to ship with ``unit``'s ``attempt``-th dispatch."""
        spec = self._first_match("unit", unit, attempt)
        if spec is None:
            return None
        return FaultDirective(spec.kind, spec.delay_seconds)

    def pool_fault(self, build_count: int) -> bool:
        """Whether the ``build_count``-th pool construction should fail."""
        return self._first_match("pool", build_count, 1) is not None

    def session_fault(self, batch_index: int, attempt: int) -> bool:
        """Whether the dynamic session should fail this batch attempt."""
        return self._first_match("session", batch_index, attempt) is not None

    def stream_fault(self, window_index: int) -> bool:
        """Whether the serving process should hard-die after this window."""
        return self._first_match("stream", window_index, 1) is not None

    # -- (de)serialisation ----------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "faults": [s.to_dict() for s in self.specs]}

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ConfigurationError("fault plan must be a JSON object")
        unknown = set(data) - {"seed", "faults"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan keys {sorted(unknown)}; expected seed, faults"
            )
        faults = data.get("faults", [])
        if not isinstance(faults, (list, tuple)):
            raise ConfigurationError("fault plan 'faults' must be a list")
        return FaultPlan(
            seed=int(data.get("seed", 0)),
            specs=tuple(FaultSpec.from_dict(f) for f in faults),
        )

    @staticmethod
    def from_file(path: Union[str, Path]) -> "FaultPlan":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
        except ValueError as exc:
            raise ConfigurationError(f"fault plan {path} is not valid JSON: {exc}") from exc
        return FaultPlan.from_dict(data)

    def write(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )


def default_chaos_plan(seed: int = 0) -> FaultPlan:
    """The crash + hang + pool-break mix the chaos smoke test runs under."""
    return FaultPlan(
        seed=seed,
        specs=(
            FaultSpec(site="unit", kind="crash", probability=0.35),
            FaultSpec(site="unit", kind="hang", probability=0.2, delay_seconds=0.05),
            FaultSpec(site="unit", kind="exit", probability=0.1),
            FaultSpec(site="pool", kind="break", units=(0,)),
            FaultSpec(site="session", kind="transient", probability=0.5),
        ),
    )
