"""Metrics, tables, parallel-dispatch simulation and experiment harness."""

from .experiments import (
    CacheSuite,
    ExperimentEnv,
    ExperimentResult,
    R2RSuite,
    build_env,
    run_cache_suite,
    run_fig7a,
    run_fig7b,
    run_fig7c,
    run_fig7d,
    run_fig7e,
    run_fig7f,
    run_fig8,
    run_r2r_suite,
    run_table1,
    run_table2,
)
from .capacity import CapacityPlan, compare_methods, scale_costs, servers_needed
from .export import answers_to_csv, batch_to_json, load_answers_csv, series_to_csv
from .metrics import ErrorReport, bytes_to_mb, error_report, exact_distances
from .parallel import ScheduleResult, lpt_makespan
from .report import generate_report
from .tables import check_monotone, render_bars, render_series, render_table
from .validation import (
    CoverageReport,
    summarize_coverage,
    validate_search_space,
)

__all__ = [
    "CacheSuite",
    "CapacityPlan",
    "CoverageReport",
    "ErrorReport",
    "ExperimentEnv",
    "ExperimentResult",
    "R2RSuite",
    "ScheduleResult",
    "build_env",
    "answers_to_csv",
    "batch_to_json",
    "bytes_to_mb",
    "check_monotone",
    "error_report",
    "generate_report",
    "exact_distances",
    "load_answers_csv",
    "lpt_makespan",
    "render_bars",
    "render_series",
    "render_table",
    "run_cache_suite",
    "run_fig7a",
    "run_fig7b",
    "run_fig7c",
    "run_fig7d",
    "run_fig7e",
    "run_fig7f",
    "run_fig8",
    "run_r2r_suite",
    "run_table1",
    "run_table2",
    "scale_costs",
    "series_to_csv",
    "summarize_coverage",
    "validate_search_space",
    "servers_needed",
    "compare_methods",
]
