"""Server-capacity planning from measured batch costs.

The paper's motivation is operational: a ride-hailing platform facing
100k+ queries per minute wants fewer servers, not more.  This module turns
measured batch results into that decision: given the per-window work a
method needs and a latency objective ("every one-second batch must finish
within its second"), how many servers does each method require?

The model is the same one the Figure 8 experiment uses: indivisible work
units (a query for per-query methods, a cluster for batch methods)
scheduled with LPT.  :func:`servers_needed` binary-searches the smallest
server count whose LPT makespan meets the deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..exceptions import ConfigurationError
from .parallel import lpt_makespan


@dataclass(frozen=True)
class CapacityPlan:
    """The sizing answer for one method at one load."""

    method: str
    servers: int
    makespan_seconds: float
    deadline_seconds: float
    total_work_seconds: float

    @property
    def headroom(self) -> float:
        """Fraction of the deadline left unused (0 = exactly at deadline)."""
        if self.deadline_seconds <= 0:
            return 0.0
        return 1.0 - self.makespan_seconds / self.deadline_seconds


def servers_needed(
    unit_costs: Sequence[float],
    deadline_seconds: float,
    max_servers: int = 4096,
    method: str = "",
) -> CapacityPlan:
    """Smallest server count whose LPT makespan fits the deadline.

    ``unit_costs`` are measured single-thread seconds of the batch's
    indivisible work units.  Raises
    :class:`~repro.exceptions.ConfigurationError` when even ``max_servers``
    cannot meet the deadline (some single unit exceeds it).
    """
    if deadline_seconds <= 0:
        raise ConfigurationError("deadline must be positive")
    costs = [c for c in unit_costs if c > 0]
    if not costs:
        return CapacityPlan(method, 1, 0.0, deadline_seconds, 0.0)
    largest = max(costs)
    if largest > deadline_seconds:
        raise ConfigurationError(
            f"an indivisible work unit takes {largest:.4f}s, beyond the "
            f"{deadline_seconds:.4f}s deadline — no server count can help"
        )
    total = sum(costs)
    lo = max(1, int(total // deadline_seconds))
    hi = lo
    while hi <= max_servers:
        if lpt_makespan(costs, hi).makespan_seconds <= deadline_seconds:
            break
        hi *= 2
    else:
        raise ConfigurationError(f"deadline unreachable within {max_servers} servers")
    hi = min(hi, max_servers)
    # Binary search the minimal feasible count in [lo, hi].
    while lo < hi:
        mid = (lo + hi) // 2
        if lpt_makespan(costs, mid).makespan_seconds <= deadline_seconds:
            hi = mid
        else:
            lo = mid + 1
    schedule = lpt_makespan(costs, lo)
    return CapacityPlan(
        method=method,
        servers=lo,
        makespan_seconds=schedule.makespan_seconds,
        deadline_seconds=deadline_seconds,
        total_work_seconds=total,
    )


def scale_costs(unit_costs: Sequence[float], factor: float) -> List[float]:
    """Project measured costs to a higher load by replication.

    ``factor`` > 1 replicates the unit population (fractional parts sample
    a prefix), modelling "the same workload shape at k times the rate".
    """
    if factor <= 0:
        raise ConfigurationError("factor must be positive")
    costs = list(unit_costs)
    if not costs:
        return []
    whole = int(factor)
    out = costs * whole
    remainder = factor - whole
    out.extend(costs[: int(len(costs) * remainder)])
    return out


def compare_methods(
    plans: Sequence[CapacityPlan],
) -> List[CapacityPlan]:
    """Plans sorted by server count (the purchasing decision order)."""
    return sorted(plans, key=lambda p: (p.servers, p.makespan_seconds))
