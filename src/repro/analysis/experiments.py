"""Shared experiment harness behind the benchmarks and the CLI.

Each ``run_*`` function reproduces one table or figure of Section VI and
returns a :class:`ExperimentResult` holding the series/rows plus a rendered
plain-text artefact.  Benchmarks call these with scaled-down sizes (the
``repro (python) = 3/5`` reality documented in DESIGN.md) and assert the
paper's *shape*: who wins, what grows, where crossovers sit.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..baselines.global_cache import GlobalCacheAnswerer, split_log_and_stream
from ..baselines.kpath import KPathAnswerer
from ..baselines.one_by_one import OneByOneAnswerer
from ..baselines.zigzag_petal import ZigzagPetalAnswerer
from ..core.clusters import Decomposition
from ..core.coclustering import CoClusteringDecomposer
from ..core.local_cache import LocalCacheAnswerer
from ..core.r2r import RegionToRegionAnswerer
from ..core.results import BatchAnswer
from ..core.search_space import SearchSpaceDecomposer
from ..core.zigzag import ZigzagDecomposer
from ..network.generators import beijing_like
from ..queries.query import QuerySet
from ..queries.workload import WorkloadGenerator, band_for_network
from .metrics import ErrorReport, bytes_to_mb, error_report, exact_distances
from .parallel import ScheduleResult, lpt_makespan
from .tables import render_bars, render_series, render_table

#: Paper sizes are 10k/100k/500k/1M; the default scaled series keeps the
#: geometric flavour at pure-Python-feasible sizes.
DEFAULT_SIZES = (100, 300, 900, 1800)
DEFAULT_ETA = 0.05


@dataclass
class ExperimentEnv:
    """A reusable benchmark environment: network + workload + bands."""

    graph: object
    workload: WorkloadGenerator
    scale: str
    seed: int
    cache_band: Tuple[float, float]
    r2r_band: Tuple[float, float]

    def fresh_workload(self, salt: int) -> WorkloadGenerator:
        """A workload generator with its own RNG stream but the same city.

        Experiments draw from *fresh* generators so their query sets do not
        depend on how many batches other experiments drew before them —
        every ``run_*`` function is deterministic in isolation.
        """
        return WorkloadGenerator(
            self.graph,
            hotspots=self.workload.hotspots,
            hotspot_fraction=self.workload.hotspot_fraction,
            seed=self.seed + salt,
        )


def build_env(scale: str = "small", seed: int = 7) -> ExperimentEnv:
    """Build the Beijing-like environment used by all experiments.

    The workload mirrors the Beijing taxi sample's concentration: most trip
    endpoints cluster around a handful of hotspots (stations, business
    districts), which is what creates the path coherence all batch methods
    feed on.
    """
    graph = beijing_like(scale=scale, seed=seed)
    workload = WorkloadGenerator(
        graph, seed=seed + 1, hotspot_fraction=0.85, num_hotspots=6
    )
    return ExperimentEnv(
        graph=graph,
        workload=workload,
        scale=scale,
        seed=seed,
        cache_band=band_for_network(graph, "cache"),
        r2r_band=band_for_network(graph, "r2r"),
    )


@dataclass
class ExperimentResult:
    """One reproduced artefact: identifier, data, and rendered text."""

    experiment: str
    xs: List = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)
    rendered: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.rendered


# ----------------------------------------------------------------------
# Figure 7-(a): decomposition time
# ----------------------------------------------------------------------
def run_fig7a(
    env: ExperimentEnv,
    sizes: Sequence[int] = DEFAULT_SIZES,
    eta: float = DEFAULT_ETA,
    repeats: int = 3,
) -> ExperimentResult:
    """Decomposition time of Zigzag, SSE and Co-Clustering vs batch size.

    Each measurement is the best of ``repeats`` runs: decompositions take
    tens of milliseconds at reproduction scale, where single-run wall
    times carry scheduler noise comparable to the method gaps.
    """
    series: Dict[str, List[float]] = {"zigzag": [], "search-space": [], "co-clustering": []}
    workload = env.fresh_workload(101)
    decomposers = {
        "zigzag": ZigzagDecomposer(env.graph),
        "search-space": SearchSpaceDecomposer(env.graph),
        "co-clustering": CoClusteringDecomposer(env.graph, eta=eta),
    }
    for size in sizes:
        queries = workload.batch(size)
        for name, decomposer in decomposers.items():
            best = min(
                decomposer.decompose(queries).elapsed_seconds
                for _ in range(max(repeats, 1))
            )
            series[name].append(best)
    rendered = render_series(
        "|Q|", list(sizes), series, title="Fig 7-(a): decomposition time (s)"
    )
    return ExperimentResult("fig7a", list(sizes), series, rendered=rendered)


# ----------------------------------------------------------------------
# The cache suite: Table I, Fig 7-(b)(c)(d)(e)
# ----------------------------------------------------------------------
@dataclass
class CacheSuite:
    """All cache-experiment measurements for one batch size."""

    size: int
    gc_bytes: int
    hit_ratio: Dict[str, float]
    answer_seconds: Dict[str, float]
    decompose_seconds: Dict[str, float]
    visited: Dict[str, int] = field(default_factory=dict)
    sweep_hit_ratio: Dict[float, float] = field(default_factory=dict)
    sweep_seconds: Dict[float, float] = field(default_factory=dict)
    sweep_visited: Dict[float, int] = field(default_factory=dict)


CACHE_METHODS = ("astar", "gc", "zlc", "slc-r", "slc-s")


def run_cache_suite(
    env: ExperimentEnv,
    sizes: Sequence[int] = DEFAULT_SIZES,
    cache_fractions: Sequence[float] = (0.7, 0.8, 0.9, 1.0),
    seed: int = 0,
) -> List[CacheSuite]:
    """Execute the full cache protocol of Section VI-C for each size.

    Protocol: the first 20 % of the batch is the cache-construction log;
    every method answers the remaining 80 % stream.  Local caches get the
    byte budget |GC| each; the sweep re-runs SLC-S at fractions of |GC|.
    """
    suites: List[CacheSuite] = []
    lo, hi = env.cache_band
    workload = env.fresh_workload(202)
    for size in sizes:
        queries = workload.batch(size, min_dist=lo, max_dist=hi)
        log, stream = split_log_and_stream(queries, 0.2)

        gc = GlobalCacheAnswerer(env.graph)
        gc.build(log)
        gc_bytes = max(gc.cache_bytes, 1)

        suite = CacheSuite(
            size=size,
            gc_bytes=gc_bytes,
            hit_ratio={},
            answer_seconds={},
            decompose_seconds={},
        )

        astar_answer = OneByOneAnswerer(env.graph).answer(stream, "astar")
        suite.hit_ratio["astar"] = 0.0
        suite.answer_seconds["astar"] = astar_answer.answer_seconds
        suite.decompose_seconds["astar"] = 0.0
        suite.visited["astar"] = astar_answer.visited

        gc_answer = gc.answer(stream)
        suite.hit_ratio["gc"] = gc_answer.hit_ratio
        suite.answer_seconds["gc"] = gc_answer.answer_seconds
        suite.decompose_seconds["gc"] = gc.build_seconds
        suite.visited["gc"] = gc_answer.visited

        zz = ZigzagDecomposer(env.graph).decompose(stream)
        zlc = LocalCacheAnswerer(env.graph, gc_bytes, order="longest", seed=seed)
        zlc_answer = zlc.answer(zz, method="zlc")
        suite.hit_ratio["zlc"] = zlc_answer.hit_ratio
        suite.answer_seconds["zlc"] = zlc_answer.answer_seconds
        suite.decompose_seconds["zlc"] = zz.elapsed_seconds
        suite.visited["zlc"] = zlc_answer.visited

        sse = SearchSpaceDecomposer(env.graph).decompose(stream)
        binding_budget = 1
        for order, label in (("random", "slc-r"), ("longest", "slc-s")):
            lc = LocalCacheAnswerer(env.graph, gc_bytes, order=order, seed=seed)
            answer = lc.answer(sse, method=label)
            suite.hit_ratio[label] = answer.hit_ratio
            suite.answer_seconds[label] = answer.answer_seconds
            suite.decompose_seconds[label] = sse.elapsed_seconds
            suite.visited[label] = answer.visited
            if label == "slc-s":
                binding_budget = max(answer.max_cluster_cache_bytes, 1)

        # Cache-size sweep.  At paper scale the |GC| budget binds every
        # local cache; at reproduction scale per-cluster usage is far below
        # |GC|, so the sweep is taken against the *binding* budget — the
        # largest local cache the unconstrained run built — which restores
        # the effect the paper measures (smaller budget -> evicted paths ->
        # lower hit ratio).  Documented in EXPERIMENTS.md.
        for fraction in cache_fractions:
            budget = max(1, int(binding_budget * fraction))
            lc = LocalCacheAnswerer(env.graph, budget, order="longest", seed=seed)
            answer = lc.answer(sse, method=f"slc-s@{fraction:.0%}")
            suite.sweep_hit_ratio[fraction] = answer.hit_ratio
            suite.sweep_seconds[fraction] = answer.answer_seconds
            suite.sweep_visited[fraction] = answer.visited
        suites.append(suite)
    return suites


def _suite_series(suites: List[CacheSuite], attribute: str) -> Dict[str, List[float]]:
    return {
        method: [getattr(s, attribute)[method] for s in suites]
        for method in CACHE_METHODS
    }


def run_table1(env: ExperimentEnv, suites: List[CacheSuite]) -> ExperimentResult:
    """Table I: |GC| cache size (MB) per batch size."""
    xs = [s.size for s in suites]
    mbs = [bytes_to_mb(s.gc_bytes) for s in suites]
    rendered = render_table(
        ["|Q|"] + [str(x) for x in xs],
        [["20% |GC| (MB)"] + [f"{mb:.3f}" for mb in mbs]],
        title="Table I: cache size (MB)",
    )
    return ExperimentResult("table1", xs, {"cache_mb": mbs}, rendered=rendered)


def run_fig7b(env: ExperimentEnv, suites: List[CacheSuite]) -> ExperimentResult:
    """Fig 7-(b): hit ratio per method vs batch size."""
    xs = [s.size for s in suites]
    series = {
        m: [s.hit_ratio[m] for s in suites] for m in ("gc", "zlc", "slc-r", "slc-s")
    }
    rendered = render_series("|Q|", xs, series, title="Fig 7-(b): hit ratio")
    return ExperimentResult("fig7b", xs, series, rendered=rendered)


def run_fig7c(env: ExperimentEnv, suites: List[CacheSuite]) -> ExperimentResult:
    """Fig 7-(c): SLC-S hit ratio vs cache-size fraction."""
    xs = [s.size for s in suites]
    fractions = sorted(suites[0].sweep_hit_ratio) if suites else []
    series = {
        f"{f:.0%}|GC|": [s.sweep_hit_ratio[f] for s in suites] for f in fractions
    }
    rendered = render_series(
        "|Q|", xs, series, title="Fig 7-(c): SLC-S hit ratio vs cache size"
    )
    return ExperimentResult("fig7c", xs, series, rendered=rendered)


def run_fig7d(env: ExperimentEnv, suites: List[CacheSuite]) -> ExperimentResult:
    """Fig 7-(d): answering time per method vs batch size."""
    xs = [s.size for s in suites]
    series = _suite_series(suites, "answer_seconds")
    rendered = render_series("|Q|", xs, series, title="Fig 7-(d): query time (s)")
    return ExperimentResult("fig7d", xs, series, rendered=rendered)


def run_fig7e(env: ExperimentEnv, suites: List[CacheSuite]) -> ExperimentResult:
    """Fig 7-(e): SLC-S answering time vs cache-size fraction."""
    xs = [s.size for s in suites]
    fractions = sorted(suites[0].sweep_seconds) if suites else []
    series = {
        f"{f:.0%}|GC|": [s.sweep_seconds[f] for s in suites] for f in fractions
    }
    rendered = render_series(
        "|Q|", xs, series, title="Fig 7-(e): SLC-S query time vs cache size (s)"
    )
    return ExperimentResult("fig7e", xs, series, rendered=rendered)


# ----------------------------------------------------------------------
# The R2R suite: Fig 7-(f) and Table II
# ----------------------------------------------------------------------
@dataclass
class R2RSuite:
    """R2R-experiment measurements for one batch size."""

    size: int
    answer_seconds: Dict[str, float]
    decompose_seconds: Dict[str, float]
    errors: Dict[str, ErrorReport]
    visited: Dict[str, int] = field(default_factory=dict)


R2R_METHODS = ("astar", "zigzag-petal", "k-path", "r2r-s", "r2r-r")


def run_r2r_suite(
    env: ExperimentEnv,
    sizes: Sequence[int] = DEFAULT_SIZES,
    eta: float = DEFAULT_ETA,
    seed: int = 0,
) -> List[R2RSuite]:
    """Execute the region-to-region protocol of Section VI-D per size."""
    suites: List[R2RSuite] = []
    lo, hi = env.r2r_band
    workload = env.fresh_workload(303)
    for size in sizes:
        queries = workload.batch(size, min_dist=lo, max_dist=hi)
        suite = R2RSuite(size=size, answer_seconds={}, decompose_seconds={}, errors={})

        astar_answer = OneByOneAnswerer(env.graph).answer(queries, "astar")
        suite.answer_seconds["astar"] = astar_answer.answer_seconds
        suite.decompose_seconds["astar"] = 0.0
        suite.visited["astar"] = astar_answer.visited
        oracle = {q: r.distance for q, r in astar_answer.answers}

        petal_answer = ZigzagPetalAnswerer(env.graph).answer(queries)
        suite.answer_seconds["zigzag-petal"] = petal_answer.answer_seconds
        suite.decompose_seconds["zigzag-petal"] = petal_answer.decompose_seconds
        suite.visited["zigzag-petal"] = petal_answer.visited

        cc = CoClusteringDecomposer(env.graph, eta=eta).decompose(queries)
        kp_answer = KPathAnswerer(env.graph).answer(cc)
        suite.answer_seconds["k-path"] = kp_answer.answer_seconds
        suite.decompose_seconds["k-path"] = cc.elapsed_seconds
        suite.errors["k-path"] = error_report(env.graph, kp_answer, oracle)
        suite.visited["k-path"] = kp_answer.visited

        for selection, label in (("longest", "r2r-s"), ("random", "r2r-r")):
            answerer = RegionToRegionAnswerer(
                env.graph, eta=eta, selection=selection, seed=seed
            )
            answer = answerer.answer(cc, method=label)
            suite.answer_seconds[label] = answer.answer_seconds
            suite.decompose_seconds[label] = cc.elapsed_seconds
            suite.errors[label] = error_report(env.graph, answer, oracle)
            suite.visited[label] = answer.visited
        suites.append(suite)
    return suites


def run_fig7f(env: ExperimentEnv, suites: List[R2RSuite]) -> ExperimentResult:
    """Fig 7-(f): region-based answering time per method vs batch size."""
    xs = [s.size for s in suites]
    series = {m: [s.answer_seconds[m] for s in suites] for m in R2R_METHODS}
    rendered = render_series("|Q|", xs, series, title="Fig 7-(f): R2R query time (s)")
    return ExperimentResult("fig7f", xs, series, rendered=rendered)


def run_table2(env: ExperimentEnv, suites: List[R2RSuite]) -> ExperimentResult:
    """Table II: average and max error (%) of R2R vs k-Path."""
    xs = [s.size for s in suites]
    rows = []
    series: Dict[str, List[float]] = {
        "r2r_avg": [],
        "kpath_avg": [],
        "r2r_max": [],
        "kpath_max": [],
    }
    for s in suites:
        r2r = s.errors["r2r-s"]
        kp = s.errors["k-path"]
        series["r2r_avg"].append(r2r.average_error_pct)
        series["kpath_avg"].append(kp.average_error_pct)
        series["r2r_max"].append(r2r.max_error_pct)
        series["kpath_max"].append(kp.max_error_pct)
        rows.append(
            [
                s.size,
                f"{r2r.average_error_pct:.3f}",
                f"{kp.average_error_pct:.3f}",
                f"{r2r.max_error_pct:.3f}",
                f"{kp.max_error_pct:.3f}",
            ]
        )
    rendered = render_table(
        ["|Q|", "R2R avg (%)", "k-Path avg (%)", "R2R max (%)", "k-Path max (%)"],
        rows,
        title="Table II: region-based error",
    )
    return ExperimentResult("table2", xs, series, rendered=rendered)


def run_fig7d_vnn(env: ExperimentEnv, suites: List[CacheSuite]) -> ExperimentResult:
    """Supplementary: Fig 7-(d) in visited-node-number terms.

    VNN is the paper's machine-independent cost measure C(q); unlike wall
    time it is deterministic for a given seed, so benchmark shape checks
    anchor on it.
    """
    xs = [s.size for s in suites]
    series = {m: [float(s.visited[m]) for s in suites] for m in CACHE_METHODS}
    rendered = render_series(
        "|Q|", xs, series, title="Fig 7-(d) supplement: visited nodes (VNN)"
    )
    return ExperimentResult("fig7d_vnn", xs, series, rendered=rendered)


def run_fig7f_vnn(env: ExperimentEnv, suites: List[R2RSuite]) -> ExperimentResult:
    """Supplementary: Fig 7-(f) in VNN terms (deterministic)."""
    xs = [s.size for s in suites]
    series = {m: [float(s.visited[m]) for s in suites] for m in R2R_METHODS}
    rendered = render_series(
        "|Q|", xs, series, title="Fig 7-(f) supplement: visited nodes (VNN)"
    )
    return ExperimentResult("fig7f_vnn", xs, series, rendered=rendered)


# ----------------------------------------------------------------------
# Figure 8: multi-server makespan + index construction
# ----------------------------------------------------------------------
def run_fig8(
    env: ExperimentEnv,
    size: int = 600,
    num_servers: int = 40,
    eta: float = DEFAULT_ETA,
    include_indexes: bool = True,
    index_scale_cap: int = 4000,
    measure_workers: Optional[int] = None,
) -> ExperimentResult:
    """Fig 8: 40-server makespan per method, plus CH/PLL construction time.

    Per-cluster wall times are measured single-threaded (real code), then
    scheduled on ``num_servers`` with LPT — see
    :mod:`repro.analysis.parallel` for why this reproduces the paper's
    thread experiment faithfully under the GIL.

    ``measure_workers=k`` additionally runs the ``slc-s`` dispatch on
    ``k`` real worker processes (:class:`repro.parallel.ParallelBatchEngine`)
    and reports the measured makespan, speedup, utilisation and queue wait
    next to the LPT prediction for the same ``k``.
    """
    lo, hi = env.cache_band
    workload = env.fresh_workload(404)
    queries = workload.batch(size, min_dist=lo, max_dist=hi)
    makespans: Dict[str, float] = {}

    # A*: every query is an independent work unit.
    unit_costs: List[float] = []
    answerer = OneByOneAnswerer(env.graph)
    for q in queries:
        t0 = time.perf_counter()
        answerer.answer(QuerySet([q]))
        unit_costs.append(time.perf_counter() - t0)
    makespans["astar"] = lpt_makespan(unit_costs, num_servers).makespan_seconds

    # Local cache: a cluster (cache locality) is the work unit.
    sse = SearchSpaceDecomposer(env.graph).decompose(queries)
    gc = GlobalCacheAnswerer(env.graph)
    log, _ = split_log_and_stream(queries, 0.2)
    gc.build(log)
    lc = LocalCacheAnswerer(env.graph, max(gc.cache_bytes, 1), order="longest")
    cluster_costs = []
    for cluster in sse:
        mini = Decomposition([cluster], sse.method, 0.0)
        t0 = time.perf_counter()
        lc.answer(mini)
        cluster_costs.append(time.perf_counter() - t0)
    makespans["slc-s"] = lpt_makespan(cluster_costs, num_servers).makespan_seconds

    # The long band: per-query A* as the reference, then R2R.
    r_lo, r_hi = env.r2r_band
    long_queries = workload.batch(size, min_dist=r_lo, max_dist=r_hi)
    long_costs = []
    for q in long_queries:
        t0 = time.perf_counter()
        answerer.answer(QuerySet([q]))
        long_costs.append(time.perf_counter() - t0)
    makespans["astar-long"] = lpt_makespan(long_costs, num_servers).makespan_seconds

    cc = CoClusteringDecomposer(env.graph, eta=eta).decompose(long_queries)
    r2r = RegionToRegionAnswerer(env.graph, eta=eta, selection="longest")
    r2r_costs = []
    for cluster in cc:
        mini = Decomposition([cluster], cc.method, 0.0)
        t0 = time.perf_counter()
        r2r.answer(mini)
        r2r_costs.append(time.perf_counter() - t0)
    makespans["r2r-s"] = lpt_makespan(r2r_costs, num_servers).makespan_seconds

    extra: Dict[str, object] = {"num_servers": num_servers, "size": size}
    if measure_workers is not None and measure_workers > 0:
        from ..parallel import ParallelBatchEngine

        engine = ParallelBatchEngine(
            env.graph,
            workers=measure_workers,
            answerer_kind="local-cache",
            answerer_kwargs={
                "cache_bytes": max(gc.cache_bytes, 1),
                "order": "longest",
            },
        )
        with engine:
            outcome = engine.execute(sse, method="slc-s")
        measured = outcome.report.schedule_result()
        predicted = lpt_makespan(cluster_costs, measured.num_servers)
        makespans[f"slc-s-mp{measured.num_servers}"] = measured.makespan_seconds
        makespans[f"slc-s-lpt{predicted.num_servers}"] = predicted.makespan_seconds
        extra["measured_workers"] = measured.num_servers
        extra["measured_speedup"] = measured.speedup
        extra["predicted_speedup"] = predicted.speedup
        extra["measured_utilisation"] = measured.utilisation
        extra["mean_queue_wait_seconds"] = measured.mean_queue_wait_seconds
        extra["fallback_units"] = outcome.report.fallbacks
    if include_indexes:
        from ..index.arcflags import ArcFlags
        from ..index.ch import ContractionHierarchy
        from ..index.pll import PrunedLandmarkLabeling

        index_graph = env.graph
        if env.graph.num_vertices > index_scale_cap:
            index_graph = beijing_like(scale="tiny", seed=env.seed)
            extra["index_graph_vertices"] = index_graph.num_vertices
        ch = ContractionHierarchy(index_graph)
        pll = PrunedLandmarkLabeling(index_graph)
        af = ArcFlags(index_graph, cells_per_side=4)
        makespans["ch-construction"] = ch.construction_seconds
        makespans["pll-construction"] = pll.construction_seconds
        makespans["arcflags-construction"] = af.construction_seconds

    rows = [[name, seconds] for name, seconds in makespans.items()]
    rendered = render_table(
        ["method", f"{num_servers}-server time (s)"],
        rows,
        title=f"Fig 8: multi-server makespan, |Q|={size}",
    )
    rendered += "\n\n" + render_bars(
        list(makespans.keys()),
        list(makespans.values()),
        title="log-scale seconds (the paper's presentation)",
        log_scale=True,
    )
    return ExperimentResult(
        "fig8",
        list(makespans.keys()),
        {"seconds": list(makespans.values())},
        extra=extra,
        rendered=rendered,
    )
