"""Exporting batch results and experiment series to CSV / JSON.

A deployment wants the per-query answers on disk (billing, auditing) and
the experiment series in a machine-readable form (plotting outside this
repo).  Both are plain-stdlib writers with stable column orders.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import List, Optional, Union

from ..core.results import BatchAnswer

PathLike = Union[str, Path]

ANSWER_COLUMNS = ("source", "target", "distance", "exact", "visited", "path_length")


def answers_to_csv(batch: BatchAnswer, path: PathLike) -> int:
    """Write one row per answered query; returns the row count."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(ANSWER_COLUMNS)
        count = 0
        for q, r in batch.answers:
            writer.writerow(
                [
                    q.source,
                    q.target,
                    "" if math.isinf(r.distance) else repr(r.distance),
                    int(r.exact),
                    r.visited,
                    len(r.path),
                ]
            )
            count += 1
    return count


def batch_to_json(batch: BatchAnswer, path: Optional[PathLike] = None) -> dict:
    """Serialise a batch answer (summary + per-query rows) to JSON.

    Returns the payload; writes it to ``path`` when given.
    """
    payload = {
        "method": batch.method,
        "summary": batch.summary(),
        "answers": [
            {
                "source": q.source,
                "target": q.target,
                "distance": None if math.isinf(r.distance) else r.distance,
                "exact": r.exact,
                "visited": r.visited,
            }
            for q, r in batch.answers
        ],
    }
    if path is not None:
        Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return payload


def series_to_csv(result, path: PathLike) -> int:
    """Write an :class:`ExperimentResult`'s series as tidy CSV rows.

    Columns: ``x, series, value`` — one row per (x, series) point.
    """
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x", "series", "value"])
        count = 0
        for name, values in result.series.items():
            for x, value in zip(result.xs, values):
                writer.writerow([x, name, repr(float(value))])
                count += 1
    return count


def series_points(result) -> List[tuple]:
    """Flatten an :class:`ExperimentResult` to ``(key, value)`` pairs.

    The key is ``"<series>[<x>]"`` — stable across runs because both the
    series names and the x axis are part of the experiment definition —
    which is the metric naming the benchmark harness (:mod:`repro.bench`)
    uses when persisting a figure/table as schema'd JSON.
    """
    points: List[tuple] = []
    for name, values in result.series.items():
        for x, value in zip(result.xs, values):
            points.append((f"{name}[{x}]", float(value)))
    return points


def experiment_to_json(result, path: Optional[PathLike] = None) -> dict:
    """Serialise an :class:`ExperimentResult`'s data (not the render) to JSON."""
    payload = {
        "experiment": result.experiment,
        "xs": list(result.xs),
        "series": {name: [float(v) for v in values]
                   for name, values in result.series.items()},
    }
    if path is not None:
        Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")
    return payload


def load_answers_csv(path: PathLike) -> List[dict]:
    """Read back a CSV written by :func:`answers_to_csv` as dict rows."""
    rows: List[dict] = []
    with open(path, newline="", encoding="utf-8") as handle:
        for record in csv.DictReader(handle):
            rows.append(
                {
                    "source": int(record["source"]),
                    "target": int(record["target"]),
                    "distance": float(record["distance"]) if record["distance"] else math.inf,
                    "exact": bool(int(record["exact"])),
                    "visited": int(record["visited"]),
                    "path_length": int(record["path_length"]),
                }
            )
    return rows
