"""Paper-style plain-text tables and series for benchmark output."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

Number = Union[int, float]


def format_cell(value, precision: int = 3) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.2e}"
        return f"{value:.{precision}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table (monospace, pipe-separated)."""
    cells = [[format_cell(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: Sequence,
    series: Dict[str, Sequence[Number]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render figure-style data: one row per x value, one column per line."""
    headers = [x_label] + list(series.keys())
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i] for name in series])
    return render_table(headers, rows, title=title, precision=precision)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    title: Optional[str] = None,
    width: int = 40,
    log_scale: bool = False,
) -> str:
    """A horizontal ASCII bar chart (the terminal stand-in for a figure).

    ``log_scale`` reproduces the paper's Figure 8 presentation where index
    construction dwarfs the batch times by orders of magnitude.
    """
    import math

    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")

    def transform(v: float) -> float:
        if not log_scale:
            return v
        # Map the value range onto log space, guarding zeros.
        floor = min((x for x in values if x > 0), default=1.0) / 10.0
        return math.log10(max(v, floor) / floor)

    scaled = [transform(v) for v in values]
    peak = max(scaled) or 1.0
    label_w = max(len(l) for l in labels)
    lines: List[str] = []
    if title:
        lines.append(title)
    for label, value, s in zip(labels, values, scaled):
        bar = "#" * max(1 if value > 0 else 0, round(width * s / peak))
        lines.append(f"{label.ljust(label_w)} | {bar} {format_cell(value)}")
    return "\n".join(lines)


def check_monotone(values: Sequence[Number], increasing: bool = True, slack: float = 0.0) -> bool:
    """Whether a series is (approximately) monotone; used by shape asserts.

    ``slack`` tolerates bounded noise: each step may violate monotonicity by
    at most ``slack`` (absolute).
    """
    for a, b in zip(values, values[1:]):
        if increasing and b < a - slack:
            return False
        if not increasing and b > a + slack:
            return False
    return True
