"""Evaluation metrics matching Section VI's definitions.

* hit ratio ``R_h`` (:func:`hit_ratio`) — the share of cache lookups that
  hit, **excluding the singleton (unclustered) queries** from the
  denominator: a query alone in its cluster gets a fresh empty cache, so
  its guaranteed miss says nothing about the decomposition's coherence.
  ``BatchAnswer.hit_ratio`` is the *raw* ratio over all lookups; this
  module implements the paper's corrected definition;
* approximation error ``eps = (d* - d) / d`` computed per approximate
  answer against an exact oracle, averaged *excluding the accurate ones*
  (the paper's convention for Table II), plus the maximum;
* cache sizes in MB (Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.results import BatchAnswer
from ..core.wspd import relative_error
from ..queries.query import Query
from ..search.astar import a_star


@dataclass
class ErrorReport:
    """Approximation quality of one batch answer."""

    average_error: float
    max_error: float
    approximate_count: int
    exact_count: int

    @property
    def average_error_pct(self) -> float:
        return self.average_error * 100.0

    @property
    def max_error_pct(self) -> float:
        return self.max_error * 100.0


def exact_distances(graph, queries) -> Dict[Query, float]:
    """Ground-truth distances per distinct query (A* oracle)."""
    out: Dict[Query, float] = {}
    for q in queries:
        if q not in out:
            out[q] = a_star(graph, q.source, q.target).distance
    return out


def error_report(
    graph,
    batch: BatchAnswer,
    oracle: Optional[Dict[Query, float]] = None,
) -> ErrorReport:
    """Compute the paper's average/max error for ``batch``.

    The average is over approximate answers only ("excluding the accurate
    ones", Section VI-A2); exact answers still participate in the max (as
    zero).  ``oracle`` may carry precomputed ground truth.
    """
    if oracle is None:
        oracle = exact_distances(graph, (q for q, _ in batch.answers))
    errors: List[float] = []
    exact_count = 0
    for q, result in batch.answers:
        if result.exact:
            exact_count += 1
            continue
        truth = oracle.get(q)
        if truth is None or math.isinf(truth) or math.isinf(result.distance):
            continue
        errors.append(max(0.0, relative_error(truth, result.distance)))
    if errors:
        return ErrorReport(
            average_error=sum(errors) / len(errors),
            max_error=max(errors),
            approximate_count=len(errors),
            exact_count=exact_count,
        )
    return ErrorReport(0.0, 0.0, 0, exact_count)


def hit_ratio(batch: BatchAnswer, exclude_singletons: bool = True) -> float:
    """Section VI's cache hit ratio ``R_h`` for one answered batch.

    ``R_h = hits / (hits + misses - singletons)``: lookups made by queries
    that ended up alone in their cluster are removed from the denominator,
    because a singleton's first (and only) lookup hits an empty cache by
    construction — counting it would penalise the decomposition for
    workload sparsity rather than for poor clustering.  Pass
    ``exclude_singletons=False`` for the raw ratio (identical to
    :attr:`BatchAnswer.hit_ratio <repro.core.results.BatchAnswer.hit_ratio>`).
    """
    lookups = batch.cache_hits + batch.cache_misses
    if exclude_singletons:
        lookups -= batch.singleton_queries
    if lookups <= 0:
        return 0.0
    return batch.cache_hits / lookups


def bytes_to_mb(size_bytes: float) -> float:
    return size_bytes / (1024.0 * 1024.0)


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def percentile(values, q: float) -> float:
    """Linear-interpolation percentile of a non-empty value list (q in [0, 100])."""
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile of empty data")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac
