"""Evaluation metrics matching Section VI's definitions.

* hit ratio ``R_h`` (:func:`hit_ratio`) — the share of cache lookups that
  hit, **excluding the singleton (unclustered) queries** from the
  denominator: a query alone in its cluster gets a fresh empty cache, so
  its guaranteed miss says nothing about the decomposition's coherence.
  ``BatchAnswer.hit_ratio`` is the *raw* ratio over all lookups; this
  module implements the paper's corrected definition;
* approximation error ``eps = (d* - d) / d`` computed per approximate
  answer against an exact oracle, averaged *excluding the accurate ones*
  (the paper's convention for Table II), plus the maximum;
* cache sizes in MB (Table I).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.results import BatchAnswer
from ..core.wspd import relative_error
from ..queries.query import Query
from ..search.astar import a_star


@dataclass
class ErrorReport:
    """Approximation quality of one batch answer."""

    average_error: float
    max_error: float
    approximate_count: int
    exact_count: int

    @property
    def average_error_pct(self) -> float:
        return self.average_error * 100.0

    @property
    def max_error_pct(self) -> float:
        return self.max_error * 100.0


def exact_distances(graph, queries) -> Dict[Query, float]:
    """Ground-truth distances per distinct query (A* oracle)."""
    out: Dict[Query, float] = {}
    for q in queries:
        if q not in out:
            out[q] = a_star(graph, q.source, q.target).distance
    return out


def error_report(
    graph,
    batch: BatchAnswer,
    oracle: Optional[Dict[Query, float]] = None,
) -> ErrorReport:
    """Compute the paper's average/max error for ``batch``.

    The average is over approximate answers only ("excluding the accurate
    ones", Section VI-A2); exact answers still participate in the max (as
    zero).  ``oracle`` may carry precomputed ground truth.
    """
    if oracle is None:
        oracle = exact_distances(graph, (q for q, _ in batch.answers))
    errors: List[float] = []
    exact_count = 0
    for q, result in batch.answers:
        if result.exact:
            exact_count += 1
            continue
        truth = oracle.get(q)
        if truth is None or math.isinf(truth) or math.isinf(result.distance):
            continue
        errors.append(max(0.0, relative_error(truth, result.distance)))
    if errors:
        return ErrorReport(
            average_error=sum(errors) / len(errors),
            max_error=max(errors),
            approximate_count=len(errors),
            exact_count=exact_count,
        )
    return ErrorReport(0.0, 0.0, 0, exact_count)


def hit_ratio(batch: BatchAnswer, exclude_singletons: bool = True) -> float:
    """Section VI's cache hit ratio ``R_h`` for one answered batch.

    ``R_h = hits / (hits + misses - singletons)``: lookups made by queries
    that ended up alone in their cluster are removed from the denominator,
    because a singleton's first (and only) lookup hits an empty cache by
    construction — counting it would penalise the decomposition for
    workload sparsity rather than for poor clustering.  Pass
    ``exclude_singletons=False`` for the raw ratio (identical to
    :attr:`BatchAnswer.hit_ratio <repro.core.results.BatchAnswer.hit_ratio>`).
    """
    lookups = batch.cache_hits + batch.cache_misses
    if exclude_singletons:
        lookups -= batch.singleton_queries
    if lookups <= 0:
        return 0.0
    return batch.cache_hits / lookups


def bytes_to_mb(size_bytes: float) -> float:
    return size_bytes / (1024.0 * 1024.0)


def mean(values) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


#: Sentinel for :func:`percentile`'s ``default`` — "raise on empty data".
_RAISE = object()


def percentile(values, q: float, *, default=_RAISE, assume_sorted: bool = False):
    """Linear-interpolation percentile with an explicit empty-data policy.

    This is the repo's one percentile implementation — the streaming
    service's :func:`~repro.streaming.service.latency_percentile` and the
    analysis tables both delegate here, so the two can never drift apart
    again (a differential test pins the interpolation against
    :func:`statistics.quantiles`).

    ``q`` is clamped to ``[0, 100]``.  The empty-data policy is chosen at
    the call site: by default an empty ``values`` raises ``ValueError``
    (an analysis table asking for a percentile of nothing is a bug);
    pass ``default=0.0`` to get a neutral value instead (a latency report
    before any query has finished is not a bug).  ``assume_sorted=True``
    skips the sort for callers that maintain sorted samples.

    Interpolated values are clamped to the bracketing samples so
    percentiles stay monotone in ``q`` even when the floating-point
    interpolation rounds 1 ULP outside ``[ordered[lo], ordered[hi]]``.
    """
    ordered = list(values) if assume_sorted else sorted(values)
    if not ordered:
        if default is _RAISE:
            raise ValueError("percentile of empty data")
        return default
    if len(ordered) == 1:
        return ordered[0]
    q = min(max(q, 0.0), 100.0)
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(math.floor(rank))
    hi = int(math.ceil(rank))
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    value = ordered[lo] * (1 - frac) + ordered[hi] * frac
    return min(max(value, ordered[lo]), ordered[hi])
