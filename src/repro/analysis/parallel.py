"""Multi-server dispatch simulation for the Figure 8 experiment.

The paper runs 40 threads "to simulate 40 servers" on a 40-hardware-thread
box.  CPython's GIL makes real threads meaningless for CPU-bound search, so
this module reproduces the experiment's *quantity of interest* — the batch
makespan under k-way dispatch — exactly the way a dispatcher would: measure
the real single-thread cost of every work unit (a query cluster or a single
query), then schedule the units on k servers with the classic LPT
(longest-processing-time-first) greedy and report the resulting makespan.

LPT is within 4/3 of the optimal makespan, and matches what a work-stealing
pool converges to, so relative method rankings are preserved.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs import MetricsSnapshot


@dataclass
class ScheduleResult:
    """Outcome of a k-server dispatch, simulated or measured.

    :func:`lpt_makespan` produces ``source="simulated"`` results; a real
    :class:`repro.parallel.ParallelBatchEngine` run reports itself through
    the same container with ``source="measured"`` (see
    :meth:`repro.parallel.ExecutionReport.schedule_result`), so predictions
    and measurements render through one code path.
    """

    num_servers: int
    makespan_seconds: float
    total_work_seconds: float
    per_server_seconds: List[float] = field(default_factory=list)
    #: ``"simulated"`` (LPT prediction) or ``"measured"`` (multiprocess run).
    source: str = "simulated"
    #: Mean submit-to-pickup latency per work unit (measured runs only).
    mean_queue_wait_seconds: float = 0.0
    #: Work units answered in the parent after a worker failure or timeout
    #: (measured runs only; simulated schedules never fall back).
    fallback_units: int = 0
    #: Fleet-wide metrics snapshot of the run (measured runs with a live
    #: registry only).
    metrics: Optional[MetricsSnapshot] = None

    @property
    def speedup(self) -> float:
        """Total work / makespan: achieved parallelism (<= num_servers).

        A schedule with no work (zero makespan) reports 0.0 rather than
        pretending to perfect ``num_servers``-way parallelism.
        """
        if self.makespan_seconds <= 0:
            return 0.0
        return self.total_work_seconds / self.makespan_seconds

    @property
    def utilisation(self) -> float:
        return self.speedup / self.num_servers if self.num_servers else 0.0


def lpt_makespan(unit_costs: Sequence[float], num_servers: int) -> ScheduleResult:
    """Schedule ``unit_costs`` on ``num_servers`` with LPT; return the makespan.

    Work units are indivisible (a cluster must be answered by one server,
    since its cache is local to it).
    """
    if num_servers < 1:
        raise ConfigurationError("need at least one server")
    costs = sorted((c for c in unit_costs if c > 0), reverse=True)
    loads = [0.0] * num_servers
    heap: List[Tuple[float, int]] = [(0.0, i) for i in range(num_servers)]
    heapq.heapify(heap)
    for cost in costs:
        load, i = heapq.heappop(heap)
        load += cost
        loads[i] = load
        heapq.heappush(heap, (load, i))
    total = sum(costs)
    return ScheduleResult(
        num_servers=num_servers,
        makespan_seconds=max(loads) if loads else 0.0,
        total_work_seconds=total,
        per_server_seconds=loads,
    )


def cluster_costs_from_answers(answers, cluster_of) -> List[float]:
    """Aggregate measured per-answer costs into per-cluster work units.

    ``answers`` is an iterable of ``(unit_id, seconds)``; ``cluster_of``
    maps a unit id to its cluster id.  Returns the per-cluster totals.
    """
    totals = {}
    for unit_id, seconds in answers:
        key = cluster_of(unit_id)
        totals[key] = totals.get(key, 0.0) + seconds
    return list(totals.values())
