"""Real multi-core batch answering via multiprocessing.

:mod:`repro.analysis.parallel` *simulates* the paper's 40-server dispatch
(exact under the GIL); this module actually runs it when multiple cores
are available.  Work units are query clusters (their caches are local
state, so a cluster never crosses workers).  Each worker process rebuilds
the road network once from a serialised spec in its initialiser, then
answers the clusters it is handed.

Results are exact and identical to the single-process answerers; only
wall-clock changes.  Use for genuinely large batches — process start-up
and network rebuild cost a fixed ~100 ms per worker, so small batches are
faster single-process (the ``min_queries_per_worker`` guard enforces
that).
"""

from __future__ import annotations

import os
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.clusters import Decomposition, QueryCluster
from ..core.results import BatchAnswer
from ..exceptions import ConfigurationError
from ..queries.query import Query

# Per-process worker state (populated by _init_worker).
_worker_graph = None
_worker_answerer = None


def _init_worker(network_path: str, answerer_kind: str, answerer_kwargs: dict) -> None:
    global _worker_graph, _worker_answerer
    from ..network.io import load_text

    _worker_graph = load_text(network_path)
    if answerer_kind == "local-cache":
        from ..core.local_cache import LocalCacheAnswerer

        _worker_answerer = LocalCacheAnswerer(_worker_graph, **answerer_kwargs)
    elif answerer_kind == "r2r":
        from ..core.r2r import RegionToRegionAnswerer

        _worker_answerer = RegionToRegionAnswerer(_worker_graph, **answerer_kwargs)
    else:  # pragma: no cover - guarded before dispatch
        raise ConfigurationError(f"unknown answerer kind {answerer_kind!r}")


def _answer_cluster(payload: Tuple[str, List[Tuple[int, int]]]):
    """Answer one cluster in the worker; returns picklable rows."""
    kind, pairs = payload
    cluster = QueryCluster(
        queries=[Query(s, t) for s, t in pairs], kind=kind
    )
    mini = Decomposition([cluster], "mp", 0.0)
    answer = _worker_answerer.answer(mini)
    rows = [
        (q.source, q.target, r.distance, r.exact, r.visited)
        for q, r in answer.answers
    ]
    return rows, answer.visited, answer.cache_hits, answer.cache_misses


@dataclass
class ParallelResult:
    """Outcome of a multiprocess run (a picklable BatchAnswer summary)."""

    answer: BatchAnswer
    workers: int


def parallel_answer(
    graph,
    decomposition: Decomposition,
    answerer_kind: str = "local-cache",
    answerer_kwargs: Optional[dict] = None,
    workers: int = 2,
    min_queries_per_worker: int = 50,
) -> ParallelResult:
    """Answer a decomposition across worker processes.

    Parameters mirror the single-process answerers: ``answerer_kind`` is
    ``"local-cache"`` or ``"r2r"`` with ``answerer_kwargs`` forwarded to
    the constructor (the graph argument is injected per worker).

    Falls back to one worker when the batch is too small to amortise
    process start-up.
    """
    if workers < 1:
        raise ConfigurationError("workers must be at least 1")
    if answerer_kind not in ("local-cache", "r2r"):
        raise ConfigurationError(f"unknown answerer kind {answerer_kind!r}")
    kwargs = dict(answerer_kwargs or {})
    total_queries = decomposition.num_queries
    effective = max(1, min(workers, total_queries // max(min_queries_per_worker, 1) or 1))

    from ..network.io import save_text

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".gr", delete=False
    ) as handle:
        network_path = handle.name
    try:
        save_text(graph, network_path)
        payloads = [
            (c.kind, [(q.source, q.target) for q in c.queries])
            for c in decomposition
            if len(c)
        ]
        batch = BatchAnswer(
            method=f"mp[{answerer_kind}]",
            decompose_seconds=decomposition.elapsed_seconds,
            num_clusters=len(decomposition.clusters),
        )
        import time

        start = time.perf_counter()
        with ProcessPoolExecutor(
            max_workers=effective,
            initializer=_init_worker,
            initargs=(network_path, answerer_kind, kwargs),
        ) as pool:
            for rows, visited, hits, misses in pool.map(_answer_cluster, payloads):
                from ..search.common import PathResult

                for s, t, d, exact, vnn in rows:
                    batch.answers.append(
                        (Query(s, t), PathResult(s, t, d, [], vnn, exact))
                    )
                batch.visited += visited
                batch.cache_hits += hits
                batch.cache_misses += misses
        batch.answer_seconds = time.perf_counter() - start
        return ParallelResult(answer=batch, workers=effective)
    finally:
        os.unlink(network_path)
