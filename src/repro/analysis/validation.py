"""Validating the search-space oracle against real searches.

Section IV-B's whole premise is that an ellipse over grid cells predicts
where the generalized A* will actually search.  The paper asserts the
model (Figure 2) without measuring it; this module closes that gap:

* run a real (generalized) A* search and collect the cells its settled
  vertices fall into — the *actual* search space;
* compare them to the oracle's covered cells — the *predicted* space —
  as recall (how much of the real search the prediction covers) and
  precision (how much of the prediction the search actually uses).

High recall is what the SSE decomposition needs: a query whose endpoints
lie inside a cluster's covered cells should really share the cluster's
search area.  Precision measures how loose the ellipse is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.search_space import SearchSpaceOracle
from ..network.grid import GridIndex
from ..queries.query import Query

Cell = Tuple[int, int]


def astar_settled_vertices(graph, source: int, target: int) -> Set[int]:
    """The set of vertices a (Euclidean) A* settles for this query."""
    xs, ys = graph.xs, graph.ys
    scale = graph.heuristic_scale
    tx, ty = xs[target], ys[target]
    dist: Dict[int, float] = {source: 0.0}
    done: Set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    adj = graph._adj  # noqa: SLF001
    while heap:
        _, u = heappop(heap)
        if u in done:
            continue
        done.add(u)
        if u == target:
            break
        du = dist[u]
        for v, w in adj[u]:
            v = int(v)
            if v in done:
                continue
            nd = du + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                h = math.hypot(xs[v] - tx, ys[v] - ty) * scale
                heappush(heap, (nd + h, v))
    return done


@dataclass
class CoverageReport:
    """Predicted-vs-actual search-space agreement for one query."""

    query: Query
    predicted_cells: int
    actual_cells: int
    recall: float  # |actual ∩ predicted| / |actual|
    precision: float  # |actual ∩ predicted| / |predicted|


def validate_search_space(
    graph,
    queries: Sequence[Query],
    oracle: Optional[SearchSpaceOracle] = None,
) -> List[CoverageReport]:
    """Measure the oracle's recall/precision over real A* runs."""
    if oracle is None:
        oracle = SearchSpaceOracle(graph)
    grid = oracle.grid
    reports: List[CoverageReport] = []
    for q in queries:
        predicted = oracle.estimate(q).covered_cells
        settled = astar_settled_vertices(graph, q.source, q.target)
        actual = {grid.cell_of_vertex(v) for v in settled}
        if not actual:
            continue
        overlap = len(actual & predicted)
        reports.append(
            CoverageReport(
                query=q,
                predicted_cells=len(predicted),
                actual_cells=len(actual),
                recall=overlap / len(actual),
                precision=overlap / len(predicted) if predicted else 0.0,
            )
        )
    return reports


def summarize_coverage(reports: Sequence[CoverageReport]) -> Dict[str, float]:
    """Mean recall/precision plus size statistics across queries."""
    if not reports:
        return {"queries": 0.0, "recall": 0.0, "precision": 0.0, "inflation": 0.0}
    recall = sum(r.recall for r in reports) / len(reports)
    precision = sum(r.precision for r in reports) / len(reports)
    inflation = sum(
        r.predicted_cells / r.actual_cells for r in reports if r.actual_cells
    ) / len(reports)
    return {
        "queries": float(len(reports)),
        "recall": recall,
        "precision": precision,
        "inflation": inflation,  # predicted/actual cell-count ratio
    }
