"""Process-local metrics registry: counters, gauges, fixed-bucket histograms.

Design constraints (they shape every signature here):

* **Lock-free hot path.**  Instruments are plain objects whose update
  methods do one attribute increment (``self.value += n``) — atomic enough
  under the GIL, no locks, no allocation.  Hot loops go further and keep a
  *local* integer, flushing it into a counter once per call, so the
  per-event cost is a plain local increment.
* **No dict lookups per event.**  ``registry.counter(name)`` does its dict
  lookup once, at instrumentation-point setup (typically once per search
  call or per cluster), and hands back the instrument object; events then
  touch only attributes.
* **Free when disabled.**  The module-level active registry defaults to
  :data:`NULL_REGISTRY`, whose ``enabled`` is ``False`` and whose
  instruments are shared no-ops — disabled instrumentation costs one
  attribute check (``if reg.enabled:``) per call site.

Aggregation across worker processes goes through
:class:`MetricsSnapshot`: counters sum, gauges keep their maximum,
histograms merge bucket-wise (identical bounds required), and span records
concatenate.  ``workers=k`` runs therefore report fleet-wide totals.
"""

from __future__ import annotations

from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..exceptions import ObservabilityError
from .spans import SpanTracer

#: Default histogram bounds for durations in seconds (upper bucket edges;
#: an implicit +inf bucket catches the overflow).
TIME_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
    2.5, 5.0, 10.0,
)

#: Default histogram bounds for small cardinalities (cluster sizes...).
SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000)


class Counter:
    """Monotonically increasing count; ``add`` is the whole hot-path API."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        self.value += amount

    inc = add


class Gauge:
    """A point-in-time value (pool size, live caches...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def track_max(self, value: float) -> None:
        if value > self.value:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` semantics.

    ``bounds`` are the finite upper bucket edges, strictly increasing; an
    implicit ``+inf`` bucket catches overflow.  A value exactly on an edge
    belongs to that edge's bucket (``value <= bound``).  Negative values
    are rejected — every histogram here measures a duration or a size, so
    a negative observation is always an instrumentation bug worth
    surfacing, not data.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ObservabilityError(f"histogram {name!r} needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name!r} bounds must be strictly increasing: {bounds}"
            )
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if value < 0:
            raise ObservabilityError(
                f"histogram {self.name!r} rejects negative value {value!r}"
            )
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class _NullCounter:
    __slots__ = ()

    def add(self, amount: int = 1) -> None:
        pass

    inc = add


class _NullGauge:
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def track_max(self, value: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()
_NULL_SPAN = _NullSpan()


@dataclass
class MetricsSnapshot:
    """A frozen, picklable view of one registry — the cross-process unit.

    ``histograms`` maps name to ``{"bounds": [...], "counts": [...],
    "sum": float, "count": int}`` (counts are per-bucket, not cumulative;
    the last slot is the +inf bucket).  ``spans`` holds
    :meth:`~repro.obs.spans.SpanRecord.to_dict` dicts.
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` into self: sum, max, bucket-wise add, concat."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None or value > mine:
                self.gauges[name] = value
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if list(mine["bounds"]) != list(hist["bounds"]):
                raise ObservabilityError(
                    f"cannot merge histogram {name!r}: bounds differ "
                    f"({mine['bounds']} vs {hist['bounds']})"
                )
            mine["counts"] = [a + b for a, b in zip(mine["counts"], hist["counts"])]
            mine["sum"] += hist["sum"]
            mine["count"] += hist["count"]
        self.spans.extend(dict(s) for s in other.spans)
        return self

    def to_dict(self) -> Dict[str, Any]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
                for name, h in self.histograms.items()
            },
            "spans": [dict(s) for s in self.spans],
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "MetricsSnapshot":
        return MetricsSnapshot(
            counters=dict(data.get("counters", {})),
            gauges=dict(data.get("gauges", {})),
            histograms={
                name: {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "sum": h["sum"],
                    "count": h["count"],
                }
                for name, h in data.get("histograms", {}).items()
            },
            spans=[dict(s) for s in data.get("spans", [])],
        )


class MetricsRegistry:
    """A live set of instruments plus a span tracer.

    Instruments are created on first use and then returned by identity, so
    call sites can (and should) hold the returned object across events.
    Registration is name-keyed: asking for an existing name with a
    conflicting kind or bucket layout raises
    :class:`~repro.exceptions.ObservabilityError` rather than silently
    splitting the series.
    """

    enabled = True

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self.tracer = SpanTracer()
        self._imported_spans: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            self._check_free(name, self._counters)
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            self._check_free(name, self._gauges)
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            self._check_free(name, self._histograms)
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(float(b) for b in bounds):
            raise ObservabilityError(
                f"histogram {name!r} already registered with bounds "
                f"{instrument.bounds}, requested {tuple(bounds)}"
            )
        return instrument

    def _check_free(self, name: str, owner: Dict[str, Any]) -> None:
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not owner and name in kind:
                raise ObservabilityError(
                    f"metric name {name!r} already registered as a different kind"
                )

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any):
        return self.tracer.span(name, **attrs)

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state (instruments keep counting afterwards)."""
        return MetricsSnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            histograms={
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "sum": h.sum,
                    "count": h.count,
                }
                for name, h in self._histograms.items()
            },
            spans=[r.to_dict() for r in self.tracer.records] + [
                dict(s) for s in self._imported_spans
            ],
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a (worker) snapshot into this live registry."""
        for name, value in snapshot.counters.items():
            self.counter(name).add(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).track_max(value)
        for name, hist in snapshot.histograms.items():
            mine = self.histogram(name, hist["bounds"])
            mine.counts = [a + b for a, b in zip(mine.counts, hist["counts"])]
            mine.sum += hist["sum"]
            mine.count += hist["count"]
        self._imported_spans.extend(dict(s) for s in snapshot.spans)

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._imported_spans.clear()
        self.tracer.clear()


class NullRegistry:
    """The do-nothing registry installed by default.

    Every accessor returns a shared no-op instrument, so instrumented code
    runs unchanged; the only cost left in the hot path is the call site's
    ``if reg.enabled:`` attribute check (and whatever local counting it
    chose to keep).
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, bounds: Sequence[float] = TIME_BUCKETS) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot()

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        pass

    def reset(self) -> None:
        pass


NULL_REGISTRY = NullRegistry()

_ACTIVE = NULL_REGISTRY


def get_registry():
    """The process's active registry (the null registry unless installed)."""
    return _ACTIVE


def set_registry(registry) -> None:
    """Install ``registry`` as the active one; ``None`` restores the null."""
    global _ACTIVE
    _ACTIVE = NULL_REGISTRY if registry is None else registry


@contextmanager
def use_registry(registry):
    """Scope ``registry`` as the active one, restoring the prior on exit."""
    global _ACTIVE
    prior = _ACTIVE
    _ACTIVE = NULL_REGISTRY if registry is None else registry
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = prior
