"""Surfacing: JSON files, Prometheus text exposition, summary tables.

Three consumers, three formats:

* ``--metrics-out FILE`` writes one JSON document (counters, gauges,
  histograms, spans) that CI and notebooks parse;
* :func:`to_prometheus_text` renders the classic ``# TYPE`` / sample-line
  exposition so a future scrape endpoint only needs to serve the string;
* :func:`render_metrics_summary` / :func:`render_stage_table` produce the
  human tables behind ``repro obs summary``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional, Union

from .registry import MetricsSnapshot
from .spans import summarize_spans

SnapshotLike = Union[MetricsSnapshot, Dict[str, Any]]


def _as_dict(snapshot: SnapshotLike) -> Dict[str, Any]:
    if isinstance(snapshot, MetricsSnapshot):
        return snapshot.to_dict()
    return snapshot


def snapshot_to_json(snapshot: SnapshotLike, indent: int = 2) -> str:
    return json.dumps(_as_dict(snapshot), indent=indent, sort_keys=True)


def write_metrics_json(snapshot: SnapshotLike, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(snapshot_to_json(snapshot) + "\n")


def load_metrics_json(path) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str, prefix: str) -> str:
    mangled = name.replace(".", "_").replace("-", "_")
    return f"{prefix}_{mangled}" if prefix else mangled


def _prom_value(value: float) -> str:
    if isinstance(value, float) and math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def to_prometheus_text(snapshot: SnapshotLike, prefix: str = "repro") -> str:
    """The snapshot in Prometheus text exposition format (version 0.0.4).

    Counters get a ``_total`` suffix, histograms emit cumulative
    ``_bucket{le="..."}`` series plus ``_sum`` and ``_count`` — exactly
    what a scraper expects, so wiring an HTTP endpoint later is one
    handler returning this string.
    """
    data = _as_dict(snapshot)
    lines: List[str] = []
    for name in sorted(data.get("counters", {})):
        metric = _prom_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(data['counters'][name])}")
    for name in sorted(data.get("gauges", {})):
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(data['gauges'][name])}")
    for name in sorted(data.get("histograms", {})):
        hist = data["histograms"][name]
        metric = _prom_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{_prom_value(float(bound))}"}} {cumulative}')
        cumulative += hist["counts"][-1]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{metric}_sum {_prom_value(hist['sum'])}")
        lines.append(f"{metric}_count {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# Human-readable summaries
# ----------------------------------------------------------------------
def render_stage_table(spans: Iterable[Dict[str, Any]]) -> str:
    """Per-stage table (count / total / mean / max) from span dicts."""
    stages = summarize_spans(spans)
    if not stages:
        return "(no spans recorded)"
    lines = [f"{'stage':<24} {'count':>7} {'total(s)':>10} {'mean(s)':>10} {'max(s)':>10}"]
    for name in sorted(stages, key=lambda n: -stages[n]["total_seconds"]):
        agg = stages[name]
        lines.append(
            f"{name:<24} {int(agg['count']):>7} {agg['total_seconds']:>10.4f} "
            f"{agg['mean_seconds']:>10.4f} {agg['max_seconds']:>10.4f}"
        )
    return "\n".join(lines)


def render_metrics_summary(snapshot: SnapshotLike) -> str:
    """Counters, gauges, histogram digests and the stage table, as text."""
    data = _as_dict(snapshot)
    lines: List[str] = []
    counters = data.get("counters", {})
    if counters:
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<32} {counters[name]:>14g}")
    gauges = data.get("gauges", {})
    if gauges:
        lines.append("gauges")
        for name in sorted(gauges):
            lines.append(f"  {name:<32} {gauges[name]:>14g}")
    histograms = data.get("histograms", {})
    if histograms:
        lines.append("histograms")
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            lines.append(
                f"  {name:<32} count={count} mean={mean:.6g} sum={hist['sum']:.6g}"
            )
    spans = data.get("spans", [])
    if spans:
        lines.append("stages")
        lines.append(render_stage_table(spans))
    if not lines:
        return "(empty metrics snapshot)"
    return "\n".join(lines)
