"""Runtime observability: metrics registry, span tracing, aggregation.

The live pipeline (search → cache → decomposition → parallel dispatch →
service windows) reports what it does through one process-local
:class:`MetricsRegistry`, installed with :func:`use_registry` /
:func:`set_registry`.  By default the :data:`NULL_REGISTRY` is active and
every instrumentation point costs one attribute check, so the library is
observability-free unless somebody asks.

Quickstart::

    from repro.obs import MetricsRegistry, use_registry

    reg = MetricsRegistry()
    with use_registry(reg):
        BatchProcessor(graph).process(batch, "slc-s")
    snap = reg.snapshot()
    print(snap.counters["search.heap_pops"], snap.counters["cache.hits"])

The helpers below (:func:`record_search`, :func:`record_cache`,
:func:`record_decomposition`) are the single place where the hot layers'
flush-at-end counts turn into named metrics, so the metric naming scheme
lives here and nowhere else.
"""

from __future__ import annotations

from .export import (
    load_metrics_json,
    render_metrics_summary,
    render_stage_table,
    snapshot_to_json,
    to_prometheus_text,
    write_metrics_json,
)
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
    NULL_REGISTRY,
    NullRegistry,
    SIZE_BUCKETS,
    TIME_BUCKETS,
    get_registry,
    set_registry,
    use_registry,
)
from .spans import SpanRecord, SpanTracer, read_jsonl, summarize_spans

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_REGISTRY",
    "NullRegistry",
    "SIZE_BUCKETS",
    "SpanRecord",
    "SpanTracer",
    "TIME_BUCKETS",
    "get_registry",
    "load_metrics_json",
    "read_jsonl",
    "record_cache",
    "record_customize",
    "record_dead_letters",
    "record_deadline",
    "record_decomposition",
    "record_fault",
    "record_freeze",
    "record_journal",
    "record_np_search",
    "record_quarantine",
    "record_retry",
    "record_search",
    "record_shm_attach",
    "record_shm_share",
    "record_spawn_payload",
    "record_stream_cache",
    "record_stream_shed",
    "record_stream_window",
    "record_watchdog",
    "set_breaker_state",
    "set_stream_queue_depth",
    "render_metrics_summary",
    "render_stage_table",
    "set_registry",
    "snapshot_to_json",
    "summarize_spans",
    "to_prometheus_text",
    "use_registry",
    "write_metrics_json",
]


def record_search(settled: int, relaxations: int, heap_pops: int) -> None:
    """Flush one search run's locally-counted work into the registry.

    Searches count with plain local integers inside their loops and call
    this once at the end, so the per-event overhead stays a local
    increment regardless of the registry installed.
    """
    reg = get_registry()
    if reg.enabled:
        reg.counter("search.runs").add(1)
        reg.counter("search.settled").add(settled)
        reg.counter("search.relaxations").add(relaxations)
        reg.counter("search.heap_pops").add(heap_pops)


def record_np_search(
    kind: str, buckets: int, frontier: int, relaxations: int, rows: int = 1
) -> None:
    """Flush one vectorized (numpy) sweep's shape into the registry.

    ``kind`` names the kernel (``dijkstra``, ``sssp``, ``ball``,
    ``one-to-many``); ``rows`` counts how many logical searches the sweep
    served at once (>1 for the batched multi-ball kernel); ``frontier``
    sums frontier sizes across inner rounds (the expansion analogue of
    heap pops) and ``relaxations`` counts strict tentative-distance
    improvements.  These ride alongside the unified ``search.*`` counters
    the sweep also flushes via :func:`record_search`.
    """
    reg = get_registry()
    if reg.enabled:
        reg.counter("csr.np_sweeps").add(1)
        reg.counter(f"csr.np_kind.{kind}").add(1)
        reg.counter("csr.np_rows").add(rows)
        reg.counter("csr.np_buckets").add(buckets)
        reg.counter("csr.np_frontier").add(frontier)
        reg.counter("csr.np_relaxations").add(relaxations)


def record_cache(
    hits: int,
    misses: int,
    evictions: int = 0,
    rejected_inserts: int = 0,
    subpath_hits: int = 0,
    bytes_built: int = 0,
) -> None:
    """Flush one cache's (delta) counters into the registry.

    :class:`~repro.core.cache.PathCache` keeps its own plain attribute
    counters; answerers publish either the full counts of a fresh cache or
    the before/after delta of a reused one.
    """
    reg = get_registry()
    if reg.enabled:
        reg.counter("cache.hits").add(hits)
        reg.counter("cache.misses").add(misses)
        reg.counter("cache.evictions").add(evictions)
        reg.counter("cache.rejected_inserts").add(rejected_inserts)
        reg.counter("cache.subpath_hits").add(subpath_hits)
        reg.counter("cache.bytes_built").add(bytes_built)


def record_freeze(num_vertices: int, num_edges: int, seconds: float) -> None:
    """Count one CSR freeze (cache-miss snapshot build) and its size/time."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("csr.freezes").add(1)
        reg.counter("csr.frozen_vertices").add(num_vertices)
        reg.counter("csr.frozen_edges").add(num_edges)
        reg.histogram("csr.freeze_seconds", TIME_BUCKETS).observe(max(0.0, seconds))


def record_customize(
    edges: int, triangles: int, seconds: float, order_rebuilt: bool = False
) -> None:
    """Count one CCH customization pass (and any forced order rebuild).

    ``edges``/``triangles`` are the chordal supergraph's sizes — the work
    the pass performed; ``order_rebuilt`` marks the rare topology-change
    path where the metric-independent order had to be recomputed first.
    """
    reg = get_registry()
    if reg.enabled:
        reg.counter("index.customize_runs").add(1)
        reg.counter("index.customize_edges").add(edges)
        reg.counter("index.customize_triangles").add(triangles)
        reg.histogram("index.customize_seconds", TIME_BUCKETS).observe(
            max(0.0, seconds)
        )
        if order_rebuilt:
            reg.counter("index.order_builds").add(1)


def record_shm_share(nbytes: int) -> None:
    """Count one shared-memory CSR segment published by the parent."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("csr.shm_segments").add(1)
        reg.counter("csr.shm_bytes").add(nbytes)


def record_shm_attach(nbytes: int) -> None:
    """Count one zero-copy worker attachment to a shared CSR segment."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("csr.shm_attaches").add(1)
        reg.counter("csr.shm_attached_bytes").add(nbytes)


def record_spawn_payload(nbytes: int) -> None:
    """Size of one spawn-pool initializer payload (handle or pickled graph)."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("parallel.spawn_payload_bytes").add(nbytes)


def record_retry(count: int = 1) -> None:
    """Count re-dispatches of failed work units (``resilience.retries_total``)."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("resilience.retries_total").add(count)


def record_fault(kind: str) -> None:
    """Count one injected fault, total and per kind."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("resilience.faults_injected_total").add(1)
        reg.counter(f"resilience.faults.{kind}").add(1)


def record_quarantine(count: int = 1) -> None:
    """Count work units that exhausted retries and were quarantined."""
    reg = get_registry()
    if reg.enabled:
        reg.counter("resilience.quarantined_units_total").add(count)


def record_deadline(expired: int = 0, degraded: int = 0, preempted: int = 0) -> None:
    """Count deadline-budget outcomes.

    ``expired`` — queries dead-lettered because their budget was spent;
    ``degraded`` — queries re-answered by plain Dijkstra with what budget
    remained after the batch path was cut off; ``preempted`` — searches
    cancelled mid-run by the cooperative kernel check.
    """
    reg = get_registry()
    if not reg.enabled:
        return
    if expired:
        reg.counter("resilience.deadline_expired_total").add(expired)
    if degraded:
        reg.counter("resilience.deadline_degraded_total").add(degraded)
    if preempted:
        reg.counter("resilience.deadline_preempted_total").add(preempted)


def record_watchdog(dead: int = 0, hung: int = 0, restarts: int = 0) -> None:
    """Count watchdog detections and the pool restarts they triggered."""
    reg = get_registry()
    if not reg.enabled:
        return
    if dead:
        reg.counter("resilience.watchdog_dead_workers_total").add(dead)
    if hung:
        reg.counter("resilience.watchdog_hung_workers_total").add(hung)
    if restarts:
        reg.counter("resilience.watchdog_restarts_total").add(restarts)


def record_journal(appended: int = 0, replayed: int = 0) -> None:
    """Count arrivals-journal writes and recovery replays."""
    reg = get_registry()
    if not reg.enabled:
        return
    if appended:
        reg.counter("streaming.journal_appends_total").add(appended)
    if replayed:
        reg.counter("streaming.journal_replayed_total").add(replayed)


def record_dead_letters(count: int) -> None:
    """Count queries routed to the dead-letter record."""
    reg = get_registry()
    if reg.enabled and count:
        reg.counter("resilience.dead_letters_total").add(count)


def set_breaker_state(state_value: int) -> None:
    """Publish the circuit-breaker state gauge (0 closed, 1 half-open, 2 open)."""
    reg = get_registry()
    if reg.enabled:
        reg.gauge("resilience.breaker_state").set(state_value)


def record_decomposition(decomposition) -> None:
    """Publish cluster counts/sizes and timing of one decomposition run."""
    reg = get_registry()
    if not reg.enabled:
        return
    sizes = decomposition.cluster_sizes
    reg.counter("decompose.runs").add(1)
    reg.counter("cluster.count").add(len(sizes))
    reg.counter("cluster.queries").add(sum(sizes))
    reg.counter("cluster.singletons").add(sum(1 for s in sizes if s == 1))
    size_hist = reg.histogram("cluster.size", SIZE_BUCKETS)
    for size in sizes:
        size_hist.observe(size)
    reg.histogram("decompose.seconds", TIME_BUCKETS).observe(
        max(0.0, decomposition.elapsed_seconds)
    )


def record_stream_window(size: int, trigger: str, span_seconds: float) -> None:
    """Count one assembled micro-batch window and its shape.

    ``trigger`` is why the window was cut (``duration``, ``size`` or
    ``flush``); ``span_seconds`` is how long it was open.
    """
    reg = get_registry()
    if reg.enabled:
        reg.counter("streaming.windows").add(1)
        reg.counter(f"streaming.trigger.{trigger}").add(1)
        reg.histogram("streaming.window_size", SIZE_BUCKETS).observe(size)
        reg.histogram("streaming.window_span_seconds", TIME_BUCKETS).observe(
            max(0.0, span_seconds)
        )


def record_stream_shed(degraded: int = 0, dropped: int = 0, stalls: int = 0) -> None:
    """Count load-shedding outcomes at the streaming admission boundary."""
    reg = get_registry()
    if not reg.enabled:
        return
    if degraded:
        reg.counter("streaming.shed_degraded_total").add(degraded)
    if dropped:
        reg.counter("streaming.shed_dropped_total").add(dropped)
    if stalls:
        reg.counter("streaming.backpressure_stalls_total").add(stalls)


def record_stream_cache(hits: int, misses: int, invalidations: int = 0) -> None:
    """Count the cross-window path cache's (delta) hit/miss/flush activity."""
    reg = get_registry()
    if not reg.enabled:
        return
    reg.counter("streaming.cache_hits").add(hits)
    reg.counter("streaming.cache_misses").add(misses)
    if invalidations:
        reg.counter("streaming.cache_invalidations").add(invalidations)


def set_stream_queue_depth(depth: int) -> None:
    """Publish the admission queue depth (current and high-water)."""
    reg = get_registry()
    if reg.enabled:
        gauge = reg.gauge("streaming.queue_depth")
        gauge.set(depth)
        reg.gauge("streaming.queue_depth_max").track_max(depth)
