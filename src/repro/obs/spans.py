"""Span tracing: where does the time of one batch actually go?

A *span* is a named, timed region of execution — ``decompose``, ``answer``,
``dispatch``, ``merge`` — opened with a context manager and timed with the
monotonic :func:`time.perf_counter` clock, so spans are immune to wall-clock
adjustments.  Spans nest: the tracer keeps a stack, and every span records
the id of the span that was open when it started, so a JSONL export can be
reassembled into the stage tree of a run.

Spans are process-local (the stack is per-tracer, and perf_counter origins
differ between processes); cross-process runs tag worker spans with their
``pid`` before merging, and only durations — never start offsets — are
compared across processes.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


@dataclass
class SpanRecord:
    """One finished span.

    ``start`` is a :func:`time.perf_counter` stamp, meaningful only
    relative to other spans of the same process.
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    duration_seconds: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration_seconds": self.duration_seconds,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "SpanRecord":
        return SpanRecord(
            span_id=int(data["span_id"]),
            parent_id=data.get("parent_id"),
            name=str(data["name"]),
            start=float(data.get("start", 0.0)),
            duration_seconds=float(data["duration_seconds"]),
            attrs=dict(data.get("attrs", {})),
        )


class _ActiveSpan:
    """Handle yielded while a span is open; lets callers attach attributes."""

    __slots__ = ("record",)

    def __init__(self, record: SpanRecord) -> None:
        self.record = record

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self.record.attrs.update(attrs)
        return self


class SpanTracer:
    """Records nested spans; finished spans land in :attr:`records`.

    Records are appended at span *exit*, so a parent appears after its
    children — readers reconstruct the tree through ``parent_id``, not
    through file order.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[int] = []
        self._next_id = 1

    @contextmanager
    def span(self, name: str, **attrs: Any):
        span_id = self._next_id
        self._next_id += 1
        record = SpanRecord(
            span_id=span_id,
            parent_id=self._stack[-1] if self._stack else None,
            name=name,
            start=time.perf_counter(),
            duration_seconds=0.0,
            attrs=dict(attrs),
        )
        self._stack.append(span_id)
        try:
            yield _ActiveSpan(record)
        finally:
            record.duration_seconds = time.perf_counter() - record.start
            self._stack.pop()
            self.records.append(record)

    def clear(self) -> None:
        self.records.clear()
        self._stack.clear()
        self._next_id = 1

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, in completion order."""
        return "\n".join(json.dumps(r.to_dict(), sort_keys=True) for r in self.records)

    def write_jsonl(self, path) -> None:
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")


def read_jsonl(path) -> List[Dict[str, Any]]:
    """Load span dicts back from a JSONL file (blank lines ignored)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def summarize_spans(spans: Iterable[Dict[str, Any]]) -> Dict[str, Dict[str, float]]:
    """Per-stage aggregate of span dicts: count, total, mean and max seconds."""
    stages: Dict[str, Dict[str, float]] = {}
    for span in spans:
        name = str(span.get("name", "?"))
        duration = float(span.get("duration_seconds", 0.0))
        agg = stages.get(name)
        if agg is None:
            agg = stages[name] = {"count": 0.0, "total_seconds": 0.0, "max_seconds": 0.0}
        agg["count"] += 1
        agg["total_seconds"] += duration
        if duration > agg["max_seconds"]:
            agg["max_seconds"] = duration
    for agg in stages.values():
        agg["mean_seconds"] = agg["total_seconds"] / agg["count"] if agg["count"] else 0.0
    return stages
