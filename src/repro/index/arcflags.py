"""Arc-Flags (Moehring et al. [22]) — the third index comparator.

Section II-A lists Arc-Flags among the index-based accelerators whose
maintenance cost shuts them out of dynamic networks.  Like CH and PLL it
is provided to make that argument measurable: construction runs one full
backward Dijkstra per boundary vertex, which dwarfs batch answering.

The network is partitioned into rectangular grid regions (the same
uniform-partition philosophy Section IV-B1 adopts for the search-space
oracle).  Every edge carries one flag per region: flag ``r`` is set when
the edge lies on *some* shortest path into region ``r``.  A query prunes
every edge whose flag for the target's region is unset — Dijkstra over a
thinned graph, exact by construction.

Flags are computed with the classic boundary method: for each region, run
a backward Dijkstra from every boundary vertex (a vertex with a neighbour
outside the region); an edge (u, v) is flagged for the region when it is
tight for one of those trees (``d(u) == w + d(v)`` in backward distances)
— plus every intra-region edge is flagged for its own region.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush
from typing import Dict, List, Sequence, Set, Tuple

from ..exceptions import IndexConstructionError
from ..search.common import PathResult, reconstruct_path


def grid_regions(graph, cells_per_side: int = 4) -> List[int]:
    """Partition vertices into ``cells_per_side^2`` rectangular regions."""
    if cells_per_side < 1:
        raise IndexConstructionError("cells_per_side must be at least 1")
    if graph.num_vertices == 0:
        raise IndexConstructionError("cannot partition an empty network")
    min_x, min_y, max_x, max_y = graph.extent()
    span_x = (max_x - min_x) or 1.0
    span_y = (max_y - min_y) or 1.0
    regions = []
    last = cells_per_side - 1
    for v in range(graph.num_vertices):
        i = min(last, int((graph.xs[v] - min_x) / span_x * cells_per_side))
        j = min(last, int((graph.ys[v] - min_y) / span_y * cells_per_side))
        regions.append(i * cells_per_side + j)
    return regions


class ArcFlags:
    """An arc-flag index over a road-network snapshot."""

    def __init__(self, graph, cells_per_side: int = 4) -> None:
        if graph.num_vertices == 0:
            raise IndexConstructionError("cannot build arc-flags on an empty graph")
        self.graph = graph
        self.graph_version = graph.version
        self.region_of: List[int] = grid_regions(graph, cells_per_side)
        self.num_regions = cells_per_side * cells_per_side
        #: flags[(u, v)] = set of region ids the edge is useful for.
        self._flags: Dict[Tuple[int, int], Set[int]] = {
            (u, v): set() for u, v, _ in graph.edges()
        }
        start = time.perf_counter()
        self._build()
        self.construction_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def _boundary_vertices(self, region: int) -> List[int]:
        graph = self.graph
        out = []
        for v in range(graph.num_vertices):
            if self.region_of[v] != region:
                continue
            touches_outside = any(
                self.region_of[int(u)] != region for u, _ in graph.in_neighbors(v)
            ) or any(
                self.region_of[int(w)] != region for w, _ in graph.neighbors(v)
            )
            if touches_outside:
                out.append(v)
        return out

    def _build(self) -> None:
        graph = self.graph
        # Intra-region edges are always usable toward their own region.
        for u, v, _ in graph.edges():
            if self.region_of[u] == self.region_of[v]:
                self._flags[(u, v)].add(self.region_of[v])
        for region in range(self.num_regions):
            for boundary in self._boundary_vertices(region):
                self._flag_tight_edges(boundary, region)

    def _flag_tight_edges(self, root: int, region: int) -> None:
        """Backward Dijkstra from ``root``; flag tight edges for ``region``."""
        from ..search.dijkstra import sssp_distances

        dist = sssp_distances(self.graph, root, backward=True)
        for u, v, w in self.graph.edges():
            du = dist[u]
            dv = dist[v]
            if math.isinf(du) or math.isinf(dv):
                continue
            if math.isclose(du, w + dv, rel_tol=1e-12, abs_tol=1e-12):
                self._flags[(u, v)].add(region)

    # ------------------------------------------------------------------
    def query(self, source: int, target: int) -> PathResult:
        """Exact shortest path via flag-pruned Dijkstra."""
        target_region = self.region_of[target]
        flags = self._flags
        adj = self.graph._adj  # noqa: SLF001 - hot path
        dist: Dict[int, float] = {source: 0.0}
        parents: Dict[int, int] = {}
        done: Set[int] = set()
        heap: List[Tuple[float, int]] = [(0.0, source)]
        visited = 0
        while heap:
            d, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            visited += 1
            if u == target:
                return PathResult(
                    source, target, d, reconstruct_path(parents, source, target), visited
                )
            for v, w in adj[u]:
                v = int(v)
                if target_region not in flags[(u, v)]:
                    continue  # the index prunes this arc
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    parents[v] = u
                    heappush(heap, (nd, v))
        return PathResult(source, target, math.inf, [], visited)

    def distance(self, source: int, target: int) -> float:
        return self.query(source, target).distance

    @property
    def flag_bits_set(self) -> int:
        """Total set flags (index size proxy)."""
        return sum(len(f) for f in self._flags.values())

    @property
    def stale(self) -> bool:
        return self.graph.version != self.graph_version
