"""Pruned Landmark Labeling (Akiba et al. [1]) for directed weighted graphs.

The second index comparator of Figure 8.  Vertices are processed in
descending degree order; for each hub a forward and a backward pruned
Dijkstra extend the 2-hop labels:

* the forward search from hub ``h`` settles ``u`` at ``d(h, u)`` and adds
  ``(h, d)`` to ``L_in(u)`` unless the labels built so far already prove
  ``query(h, u) <= d`` (the pruning rule);
* the backward search symmetrically extends ``L_out``.

A distance query is the classic label join:
``min over hubs h of L_out(s)[h] + L_in(t)[h]``.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush
from typing import Dict, List, Tuple

from ..exceptions import IndexConstructionError


class PrunedLandmarkLabeling:
    """A 2-hop label index over a road network snapshot."""

    def __init__(self, graph) -> None:
        if graph.num_vertices == 0:
            raise IndexConstructionError("cannot label an empty graph")
        self.graph = graph
        self.graph_version = graph.version
        n = graph.num_vertices
        self.label_out: List[Dict[int, float]] = [{} for _ in range(n)]
        self.label_in: List[Dict[int, float]] = [{} for _ in range(n)]
        start = time.perf_counter()
        self._build()
        self.construction_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        order = sorted(range(n), key=graph.degree, reverse=True)
        for hub in order:
            self._pruned_dijkstra(hub, forward=True)
            self._pruned_dijkstra(hub, forward=False)

    def _pruned_dijkstra(self, hub: int, forward: bool) -> None:
        graph = self.graph
        adj = graph._adj if forward else graph._radj  # noqa: SLF001
        dist: Dict[int, float] = {hub: 0.0}
        done = set()
        heap: List[Tuple[float, int]] = [(0.0, hub)]
        while heap:
            d, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            if forward:
                # Prune: the existing labels already certify d(hub, u) <= d.
                if u != hub and self._query_labels(hub, u) <= d:
                    continue
                self.label_in[u][hub] = d
            else:
                if u != hub and self._query_labels(u, hub) <= d:
                    continue
                self.label_out[u][hub] = d
            for v, w in adj[u]:
                v = int(v)
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heappush(heap, (nd, v))

    # ------------------------------------------------------------------
    def _query_labels(self, source: int, target: int) -> float:
        lo = self.label_out[source]
        li = self.label_in[target]
        if len(lo) > len(li):
            lo, li = li, lo
            # Iterate the smaller dict; addition is symmetric.
        best = math.inf
        for hub, d1 in lo.items():
            d2 = li.get(hub)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def distance(self, source: int, target: int) -> float:
        """Exact shortest distance via the 2-hop label join."""
        if source == target:
            return 0.0
        d_out = self.label_out[source].get(target)
        d_in = self.label_in[target].get(source)
        best = self._query_labels(source, target)
        if d_out is not None:
            best = min(best, d_out)
        if d_in is not None:
            best = min(best, d_in)
        return best

    @property
    def label_entries(self) -> int:
        """Total number of (hub, distance) label entries (index size)."""
        return sum(len(l) for l in self.label_out) + sum(len(l) for l in self.label_in)

    @property
    def stale(self) -> bool:
        return self.graph.version != self.graph_version
