"""Geometric Containers (Wagner et al. [31]) — fourth index comparator.

Section II-A's list of index-based accelerators includes geometric
containers: each edge stores the bounding box of every target whose
shortest path (from the edge's tail) starts with that edge; a query prunes
any edge whose container excludes the target.

Correctness under pruning: at any settled vertex ``u`` on a shortest
``s -> t`` path, the continuation is a shortest ``u -> t`` path, and the
first edge of ``u``'s shortest-path tree branch toward ``t`` has ``t`` in
its container by construction — so at least one optimal continuation
always survives, and distances stay exact even when ties prune siblings.

Construction runs one full Dijkstra per vertex (O(V (V+E) log V)), the
most expensive index here — which is the point: Section II-A's argument
that such indexes cannot chase a dynamic network.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from ..exceptions import IndexConstructionError, StaleIndexError
from ..search.common import PathResult, reconstruct_path

Box = Tuple[float, float, float, float]  # min_x, min_y, max_x, max_y


class GeometricContainers:
    """Per-edge target bounding boxes over a road-network snapshot."""

    def __init__(self, graph) -> None:
        if graph.num_vertices == 0:
            raise IndexConstructionError("cannot build containers on an empty graph")
        self.graph = graph
        self.graph_version = graph.version
        #: container[(u, v)] = bounding box of targets reached via (u, v),
        #: or None when the edge starts no shortest path.
        self._box: Dict[Tuple[int, int], Optional[Box]] = {
            (u, v): None for u, v, _ in graph.edges()
        }
        start = time.perf_counter()
        self._build()
        self.construction_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        for u in range(graph.num_vertices):
            self._grow_from(u)

    def _grow_from(self, root: int) -> None:
        """One SSSP from ``root``; extend each first edge's box."""
        graph = self.graph
        adj = graph._adj  # noqa: SLF001 - hot path
        dist: Dict[int, float] = {root: 0.0}
        first_edge: Dict[int, Tuple[int, int]] = {}
        done: Set[int] = set()
        heap: List[Tuple[float, int]] = [(0.0, root)]
        while heap:
            d, x = heappop(heap)
            if x in done:
                continue
            done.add(x)
            for y, w in adj[x]:
                y = int(y)
                nd = d + w
                if nd < dist.get(y, math.inf):
                    dist[y] = nd
                    # The first edge of the tree branch: taken directly when
                    # relaxing out of the root, inherited otherwise.
                    first_edge[y] = (root, y) if x == root else first_edge[x]
                    heappush(heap, (nd, y))
        for t in done:
            if t == root:
                continue
            self._extend(first_edge[t], graph.xs[t], graph.ys[t])

    def _extend(self, edge: Tuple[int, int], x: float, y: float) -> None:
        box = self._box.get(edge)
        if box is None:
            self._box[edge] = (x, y, x, y)
        else:
            self._box[edge] = (
                min(box[0], x),
                min(box[1], y),
                max(box[2], x),
                max(box[3], y),
            )

    # ------------------------------------------------------------------
    @staticmethod
    def _contains(box: Optional[Box], x: float, y: float) -> bool:
        if box is None:
            return False
        return box[0] <= x <= box[2] and box[1] <= y <= box[3]

    def query(self, source: int, target: int) -> PathResult:
        """Exact shortest path via container-pruned Dijkstra.

        Raises :class:`~repro.exceptions.StaleIndexError` if the network
        mutated after construction: the per-edge boxes were grown from
        build-time shortest-path trees, and pruning with them against a
        newer metric can cut the true path.
        """
        if self.stale:
            raise StaleIndexError(
                "GeometricContainers", self.graph_version, self.graph.version
            )
        graph = self.graph
        tx, ty = graph.xs[target], graph.ys[target]
        adj = graph._adj  # noqa: SLF001
        boxes = self._box
        dist: Dict[int, float] = {source: 0.0}
        parents: Dict[int, int] = {}
        done: Set[int] = set()
        heap: List[Tuple[float, int]] = [(0.0, source)]
        visited = 0
        while heap:
            d, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            visited += 1
            if u == target:
                return PathResult(
                    source, target, d, reconstruct_path(parents, source, target), visited
                )
            for v, w in adj[u]:
                v = int(v)
                if not self._contains(boxes[(u, v)], tx, ty):
                    continue
                nd = d + w
                if nd < dist.get(v, math.inf):
                    dist[v] = nd
                    parents[v] = u
                    heappush(heap, (nd, v))
        return PathResult(source, target, math.inf, [], visited)

    def distance(self, source: int, target: int) -> float:
        return self.query(source, target).distance

    def rebuild(self) -> "GeometricContainers":
        """Re-grow every container against the graph's current weights."""
        self.__init__(self.graph)
        return self

    @property
    def stale(self) -> bool:
        return self.graph.version != self.graph_version
