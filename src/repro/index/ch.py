"""Contraction Hierarchies (Geisberger et al. [12]).

Built only to reproduce Figure 8's argument: index construction takes
orders of magnitude longer than answering a whole batch index-free, so
index-based methods cannot track a dynamic network.  The implementation is
the textbook one — edge-difference node ordering with lazy priority
updates, witness searches bounding shortcut insertion, and a bidirectional
upward query with shortcut unpacking.

Because the shortcut weights are priced at build time, queries against a
mutated network raise :class:`~repro.exceptions.StaleIndexError` instead
of silently serving the old metric; see
:class:`~repro.index.cch.CustomizableContractionHierarchy` for the
order/metric split that re-customizes instead of rebuilding.
"""

from __future__ import annotations

import math
import time
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..exceptions import IndexConstructionError, StaleIndexError
from ..search.common import PathResult


class ContractionHierarchy:
    """A CH index over a road network snapshot.

    Parameters
    ----------
    graph:
        The road network to index (a snapshot: later weight changes are not
        reflected, which is exactly the paper's point).
    witness_settle_limit:
        Cap on settled vertices per witness search; smaller is faster but
        inserts more (harmless) shortcuts.
    """

    def __init__(self, graph, witness_settle_limit: int = 60) -> None:
        if graph.num_vertices == 0:
            raise IndexConstructionError("cannot build a CH over an empty graph")
        self.graph = graph
        self.graph_version = graph.version
        self.witness_settle_limit = witness_settle_limit
        n = graph.num_vertices
        # Working adjacency (mutated during contraction).
        self._out: List[Dict[int, float]] = [{} for _ in range(n)]
        self._in: List[Dict[int, float]] = [{} for _ in range(n)]
        for u, v, w in graph.edges():
            old = self._out[u].get(v)
            if old is None or w < old:
                self._out[u][v] = w
                self._in[v][u] = w
        #: shortcut (u, v) -> contracted middle vertex, for path unpacking.
        self._shortcut_mid: Dict[Tuple[int, int], int] = {}
        self.rank: List[int] = [0] * n
        self.num_shortcuts = 0
        start = time.perf_counter()
        self._contract_all()
        self.construction_seconds = time.perf_counter() - start
        self._build_upward()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _witness_exists(
        self, source: int, excluded: int, targets: Dict[int, float], limit: float,
        contracted: List[bool],
    ) -> Dict[int, bool]:
        """Local Dijkstra from ``source`` avoiding ``excluded``.

        Returns, per target, whether a path no longer than its threshold
        exists without the excluded vertex.
        """
        found = {t: False for t in targets}
        dist: Dict[int, float] = {source: 0.0}
        done = set()
        heap: List[Tuple[float, int]] = [(0.0, source)]
        settles = 0
        pending = len(targets)
        while heap and settles < self.witness_settle_limit and pending:
            d, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            settles += 1
            if u in targets and not found[u] and d <= targets[u]:
                found[u] = True
                pending -= 1
            if d > limit:
                break
            for v, w in self._out[u].items():
                if v == excluded or contracted[v]:
                    continue
                nd = d + w
                if nd <= limit and nd < dist.get(v, math.inf):
                    dist[v] = nd
                    heappush(heap, (nd, v))
        return found

    def _simulate_contract(self, v: int, contracted: List[bool], apply: bool) -> int:
        """Count (or insert) the shortcuts contraction of ``v`` requires."""
        ins = [(u, w) for u, w in self._in[v].items() if not contracted[u]]
        outs = [(x, w) for x, w in self._out[v].items() if not contracted[x]]
        shortcuts = 0
        for u, w_uv in ins:
            if not outs:
                break
            thresholds = {
                x: w_uv + w_vx for x, w_vx in outs if x != u
            }
            if not thresholds:
                continue
            limit = max(thresholds.values())
            witnessed = self._witness_exists(u, v, thresholds, limit, contracted)
            for x, w_vx in outs:
                if x == u:
                    continue
                through = w_uv + w_vx
                if witnessed.get(x, False):
                    continue
                existing = self._out[u].get(x)
                if existing is not None and existing <= through:
                    continue
                shortcuts += 1
                if apply:
                    self._out[u][x] = through
                    self._in[x][u] = through
                    self._shortcut_mid[(u, x)] = v
        return shortcuts

    def _priority(self, v: int, contracted: List[bool], depth: List[int]) -> float:
        ins = sum(1 for u in self._in[v] if not contracted[u])
        outs = sum(1 for x in self._out[v] if not contracted[x])
        shortcuts = self._simulate_contract(v, contracted, apply=False)
        edge_difference = shortcuts - (ins + outs)
        return edge_difference + 2 * depth[v]

    def _contract_all(self) -> None:
        n = self.graph.num_vertices
        contracted = [False] * n
        depth = [0] * n
        heap: List[Tuple[float, int]] = []
        for v in range(n):
            heappush(heap, (self._priority(v, contracted, depth), v))
        order = 0
        while heap:
            prio, v = heappop(heap)
            if contracted[v]:
                continue
            current = self._priority(v, contracted, depth)
            if heap and current > heap[0][0]:
                heappush(heap, (current, v))
                continue
            self.num_shortcuts += self._simulate_contract(v, contracted, apply=True)
            contracted[v] = True
            self.rank[v] = order
            order += 1
            for u in self._in[v]:
                if not contracted[u]:
                    depth[u] = max(depth[u], depth[v] + 1)
            for x in self._out[v]:
                if not contracted[x]:
                    depth[x] = max(depth[x], depth[v] + 1)

    def _build_upward(self) -> None:
        n = self.graph.num_vertices
        rank = self.rank
        #: forward search relaxes edges to higher-ranked heads.
        self._up_out: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        #: backward search walks edges arriving from higher-ranked tails.
        self._up_in: List[List[Tuple[int, float]]] = [[] for _ in range(n)]
        for u in range(n):
            for v, w in self._out[u].items():
                if rank[v] > rank[u]:
                    self._up_out[u].append((v, w))
                else:
                    self._up_in[v].append((u, w))

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> float:
        """Shortest distance via bidirectional upward search.

        Raises :class:`~repro.exceptions.StaleIndexError` if the network
        mutated after construction: the shortcut weights were priced at
        build time, and serving them against a newer ``graph.version``
        would silently answer with the pre-mutation metric.
        """
        self._check_current()
        return self._query(source, target)[0]

    def query(self, source: int, target: int) -> PathResult:
        """Full :class:`PathResult` with the unpacked shortest path.

        Raises :class:`~repro.exceptions.StaleIndexError` when stale,
        like :meth:`distance`.
        """
        self._check_current()
        dist, meet, par_f, par_b, visited = self._query_full(source, target)
        if meet < 0:
            return PathResult(source, target, math.inf, [], visited)
        fwd = [meet]
        v = meet
        while v != source:
            v = par_f[v]
            fwd.append(v)
        fwd.reverse()
        v = meet
        bwd = []
        while v != target:
            v = par_b[v]
            bwd.append(v)
        packed = fwd + bwd
        return PathResult(source, target, dist, self._unpack(packed), visited)

    def _query(self, source: int, target: int) -> Tuple[float, int]:
        dist, meet, _, _, visited = self._query_full(source, target)
        return dist, visited

    def _query_full(self, source: int, target: int):
        dist_f: Dict[int, float] = {source: 0.0}
        dist_b: Dict[int, float] = {target: 0.0}
        par_f: Dict[int, int] = {}
        par_b: Dict[int, int] = {}
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        done_f = set()
        done_b = set()
        best = math.inf
        meet = -1
        visited = 0
        while heap_f or heap_b:
            if heap_f and (not heap_b or heap_f[0][0] <= heap_b[0][0]):
                d, u = heappop(heap_f)
                if u in done_f or d > best:
                    continue
                done_f.add(u)
                visited += 1
                if u in dist_b and d + dist_b[u] < best:
                    best = d + dist_b[u]
                    meet = u
                for v, w in self._up_out[u]:
                    nd = d + w
                    if nd < dist_f.get(v, math.inf):
                        dist_f[v] = nd
                        par_f[v] = u
                        heappush(heap_f, (nd, v))
            elif heap_b:
                d, u = heappop(heap_b)
                if u in done_b or d > best:
                    continue
                done_b.add(u)
                visited += 1
                if u in dist_f and d + dist_f[u] < best:
                    best = d + dist_f[u]
                    meet = u
                for v, w in self._up_in[u]:
                    nd = d + w
                    if nd < dist_b.get(v, math.inf):
                        dist_b[v] = nd
                        par_b[v] = u
                        heappush(heap_b, (nd, v))
        return best, meet, par_f, par_b, visited

    def _unpack(self, packed: List[int]) -> List[int]:
        """Expand shortcuts recursively into original-edge paths."""
        path = [packed[0]]
        for u, v in zip(packed, packed[1:]):
            path.extend(self._expand_edge(u, v))
        return path

    def _expand_edge(self, u: int, v: int) -> List[int]:
        mid = self._shortcut_mid.get((u, v))
        if mid is None:
            return [v]
        return self._expand_edge(u, mid) + self._expand_edge(mid, v)

    def _check_current(self) -> None:
        if self.stale:
            raise StaleIndexError(
                "ContractionHierarchy", self.graph_version, self.graph.version
            )

    def rebuild(self) -> "ContractionHierarchy":
        """Re-run construction against the graph's current weights.

        The full-price path (ordering + witness searches + shortcuts) —
        :class:`~repro.index.cch.CustomizableContractionHierarchy`
        re-customizes instead, reusing its metric-independent order.
        """
        self.__init__(self.graph, self.witness_settle_limit)
        return self

    @property
    def stale(self) -> bool:
        """Whether the underlying network changed after construction."""
        return self.graph.version != self.graph_version
