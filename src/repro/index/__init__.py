"""Index-based comparators: CH, CCH, PLL, Arc-Flags, Geometric Containers.

Built to make Figure 8's argument measurable: every one of these answers
queries fast but takes orders of magnitude longer to (re)construct than
answering a whole batch index-free — and the snapshot indexes go stale on
the first weight change (their queries raise
:class:`~repro.exceptions.StaleIndexError` rather than serving the old
metric).  :class:`CustomizableContractionHierarchy` is the counter-move:
a metric-independent contraction order plus a fast customization pass,
so a weight epoch re-prices shortcuts instead of rebuilding.
"""

from .arcflags import ArcFlags, grid_regions
from .cch import CustomizableContractionHierarchy
from .ch import ContractionHierarchy
from .containers import GeometricContainers
from .pll import PrunedLandmarkLabeling

__all__ = [
    "ArcFlags",
    "ContractionHierarchy",
    "CustomizableContractionHierarchy",
    "GeometricContainers",
    "PrunedLandmarkLabeling",
    "grid_regions",
]
