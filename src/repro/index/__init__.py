"""Index-based comparators: CH, PLL, Arc-Flags, Geometric Containers.

Built to make Figure 8's argument measurable: every one of these answers
queries fast but takes orders of magnitude longer to (re)construct than
answering a whole batch index-free — and all go stale on the first weight
change.
"""

from .arcflags import ArcFlags, grid_regions
from .ch import ContractionHierarchy
from .containers import GeometricContainers
from .pll import PrunedLandmarkLabeling

__all__ = [
    "ArcFlags",
    "ContractionHierarchy",
    "GeometricContainers",
    "PrunedLandmarkLabeling",
    "grid_regions",
]
