"""Customizable Contraction Hierarchies (CRP/CCH-style order/metric split).

The legacy :class:`~repro.index.ch.ContractionHierarchy` couples two very
different decisions: *which* vertex to contract next (a topology question)
and *what each shortcut weighs* (a metric question).  Every weight epoch
therefore forces a full rebuild — the paper's Figure 8 argument that
index-based methods cannot chase a dynamic network.

This module splits them, following Dibbelt/Strasser/Wagner's Customizable
Contraction Hierarchies and the CRP line of work:

* **Metric-independent order** (:meth:`CustomizableContractionHierarchy.
  _build_order`): a deterministic minimum-degree elimination over the
  undirected skeleton, inserting *all* fill-in edges (no witness searches
  — witnesses depend on the metric, which is exactly what we must not
  look at).  The result is a chordal supergraph whose edges are the
  superset of every shortcut any metric could need, plus the complete
  **lower-triangle list** enumerated once and sorted bottom-up.

* **Fast customization** (:meth:`CustomizableContractionHierarchy.
  customize`): given the current weights, a single pass over the
  precomputed triangles recomputes every shortcut weight in contraction
  order — two ``min`` updates per triangle, no graph search, no ordering
  work.  Re-customizing after a traffic epoch costs a fraction of a
  rebuild (the ``cch_customize`` benchmark enforces >= 5x at
  ``beijing_like("large")``).

Customized state is keyed to ``graph.version`` — the same epoch counter
that invalidates :class:`~repro.core.cache.VersionedPathCache` and frozen
CSR snapshots — so ``set_weight`` / ``scale_weights`` /
:class:`~repro.network.timeline.TrafficTimeline` advances mark the index
stale and :meth:`ensure_current` re-customizes instead of rebuilding.
``add_edge`` only forces an order rebuild when the new arc is not already
covered by a chordal super-edge.

Exactness: the customized upward/downward weights admit a shortest
up-down path for every vertex pair (the standard CCH theorem: the chordal
supergraph contains the full elimination-tree shortcut set, and the
bottom-up triangle pass computes each super-edge's exact restricted
distance).  Queries unpack shortcuts to original arcs and return the
path's own weight sum, so a finite answer is always a real path priced
exactly as Dijkstra would price it — the mutation-interleaving
differential suite in ``tests/correctness/test_differential.py`` pins
this across arbitrary mutation/query schedules.
"""

from __future__ import annotations

import math
import time
from heapq import heapify, heappop, heappush
from typing import Dict, List, Tuple

from ..exceptions import IndexConstructionError, StaleIndexError
from ..obs import record_customize
from ..search.common import PathResult


class CustomizableContractionHierarchy:
    """A CH whose hierarchy survives weight changes.

    Parameters
    ----------
    graph:
        The (mutable) road network.  Weight mutations leave the
        contraction order valid; :meth:`customize` re-prices the
        shortcuts.  ``add_edge`` beyond the chordal closure triggers a
        full order rebuild on the next customization.
    auto_customize:
        When ``True`` (default) a stale index re-customizes itself on
        the next :meth:`query`/:meth:`distance`; when ``False`` a stale
        query raises :class:`~repro.exceptions.StaleIndexError` instead
        (the legacy index's contract, for callers that must control
        exactly when customization cost is paid).
    """

    def __init__(self, graph, auto_customize: bool = True) -> None:
        if graph.num_vertices == 0:
            raise IndexConstructionError("cannot build a CCH over an empty graph")
        self.graph = graph
        self.auto_customize = auto_customize
        #: Monotonic counters — how often each phase has run on this index.
        self.customizations = 0
        self.order_builds = 0
        self.order_seconds = 0.0
        self.customize_seconds = 0.0
        #: ``graph.version`` the current shortcut weights were priced at.
        self.customized_version = -1
        self._build_order()
        self.customize()

    # ------------------------------------------------------------------
    # Phase 1: metric-independent contraction order (topology only)
    # ------------------------------------------------------------------
    def _build_order(self) -> None:
        """Minimum-degree elimination with full fill-in, plus triangles.

        Deterministic: ties break on vertex id, so the same topology
        always yields the same order, super-edge numbering and triangle
        list (the idempotence property suite relies on this).
        """
        start = time.perf_counter()
        graph = self.graph
        n = graph.num_vertices
        nbr: List[set] = [set() for _ in range(n)]
        for u, v, _w in graph.edges():
            nbr[u].add(v)
            nbr[v].add(u)
        contracted = [False] * n
        rank = [0] * n
        #: Chordal up-neighborhood: the still-uncontracted neighbors at
        #: the moment each vertex is eliminated (all higher-ranked).
        up_nbrs: List[List[int]] = [[] for _ in range(n)]
        heap: List[Tuple[int, int]] = [(len(nbr[v]), v) for v in range(n)]
        heapify(heap)
        order = 0
        while heap:
            deg, v = heappop(heap)
            if contracted[v]:
                continue
            if deg != len(nbr[v]):
                # Lazy key update: fill raised (or contraction lowered)
                # the degree since this entry was pushed.
                heappush(heap, (len(nbr[v]), v))
                continue
            neigh = sorted(nbr[v])
            up_nbrs[v] = neigh
            rank[v] = order
            order += 1
            contracted[v] = True
            for u in neigh:
                nbr[u].discard(v)
            for i, a in enumerate(neigh):
                na = nbr[a]
                for b in neigh[i + 1:]:
                    if b not in na:
                        na.add(b)
                        nbr[b].add(a)
        self.rank = rank

        # Super-edge numbering: edges of the chordal supergraph, id'd in
        # contraction order of their lower-ranked endpoint.  ``up[eid]``
        # prices the arc lo->hi, ``down[eid]`` the arc hi->lo.
        by_rank = sorted(range(n), key=rank.__getitem__)
        pair_eid: Dict[Tuple[int, int], int] = {}
        adj: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        tails: List[int] = []
        for v in by_rank:
            for u in up_nbrs[v]:
                eid = len(tails)
                pair_eid[(v, u)] = eid
                adj[v].append((u, eid))
                tails.append(v)
        self._pair_eid = pair_eid
        self._adj = adj
        self.num_super_edges = len(tails)

        # Lower triangles (v; a, b) with rank v < rank a < rank b, sorted
        # by rank of v: processing them in list order guarantees both
        # lower legs (v,a) and (v,b) are final when the triangle relaxes
        # (a,b) — the bottom-up customization invariant.
        triangles: List[Tuple[int, int, int, int]] = []
        for v in by_rank:
            neigh = sorted(up_nbrs[v], key=rank.__getitem__)
            for i, a in enumerate(neigh):
                va = pair_eid[(v, a)]
                for b in neigh[i + 1:]:
                    triangles.append((pair_eid[(a, b)], va, pair_eid[(v, b)], v))
        self._triangles = triangles
        self.num_triangles = len(triangles)
        self.order_builds += 1
        self.order_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # Phase 2: metric customization (weights only)
    # ------------------------------------------------------------------
    def customize(self) -> float:
        """Re-price every shortcut for the graph's *current* weights.

        Returns the seconds spent.  If the graph grew an arc outside the
        chordal closure (a topology change no customization can absorb),
        the order is rebuilt first — counted in ``order_builds`` and in
        the ``index.order_builds`` metric.
        """
        start = time.perf_counter()
        rebuilt = False
        if not self._load_metric():
            # Topology outgrew the chordal supergraph: rebuild the order
            # (the rare path — weight-only epochs never land here).
            self._build_order()
            rebuilt = True
            if not self._load_metric():  # pragma: no cover - invariant
                raise IndexConstructionError(
                    "CCH order rebuild failed to cover the graph's arcs"
                )
        up = self._up
        down = self._down
        up_mid = self._up_mid
        down_mid = self._down_mid
        for ab, va, vb, v in self._triangles:
            c = down[va] + up[vb]
            if c < up[ab]:
                up[ab] = c
                up_mid[ab] = v
            c = down[vb] + up[va]
            if c < down[ab]:
                down[ab] = c
                down_mid[ab] = v
        self.customized_version = self.graph.version
        self.customizations += 1
        self.customize_seconds = time.perf_counter() - start
        record_customize(
            edges=self.num_super_edges,
            triangles=self.num_triangles,
            seconds=self.customize_seconds,
            order_rebuilt=rebuilt,
        )
        return self.customize_seconds

    def _load_metric(self) -> bool:
        """Seed up/down arrays from the graph's arcs; False on a miss.

        A miss means some arc has no covering super-edge — the graph's
        topology changed in a way the recorded order cannot express.
        """
        m = self.num_super_edges
        inf = math.inf
        up = [inf] * m
        down = [inf] * m
        rank = self.rank
        pair_eid = self._pair_eid
        for u, v, w in self.graph.edges():
            if rank[u] < rank[v]:
                eid = pair_eid.get((u, v))
                if eid is None:
                    return False
                if w < up[eid]:
                    up[eid] = w
            else:
                eid = pair_eid.get((v, u))
                if eid is None:
                    return False
                if w < down[eid]:
                    down[eid] = w
        self._up = up
        self._down = down
        #: Middle vertex per direction (-1 = the original arc survives),
        #: recorded on strict improvement for recursive unpacking.
        self._up_mid = [-1] * m
        self._down_mid = [-1] * m
        return True

    # ------------------------------------------------------------------
    # Epoch keying
    # ------------------------------------------------------------------
    @property
    def stale(self) -> bool:
        """Whether the network mutated after the last customization."""
        return self.graph.version != self.customized_version

    def ensure_current(self) -> bool:
        """Re-customize iff the graph moved past ``customized_version``.

        Returns ``True`` when a customization ran — the streaming tier
        counts these to prove it never served a stale epoch.
        """
        if self.stale:
            self.customize()
            return True
        return False

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def _check_current(self) -> None:
        if not self.stale:
            return
        if self.auto_customize:
            self.customize()
        else:
            raise StaleIndexError(
                "CustomizableContractionHierarchy",
                self.customized_version,
                self.graph.version,
            )

    def distance(self, source: int, target: int) -> float:
        """Exact shortest distance (auto-customizes when stale)."""
        return self.query(source, target).distance

    def query(self, source: int, target: int) -> PathResult:
        """Exact :class:`PathResult` with the unpacked original-arc path.

        The returned distance is the unpacked path's own left-to-right
        weight sum — the same accumulation Dijkstra performs along the
        tree branch — so answers match the oracle bit-for-bit whenever
        the shortest path is unique.
        """
        self._check_current()
        best, meet, par_f, par_b, visited = self._search(source, target)
        if meet < 0:
            return PathResult(source, target, math.inf, [], visited)
        packed_f = [meet]
        v = meet
        while v != source:
            v = par_f[v]
            packed_f.append(v)
        packed_f.reverse()
        v = meet
        packed_b = []
        while v != target:
            v = par_b[v]
            packed_b.append(v)
        path = [source]
        for x, y in zip(packed_f, packed_f[1:]):
            self._expand_arc(x, y, path)
        for x, y in zip([meet] + packed_b, packed_b):
            self._expand_arc(x, y, path)
        distance = self.graph.path_prefix_weights(path)[-1]
        return PathResult(source, target, distance, path, visited)

    def _search(self, source: int, target: int):
        """Bidirectional upward search over the customized supergraph."""
        up = self._up
        down = self._down
        adj = self._adj
        dist_f: Dict[int, float] = {source: 0.0}
        dist_b: Dict[int, float] = {target: 0.0}
        par_f: Dict[int, int] = {}
        par_b: Dict[int, int] = {}
        heap_f: List[Tuple[float, int]] = [(0.0, source)]
        heap_b: List[Tuple[float, int]] = [(0.0, target)]
        done_f: set = set()
        done_b: set = set()
        best = math.inf
        meet = -1
        visited = 0
        while heap_f or heap_b:
            if heap_f and (not heap_b or heap_f[0][0] <= heap_b[0][0]):
                d, u = heappop(heap_f)
                if u in done_f or d > best:
                    continue
                done_f.add(u)
                visited += 1
                if u in dist_b and d + dist_b[u] < best:
                    best = d + dist_b[u]
                    meet = u
                for v, eid in adj[u]:
                    nd = d + up[eid]
                    if nd < dist_f.get(v, math.inf):
                        dist_f[v] = nd
                        par_f[v] = u
                        heappush(heap_f, (nd, v))
            elif heap_b:
                d, u = heappop(heap_b)
                if u in done_b or d > best:
                    continue
                done_b.add(u)
                visited += 1
                if u in dist_f and d + dist_f[u] < best:
                    best = d + dist_f[u]
                    meet = u
                for v, eid in adj[u]:
                    nd = d + down[eid]
                    if nd < dist_b.get(v, math.inf):
                        dist_b[v] = nd
                        par_b[v] = u
                        heappush(heap_b, (nd, v))
        return best, meet, par_f, par_b, visited

    def _expand_arc(self, x: int, y: int, out: List[int]) -> None:
        """Append the original-arc path of super-arc ``x -> y`` after ``x``.

        Iterative (explicit stack): unpacked paths can be hundreds of
        arcs long at the larger scales, and recursion depth tracks path
        length.
        """
        rank = self.rank
        pair_eid = self._pair_eid
        up_mid = self._up_mid
        down_mid = self._down_mid
        stack = [(x, y)]
        while stack:
            a, b = stack.pop()
            if rank[a] < rank[b]:
                mid = up_mid[pair_eid[(a, b)]]
            else:
                mid = down_mid[pair_eid[(b, a)]]
            if mid < 0:
                out.append(b)
            else:
                stack.append((mid, b))
                stack.append((a, mid))

    # ------------------------------------------------------------------
    def shortcut_weights(self) -> Tuple[List[float], List[float]]:
        """Copies of the customized (up, down) weight arrays.

        Exposed for the idempotence/path-independence property suite:
        identical metric => identical arrays, however it was reached.
        """
        return list(self._up), list(self._down)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CustomizableContractionHierarchy(|V|={self.graph.num_vertices}, "
            f"super_edges={self.num_super_edges}, "
            f"triangles={self.num_triangles}, "
            f"customizations={self.customizations}, stale={self.stale})"
        )
