"""Smoke tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestInfo:
    def test_info_runs(self, capsys):
        assert main(["info", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vertices" in out
        assert "cache band" in out


class TestRun:
    @pytest.mark.parametrize("method", ["astar", "slc-s", "r2r-s"])
    def test_run_methods(self, capsys, method):
        code = main(
            ["run", "--scale", "tiny", "--method", method, "--size", "25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total_seconds" in out

    def test_run_requires_valid_method(self):
        with pytest.raises(SystemExit):
            main(["run", "--scale", "tiny", "--method", "warp"])


class TestReproduce:
    def test_fig7a_to_directory(self, capsys, tmp_path):
        code = main(
            [
                "reproduce",
                "--scale",
                "tiny",
                "--experiment",
                "fig7a",
                "--sizes",
                "15,30",
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        assert (tmp_path / "fig7a.txt").exists()
        assert "Fig 7-(a)" in capsys.readouterr().out

    def test_table2(self, capsys):
        code = main(
            ["reproduce", "--scale", "tiny", "--experiment", "table2", "--sizes", "15"]
        )
        assert code == 0
        assert "Table II" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--scale", "tiny", "--experiment", "fig99"])

    def test_bad_sizes(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "--scale", "tiny", "--sizes", "abc"])


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["info"])
        assert args.command == "info"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
