"""Unit tests for the customizable contraction hierarchy."""

import math

import pytest

from repro.exceptions import IndexConstructionError, StaleIndexError
from repro.index.cch import CustomizableContractionHierarchy
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra, sssp_distances
from tests.conftest import assert_valid_path


@pytest.fixture(scope="module")
def small_grid():
    return grid_city(5, 5, seed=8)


@pytest.fixture(scope="module")
def cch(small_grid):
    return CustomizableContractionHierarchy(small_grid)


class TestDistances:
    def test_all_pairs_match_dijkstra_exactly(self, small_grid, cch):
        n = small_grid.num_vertices
        for s in range(0, n, 3):
            truth = sssp_distances(small_grid, s)
            for t in range(0, n, 4):
                assert cch.distance(s, t) == truth[t], (s, t)

    def test_same_vertex(self, cch):
        assert cch.distance(3, 3) == 0.0

    def test_directed_graph(self, line_graph):
        cch = CustomizableContractionHierarchy(line_graph)
        assert cch.distance(0, 4) == 1.0 + 1.1 + 1.2 + 1.3
        assert math.isinf(cch.distance(4, 0))

    def test_ring_sample(self, ring):
        cch = CustomizableContractionHierarchy(ring)
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            assert cch.distance(s, t) == dijkstra(ring, s, t).distance


class TestPaths:
    def test_unpacked_path_valid(self, small_grid, cch):
        for s, t in [(0, 24), (3, 20), (10, 14)]:
            r = cch.query(s, t)
            assert_valid_path(small_grid, r.path, s, t, r.distance, tol=1e-6)

    def test_path_has_no_shortcuts(self, small_grid, cch):
        r = cch.query(0, 24)
        for u, v in zip(r.path, r.path[1:]):
            assert small_grid.has_edge(u, v)

    def test_unreachable_returns_empty_path(self, line_graph):
        cch = CustomizableContractionHierarchy(line_graph)
        r = cch.query(4, 0)
        assert math.isinf(r.distance)
        assert r.path == []


class TestConstruction:
    def test_ranks_are_a_permutation(self, small_grid, cch):
        assert sorted(cch.rank) == list(range(small_grid.num_vertices))

    def test_phase_times_recorded(self, cch):
        assert cch.order_seconds > 0.0
        assert cch.customize_seconds > 0.0

    def test_supergraph_covers_every_arc(self, small_grid, cch):
        assert cch.num_super_edges >= small_grid.num_edges // 2
        assert cch.num_triangles >= 0

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexConstructionError):
            CustomizableContractionHierarchy(RoadNetwork([], []))


class TestEpochKeying:
    def test_weight_change_marks_stale(self, small_grid):
        g = small_grid.copy()
        cch = CustomizableContractionHierarchy(g)
        assert not cch.stale
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        assert cch.stale

    def test_ensure_current_recustomizes_once(self, small_grid):
        g = small_grid.copy()
        cch = CustomizableContractionHierarchy(g)
        before = cch.customizations
        assert cch.ensure_current() is False
        g.scale_weights(1.5)
        assert cch.ensure_current() is True
        assert cch.ensure_current() is False
        assert cch.customizations == before + 1
        assert not cch.stale

    def test_auto_customize_query_follows_mutation(self, small_grid):
        g = small_grid.copy()
        cch = CustomizableContractionHierarchy(g)
        g.scale_weights(2.0)
        assert cch.distance(0, 24) == dijkstra(g, 0, 24).distance
        assert not cch.stale

    def test_manual_mode_raises_stale_index_error(self, small_grid):
        g = small_grid.copy()
        cch = CustomizableContractionHierarchy(g, auto_customize=False)
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 3)
        with pytest.raises(StaleIndexError) as err:
            cch.distance(0, 24)
        assert err.value.current_version == g.version
        cch.customize()
        assert cch.distance(0, 24) == dijkstra(g, 0, 24).distance

    def test_weight_epochs_never_rebuild_order(self, small_grid):
        g = small_grid.copy()
        cch = CustomizableContractionHierarchy(g)
        assert cch.order_builds == 1
        for factor in (1.3, 0.7, 2.1):
            g.scale_weights(factor)
            cch.customize()
        assert cch.order_builds == 1

    def test_add_edge_outside_closure_rebuilds_order(self, small_grid):
        g = small_grid.copy()
        cch = CustomizableContractionHierarchy(g)
        # Opposite grid corners are never chordal neighbors of each other
        # on a 5x5 grid, so this arc forces a new elimination order.
        assert not g.has_edge(0, 24)
        g.add_edge(0, 24, 0.5)
        cch.customize()
        assert cch.order_builds == 2
        assert cch.distance(0, 24) == 0.5
        assert cch.distance(1, 24) == dijkstra(g, 1, 24).distance
