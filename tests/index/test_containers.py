"""Unit tests for Geometric Containers."""

import math

import pytest

from repro.exceptions import IndexConstructionError, StaleIndexError
from repro.index.containers import GeometricContainers
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra, sssp_distances
from tests.conftest import assert_valid_path


@pytest.fixture(scope="module")
def small_grid():
    return grid_city(5, 5, seed=8)


@pytest.fixture(scope="module")
def gc_index(small_grid):
    return GeometricContainers(small_grid)


class TestExactness:
    def test_all_pairs_match_dijkstra(self, small_grid, gc_index):
        n = small_grid.num_vertices
        for s in range(0, n, 3):
            truth = sssp_distances(small_grid, s)
            for t in range(0, n, 4):
                assert math.isclose(
                    gc_index.distance(s, t), truth[t], rel_tol=1e-9
                ), (s, t)

    def test_paths_valid(self, small_grid, gc_index):
        for s, t in [(0, 24), (3, 20), (12, 7)]:
            r = gc_index.query(s, t)
            assert_valid_path(small_grid, r.path, s, t, r.distance, tol=1e-9)

    def test_ring_sample(self, ring):
        index = GeometricContainers(ring)
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            truth = dijkstra(ring, s, t).distance
            assert math.isclose(index.distance(s, t), truth, rel_tol=1e-9)

    def test_directed_graph(self, line_graph):
        index = GeometricContainers(line_graph)
        assert math.isclose(index.distance(0, 4), 1.0 + 1.1 + 1.2 + 1.3)
        assert math.isinf(index.distance(4, 0))

    def test_same_vertex(self, gc_index):
        assert gc_index.distance(7, 7) == 0.0


class TestPruning:
    def test_prunes_versus_plain_dijkstra(self, small_grid, gc_index):
        total_gc = total_dij = 0
        for s, t in [(0, 24), (4, 20), (2, 22), (10, 14)]:
            total_gc += gc_index.query(s, t).visited
            total_dij += dijkstra(small_grid, s, t).visited
        assert total_gc < total_dij

    def test_containers_contain_tree_targets(self, small_grid, gc_index):
        """Every target's coordinates lie in its first edge's box."""
        from repro.search.dijkstra import sssp_tree

        root = 0
        dist, parents = sssp_tree(small_grid, root)
        for t in range(1, small_grid.num_vertices):
            if math.isinf(dist[t]):
                continue
            # Walk up to the root to find the first edge.
            cur = t
            while parents[cur] != root:
                cur = parents[cur]
            box = gc_index._box[(root, cur)]
            assert box is not None
            x, y = small_grid.coord(t)
            # The tree's first edge may differ under ties, but some optimal
            # first edge must contain t; verify via a pruned re-query.
            assert math.isclose(
                gc_index.distance(root, t), dist[t], rel_tol=1e-9
            )


class TestLifecycle:
    def test_construction_time_recorded(self, gc_index):
        assert gc_index.construction_seconds > 0.0

    def test_stale_flag(self, small_grid):
        g = small_grid.copy()
        index = GeometricContainers(g)
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        assert index.stale

    def test_stale_query_raises_until_rebuilt(self, small_grid):
        g = small_grid.copy()
        index = GeometricContainers(g)
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        with pytest.raises(StaleIndexError) as err:
            index.query(0, 24)
        assert err.value.index == "GeometricContainers"
        assert index.rebuild() is index
        assert math.isclose(
            index.distance(0, 24), dijkstra(g, 0, 24).distance, rel_tol=1e-9
        )

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexConstructionError):
            GeometricContainers(RoadNetwork([], []))
