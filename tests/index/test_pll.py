"""Unit tests for Pruned Landmark Labeling."""

import math

import pytest

from repro.exceptions import IndexConstructionError
from repro.index.pll import PrunedLandmarkLabeling
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra, sssp_distances


@pytest.fixture(scope="module")
def small_grid():
    return grid_city(5, 5, seed=8)


@pytest.fixture(scope="module")
def pll(small_grid):
    return PrunedLandmarkLabeling(small_grid)


class TestDistances:
    def test_all_pairs_match_dijkstra(self, small_grid, pll):
        n = small_grid.num_vertices
        for s in range(0, n, 3):
            truth = sssp_distances(small_grid, s)
            for t in range(0, n, 4):
                assert math.isclose(
                    pll.distance(s, t), truth[t], rel_tol=1e-9
                ), (s, t)

    def test_same_vertex(self, pll):
        assert pll.distance(7, 7) == 0.0

    def test_directed_graph(self, line_graph):
        pll = PrunedLandmarkLabeling(line_graph)
        assert math.isclose(pll.distance(0, 4), 1.0 + 1.1 + 1.2 + 1.3)
        assert math.isinf(pll.distance(4, 0))

    def test_ring_sample(self, ring):
        pll = PrunedLandmarkLabeling(ring)
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            truth = dijkstra(ring, s, t).distance
            assert math.isclose(pll.distance(s, t), truth, rel_tol=1e-9)


class TestIndexProperties:
    def test_pruning_keeps_labels_small(self, small_grid, pll):
        n = small_grid.num_vertices
        # Pruned labels must be far below the quadratic worst case.
        assert pll.label_entries < n * n

    def test_construction_time_recorded(self, pll):
        assert pll.construction_seconds > 0.0

    def test_stale_flag(self, small_grid):
        g = small_grid.copy()
        pll = PrunedLandmarkLabeling(g)
        assert not pll.stale
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        assert pll.stale

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexConstructionError):
            PrunedLandmarkLabeling(RoadNetwork([], []))
