"""Unit tests for the Arc-Flags index."""

import math

import pytest

from repro.exceptions import IndexConstructionError
from repro.index.arcflags import ArcFlags, grid_regions
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra, sssp_distances
from tests.conftest import assert_valid_path


@pytest.fixture(scope="module")
def small_grid():
    return grid_city(5, 5, seed=8)


@pytest.fixture(scope="module")
def af(small_grid):
    return ArcFlags(small_grid, cells_per_side=3)


class TestRegions:
    def test_every_vertex_assigned(self, small_grid):
        regions = grid_regions(small_grid, 3)
        assert len(regions) == small_grid.num_vertices
        assert all(0 <= r < 9 for r in regions)

    def test_multiple_regions_used(self, small_grid):
        assert len(set(grid_regions(small_grid, 3))) > 1

    def test_single_cell_is_one_region(self, small_grid):
        assert set(grid_regions(small_grid, 1)) == {0}

    def test_validation(self, small_grid):
        with pytest.raises(IndexConstructionError):
            grid_regions(small_grid, 0)
        with pytest.raises(IndexConstructionError):
            grid_regions(RoadNetwork([], []), 2)


class TestExactness:
    def test_all_pairs_match_dijkstra(self, small_grid, af):
        n = small_grid.num_vertices
        for s in range(0, n, 3):
            truth = sssp_distances(small_grid, s)
            for t in range(0, n, 4):
                assert math.isclose(
                    af.distance(s, t), truth[t], rel_tol=1e-9
                ), (s, t)

    def test_paths_are_valid(self, small_grid, af):
        for s, t in [(0, 24), (3, 20), (12, 7)]:
            r = af.query(s, t)
            assert_valid_path(small_grid, r.path, s, t, r.distance, tol=1e-9)

    def test_ring_sample(self, ring):
        af = ArcFlags(ring, cells_per_side=3)
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            truth = dijkstra(ring, s, t).distance
            assert math.isclose(af.distance(s, t), truth, rel_tol=1e-9)

    def test_directed_graph(self, line_graph):
        af = ArcFlags(line_graph, cells_per_side=2)
        assert math.isclose(af.distance(0, 4), 1.0 + 1.1 + 1.2 + 1.3)
        assert math.isinf(af.distance(4, 0))


class TestPruning:
    def test_prunes_versus_plain_dijkstra(self, small_grid, af):
        """Cross-region queries must settle fewer vertices than Dijkstra."""
        total_af = total_dij = 0
        for s, t in [(0, 24), (4, 20), (2, 22)]:
            total_af += af.query(s, t).visited
            total_dij += dijkstra(small_grid, s, t).visited
        assert total_af <= total_dij

    def test_flag_bits_bounded(self, small_grid, af):
        assert 0 < af.flag_bits_set <= small_grid.num_edges * af.num_regions


class TestLifecycle:
    def test_construction_time_recorded(self, af):
        assert af.construction_seconds > 0.0

    def test_stale_flag(self, small_grid):
        g = small_grid.copy()
        af = ArcFlags(g, cells_per_side=2)
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        assert af.stale

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexConstructionError):
            ArcFlags(RoadNetwork([], []))
