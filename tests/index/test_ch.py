"""Unit tests for Contraction Hierarchies."""

import math

import pytest

from repro.exceptions import IndexConstructionError, StaleIndexError
from repro.index.ch import ContractionHierarchy
from repro.network.generators import grid_city
from repro.network.graph import RoadNetwork
from repro.search.dijkstra import dijkstra, sssp_distances
from tests.conftest import assert_valid_path


@pytest.fixture(scope="module")
def small_grid():
    return grid_city(5, 5, seed=8)


@pytest.fixture(scope="module")
def ch(small_grid):
    return ContractionHierarchy(small_grid)


class TestDistances:
    def test_all_pairs_match_dijkstra(self, small_grid, ch):
        n = small_grid.num_vertices
        for s in range(0, n, 3):
            truth = sssp_distances(small_grid, s)
            for t in range(0, n, 4):
                got = ch.distance(s, t)
                assert math.isclose(got, truth[t], rel_tol=1e-9), (s, t)

    def test_same_vertex(self, ch):
        assert ch.distance(3, 3) == 0.0

    def test_directed_graph(self, line_graph):
        ch = ContractionHierarchy(line_graph)
        assert math.isclose(ch.distance(0, 4), 1.0 + 1.1 + 1.2 + 1.3)
        assert math.isinf(ch.distance(4, 0))

    def test_ring_sample(self, ring):
        ch = ContractionHierarchy(ring)
        for s, t in [(0, 70), (12, 140), (99, 3)]:
            truth = dijkstra(ring, s, t).distance
            assert math.isclose(ch.distance(s, t), truth, rel_tol=1e-9)


class TestPaths:
    def test_unpacked_path_valid(self, small_grid, ch):
        for s, t in [(0, 24), (3, 20), (10, 14)]:
            r = ch.query(s, t)
            assert_valid_path(small_grid, r.path, s, t, r.distance, tol=1e-6)

    def test_path_has_no_shortcuts(self, small_grid, ch):
        r = ch.query(0, 24)
        for u, v in zip(r.path, r.path[1:]):
            assert small_grid.has_edge(u, v)


class TestConstruction:
    def test_ranks_are_a_permutation(self, small_grid, ch):
        assert sorted(ch.rank) == list(range(small_grid.num_vertices))

    def test_construction_time_recorded(self, ch):
        assert ch.construction_seconds > 0.0

    def test_shortcuts_counted(self, ch):
        assert ch.num_shortcuts >= 0

    def test_stale_flag(self, small_grid):
        g = small_grid.copy()
        ch = ContractionHierarchy(g)
        assert not ch.stale
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        assert ch.stale

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexConstructionError):
            ContractionHierarchy(RoadNetwork([], []))


class TestStaleness:
    """Regression: a stale CH must refuse to answer, never serve the old
    shortcut weights silently (the pre-StaleIndexError behavior)."""

    def test_stale_query_raises(self, small_grid):
        g = small_grid.copy()
        ch = ContractionHierarchy(g)
        u, v, w = next(iter(g.edges()))
        g.set_weight(u, v, w * 2)
        with pytest.raises(StaleIndexError) as err:
            ch.distance(0, 24)
        assert err.value.index == "ContractionHierarchy"
        assert err.value.current_version == g.version
        with pytest.raises(StaleIndexError):
            ch.query(0, 24)

    def test_rebuild_clears_staleness(self, small_grid):
        g = small_grid.copy()
        ch = ContractionHierarchy(g)
        g.scale_weights(1.5)
        assert ch.rebuild() is ch
        assert not ch.stale
        truth = dijkstra(g, 0, 24).distance
        assert math.isclose(ch.distance(0, 24), truth, rel_tol=1e-9)

    def test_fresh_index_does_not_raise(self, small_grid, ch):
        assert math.isfinite(ch.distance(0, 24))
