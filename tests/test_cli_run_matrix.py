"""The `repro run` CLI across the full method matrix."""

import pytest

from repro.cli import main
from repro.core.batch_runner import METHODS


class TestRunMatrix:
    @pytest.mark.parametrize("method", METHODS)
    def test_every_method_runs(self, capsys, method):
        code = main(
            ["run", "--scale", "tiny", "--method", method, "--size", "25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total_seconds" in out
        assert "visited" in out

    def test_r2r_uses_long_band(self, capsys):
        # r2r methods draw from the long band: summary still well-formed.
        code = main(["run", "--scale", "tiny", "--method", "r2r-r", "--size", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "clusters" in out

    def test_eta_flag_respected(self, capsys):
        code = main(
            ["run", "--scale", "tiny", "--method", "r2r-s", "--size", "20",
             "--eta", "0.3"]
        )
        assert code == 0
