"""Opt-in stress tests at larger scales.

Run with ``REPRO_STRESS=1 pytest tests/test_stress.py`` — skipped by
default so the regular suite stays fast.  These push batch sizes and
network scales closer to the paper's regime and re-verify the invariants
that matter most at scale.
"""

import math
import os

import pytest

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_STRESS") != "1",
    reason="set REPRO_STRESS=1 to run stress tests",
)


@pytest.fixture(scope="module")
def large_env():
    from repro.analysis.experiments import build_env

    return build_env("large", seed=7)


class TestStress:
    def test_large_batch_partitions(self, large_env):
        from repro.core import (
            CoClusteringDecomposer,
            SearchSpaceDecomposer,
            ZigzagDecomposer,
        )

        batch = large_env.workload.batch(5000)
        for decomposer in (
            ZigzagDecomposer(large_env.graph),
            SearchSpaceDecomposer(large_env.graph),
            CoClusteringDecomposer(large_env.graph, eta=0.05),
        ):
            d = decomposer.decompose(batch)
            assert d.num_queries == len(batch)

    def test_r2r_bound_at_scale(self, large_env):
        from repro.core import CoClusteringDecomposer, RegionToRegionAnswerer
        from repro.search.dijkstra import dijkstra

        batch = large_env.workload.batch(1000, *large_env.r2r_band)
        cc = CoClusteringDecomposer(large_env.graph, eta=0.05).decompose(batch)
        answer = RegionToRegionAnswerer(
            large_env.graph, eta=0.05, build_paths=False
        ).answer(cc)
        approx = [(q, r) for q, r in answer.answers if not r.exact]
        for q, r in approx[:200]:
            truth = dijkstra(large_env.graph, q.source, q.target).distance
            assert r.distance <= truth * 1.05 + 1e-9

    def test_cache_pipeline_exact_at_scale(self, large_env):
        from repro.core import LocalCacheAnswerer, SearchSpaceDecomposer
        from repro.search.dijkstra import dijkstra

        batch = large_env.workload.batch(2000, *large_env.cache_band)
        d = SearchSpaceDecomposer(large_env.graph).decompose(batch)
        answer = LocalCacheAnswerer(large_env.graph, 10**7).answer(d)
        assert answer.num_queries == len(batch)
        for q, r in answer.answers[::97]:
            truth = dijkstra(large_env.graph, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_multiprocess_speedup_possible(self, large_env):
        """The mp runner handles thousands of queries without error."""
        from repro.analysis.mp_runner import parallel_answer
        from repro.core import SearchSpaceDecomposer

        batch = large_env.workload.batch(2000, *large_env.cache_band)
        d = SearchSpaceDecomposer(large_env.graph).decompose(batch)
        result = parallel_answer(
            large_env.graph,
            d,
            answerer_kwargs={"cache_bytes": 10**6},
            workers=4,
            min_queries_per_worker=100,
        )
        assert result.answer.num_queries == len(batch)
        assert result.workers > 1
