"""Regression pins for float-boundary bugs.

Each test here pins a concrete falsifying example (originally found by
Hypothesis) as a plain pytest case, so these regressions fail fast and
deterministically without the property-testing machinery.
"""

import math

from repro.network.generators import grid_city
from repro.queries.arrivals import PoissonArrivals, TimedQuery, window_batches
from repro.queries.profile import profile_workload
from repro.queries.query import Query, QuerySet


class TestWindowBucketBoundary:
    """``window_batches`` must honour ``k*w <= arrival < (k+1)*w`` exactly."""

    def test_hypothesis_falsifier(self):
        # floor(42.99999999999999 / (1/3)) rounds into bucket 129, whose
        # multiplicative bounds exclude the arrival: 129 * (1/3) > arrival.
        window = 1.0 / 3.0
        arrival = 42.99999999999999
        tq = TimedQuery(arrival, Query(0, 21))
        batches = window_batches([tq], window)
        k = len(batches) - 1
        assert len(batches[k]) == 1
        assert k * window <= arrival < (k + 1) * window

    def test_exact_window_boundary_goes_to_next_window(self):
        batches = window_batches([TimedQuery(2.0, Query(0, 1))], 1.0)
        assert len(batches) == 3
        assert len(batches[2]) == 1

    def test_boundary_sweep_stays_consistent(self):
        # A sweep of awkward (arrival, window) combinations: the bucket the
        # query lands in must always satisfy the documented predicate.
        windows = (1.0 / 3.0, 0.1, 0.7, 1.0)
        arrivals = (0.0, 0.30000000000000004, 2.9999999999999996, 7.000000000000001, 49.99999999999999)
        for w in windows:
            for a in arrivals:
                batches = window_batches([TimedQuery(a, Query(0, 1))], w)
                k = len(batches) - 1
                assert len(batches[k]) == 1
                assert k * w <= a < (k + 1) * w, (a, w, k)


class TestPercentileRepeatedPairs:
    """Percentiles of a constant sample must equal the sample exactly."""

    def test_hypothesis_falsifier(self):
        # 13 copies of one pair: interpolating p90 at rank 10.8 computed
        # d*(1-0.8) + d*0.8, which is 1 ULP below d for this distance, so
        # p90_distance < median_distance.
        graph = grid_city(5, 5, seed=81)
        queries = QuerySet.from_pairs([(2, 18)] * 13)
        profile = profile_workload(graph, queries)
        expected = graph.euclidean(2, 18)
        assert profile.median_distance == expected
        assert profile.p90_distance == expected
        assert profile.median_distance <= profile.p90_distance

    def test_percentiles_monotone_on_mixed_repeats(self):
        graph = grid_city(5, 5, seed=81)
        queries = QuerySet.from_pairs([(2, 18)] * 9 + [(0, 24)] * 4)
        profile = profile_workload(graph, queries)
        assert profile.median_distance <= profile.p90_distance


class _FakeRng:
    """Deterministic stand-in for ``random.Random`` inter-arrival draws."""

    def __init__(self, gaps, tail=10.0):
        self._gaps = list(gaps)
        self._tail = tail

    def expovariate(self, rate):
        return self._gaps.pop(0) if self._gaps else self._tail


class TestDurationHorizonHalfOpen:
    """``duration(s)`` keeps ``arrival < s``: the horizon itself is excluded."""

    def test_arrival_at_exact_horizon_is_excluded(self, grid_workload):
        process = PoissonArrivals(grid_workload, rate=1.0, seed=0)
        # Gaps 0.5 + 0.5 land the second arrival at exactly the horizon.
        process._rng = _FakeRng([0.5, 0.5])
        arrivals = process.duration(1.0)
        assert [tq.arrival for tq in arrivals] == [0.5]
        # An arrival at the horizon would have opened a phantom window.
        assert len(window_batches(arrivals, 1.0)) == 1

    def test_interior_arrivals_kept(self, grid_workload):
        process = PoissonArrivals(grid_workload, rate=1.0, seed=0)
        process._rng = _FakeRng([0.25, 0.25, 0.25])
        arrivals = process.duration(1.0)
        assert [tq.arrival for tq in arrivals] == [0.25, 0.5, 0.75]
