"""Unit tests for the workload profiler."""

import pytest

from repro.exceptions import QueryError
from repro.queries.profile import WorkloadProfile, _gini, profile_workload
from repro.queries.query import Query, QuerySet
from repro.queries.workload import WorkloadGenerator


class TestGini:
    def test_uniform_is_zero(self):
        assert _gini([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_is_high(self):
        assert _gini([100, 1, 1, 1]) > 0.6

    def test_empty_and_zeros(self):
        assert _gini([]) == 0.0
        assert _gini([0, 0]) == 0.0

    def test_monotone_in_concentration(self):
        assert _gini([10, 1, 1]) > _gini([4, 4, 4])


class TestProfile:
    def test_counts(self, ring):
        qs = QuerySet.from_pairs([(0, 10), (0, 20), (0, 10)])
        profile = profile_workload(ring, qs)
        assert profile.num_queries == 3
        assert profile.distinct_queries == 2
        assert profile.distinct_sources == 1
        assert profile.distinct_targets == 2
        assert profile.repeat_fraction == pytest.approx(1 / 3)

    def test_distance_statistics_ordered(self, ring, ring_batch):
        profile = profile_workload(ring, ring_batch)
        assert 0 < profile.median_distance <= profile.p90_distance
        assert profile.mean_distance > 0

    def test_direction_histogram_sums(self, ring, ring_batch):
        profile = profile_workload(ring, ring_batch)
        assert sum(profile.direction_histogram.values()) == len(ring_batch)
        assert set(profile.direction_histogram) == {
            "E", "NE", "N", "NW", "W", "SW", "S", "SE"
        }

    def test_hotspot_workload_more_concentrated_than_uniform(self, ring):
        hot = WorkloadGenerator(
            ring, seed=5, hotspot_fraction=0.95, num_hotspots=2
        ).batch(150)
        uniform = WorkloadGenerator(ring, seed=5, hotspot_fraction=0.0).batch(150)
        g_hot = profile_workload(ring, hot).endpoint_gini
        g_uni = profile_workload(ring, uniform).endpoint_gini
        assert g_hot > g_uni

    def test_empty_rejected(self, ring):
        with pytest.raises(QueryError):
            profile_workload(ring, QuerySet())

    def test_as_dict_roundtrip(self, ring, ring_batch):
        profile = profile_workload(ring, ring_batch)
        d = profile.as_dict()
        assert d["num_queries"] == profile.num_queries
        assert isinstance(d["direction_histogram"], dict)

    def test_directional_flow_detected(self, ring):
        # All queries eastward: the E sector dominates.
        east = [
            (v, u)
            for v in range(ring.num_vertices)
            for u in range(ring.num_vertices)
            if ring.xs[u] > ring.xs[v] + 20 and abs(ring.ys[u] - ring.ys[v]) < 3
        ][:30]
        if len(east) < 10:
            pytest.skip("not enough eastward pairs on this network")
        profile = profile_workload(ring, QuerySet.from_pairs(east))
        assert profile.direction_histogram["E"] == max(
            profile.direction_histogram.values()
        )
