"""Unit tests for arrival processes and batching windows."""

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.queries.arrivals import (
    PoissonArrivals,
    TimedQuery,
    stream_statistics,
    window_batches,
)
from repro.queries.query import Query


class TestPoissonArrivals:
    def test_take_count_and_monotone_times(self, ring_workload):
        process = PoissonArrivals(ring_workload, rate=10.0, seed=1)
        arrivals = process.take(50)
        assert len(arrivals) == 50
        times = [tq.arrival for tq in arrivals]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_rate_roughly_respected(self, ring_workload):
        process = PoissonArrivals(ring_workload, rate=20.0, seed=2)
        arrivals = process.take(400)
        stats = stream_statistics(arrivals)
        assert stats["rate"] == pytest.approx(20.0, rel=0.25)
        # Poisson gaps have coefficient of variation ~ 1.
        assert stats["cv"] == pytest.approx(1.0, abs=0.35)

    def test_duration_horizon(self, ring_workload):
        process = PoissonArrivals(ring_workload, rate=30.0, seed=3)
        arrivals = process.duration(5.0)
        assert arrivals
        assert all(tq.arrival <= 5.0 for tq in arrivals)

    def test_deterministic(self, ring_workload):
        a = PoissonArrivals(ring_workload, rate=10.0, seed=4).take(20)
        # A fresh workload with the same seed reproduces the stream.
        from repro.queries.workload import WorkloadGenerator

        wl = WorkloadGenerator(ring_workload.graph, seed=999)
        b1 = PoissonArrivals(wl, rate=10.0, seed=4).take(20)
        b2 = PoissonArrivals(
            WorkloadGenerator(ring_workload.graph, seed=999), rate=10.0, seed=4
        ).take(20)
        assert b1 == b2

    def test_invalid_parameters(self, ring_workload):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(ring_workload, rate=0.0)
        process = PoissonArrivals(ring_workload, rate=1.0)
        with pytest.raises(ConfigurationError):
            process.take(-1)
        with pytest.raises(ConfigurationError):
            process.duration(-1.0)

    def test_band_respected(self, ring, ring_workload):
        process = PoissonArrivals(
            ring_workload, rate=10.0, seed=5, min_dist=5.0, max_dist=15.0
        )
        for tq in process.take(30):
            d = ring.euclidean(tq.query.source, tq.query.target)
            assert 5.0 <= d <= 15.0


class TestWindowBatches:
    def test_windows_partition_stream(self):
        arrivals = [
            TimedQuery(0.1, Query(0, 1)),
            TimedQuery(0.9, Query(1, 2)),
            TimedQuery(1.5, Query(2, 3)),
            TimedQuery(3.2, Query(3, 4)),
        ]
        batches = window_batches(arrivals, window_seconds=1.0)
        assert len(batches) == 4
        assert len(batches[0]) == 2
        assert len(batches[1]) == 1
        assert len(batches[2]) == 0  # interior empty window preserved
        assert len(batches[3]) == 1

    def test_empty_stream(self):
        assert window_batches([]) == []

    def test_window_size(self):
        arrivals = [TimedQuery(0.4, Query(0, 1)), TimedQuery(0.6, Query(1, 2))]
        halves = window_batches(arrivals, window_seconds=0.5)
        assert len(halves) == 2
        assert len(halves[0]) == 1 and len(halves[1]) == 1

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            window_batches([], window_seconds=0.0)

    def test_unsorted_input_handled(self):
        arrivals = [TimedQuery(1.5, Query(2, 3)), TimedQuery(0.1, Query(0, 1))]
        batches = window_batches(arrivals, 1.0)
        assert len(batches[0]) == 1
        assert batches[0][0] == Query(0, 1)

    def test_negative_arrival_rejected(self):
        """Regression: a negative arrival used to land in the *last* window.

        ``_window_index`` returned ``-1`` and Python's negative list
        indexing silently appended the query to ``batches[-1]`` — a
        misbucketing, not an error.  Negative times are now rejected.
        """
        arrivals = [
            TimedQuery(-0.5, Query(0, 1)),
            TimedQuery(2.5, Query(1, 2)),
        ]
        with pytest.raises(ConfigurationError):
            window_batches(arrivals, 1.0)

    def test_boundary_arrival_opens_next_window(self):
        """Regression pin: the window predicate is half-open exactly."""
        arrivals = [
            TimedQuery(0.0, Query(0, 1)),
            TimedQuery(1.0, Query(1, 2)),  # exactly on the boundary
        ]
        batches = window_batches(arrivals, 1.0)
        assert len(batches) == 2
        assert len(batches[0]) == 1
        assert len(batches[1]) == 1

    def test_float_quotient_boundary_pin(self):
        """Regression pin for the rounded-quotient bucketing defect:
        ``floor(a / w)`` alone lands 42.99999999999999 / (1/3) one window
        off the documented ``k * w <= a < (k + 1) * w`` bounds."""
        w = 1.0 / 3.0
        a = 42.99999999999999
        batches = window_batches([TimedQuery(a, Query(0, 1))], w)
        k = len(batches) - 1
        assert k * w <= a < (k + 1) * w


class TestStreamStatistics:
    def test_empty(self):
        stats = stream_statistics([])
        assert stats["count"] == 0

    def test_single(self):
        stats = stream_statistics([TimedQuery(2.0, Query(0, 1))])
        assert stats["count"] == 1
        assert stats["cv"] == 0.0

    def test_uniform_gaps_have_zero_cv(self):
        arrivals = [TimedQuery(float(i), Query(0, 1)) for i in range(1, 11)]
        stats = stream_statistics(arrivals)
        assert stats["cv"] == pytest.approx(0.0, abs=1e-12)
