"""Unit tests for the hotspot workload generator."""

import math

import pytest

from repro.exceptions import ConfigurationError, QueryError
from repro.queries.workload import Hotspot, WorkloadGenerator, band_for_network


class TestSampling:
    def test_deterministic(self, ring):
        a = WorkloadGenerator(ring, seed=3).batch(30)
        b = WorkloadGenerator(ring, seed=3).batch(30)
        assert list(a) == list(b)

    def test_different_seeds_differ(self, ring):
        a = WorkloadGenerator(ring, seed=3).batch(30)
        b = WorkloadGenerator(ring, seed=4).batch(30)
        assert list(a) != list(b)

    def test_batch_size(self, ring_workload):
        assert len(ring_workload.batch(25)) == 25

    def test_zero_size(self, ring_workload):
        assert len(ring_workload.batch(0)) == 0

    def test_no_self_queries(self, ring, ring_workload):
        for q in ring_workload.batch(50):
            assert q.source != q.target

    def test_band_respected(self, ring):
        wl = WorkloadGenerator(ring, seed=5)
        batch = wl.batch(30, min_dist=5.0, max_dist=15.0)
        for q in batch:
            d = ring.euclidean(q.source, q.target)
            assert 5.0 <= d <= 15.0

    def test_infeasible_band_raises(self, ring):
        wl = WorkloadGenerator(ring, seed=5)
        with pytest.raises(QueryError):
            wl.batch(10, min_dist=1e6, max_dist=2e6, max_attempts_factor=5)

    def test_negative_size_rejected(self, ring_workload):
        with pytest.raises(ConfigurationError):
            ring_workload.batch(-1)

    def test_vertices_are_valid(self, ring, ring_workload):
        for q in ring_workload.batch(40):
            assert 0 <= q.source < ring.num_vertices
            assert 0 <= q.target < ring.num_vertices


class TestHotspots:
    def test_custom_hotspots_concentrate_endpoints(self, ring):
        x, y = ring.coord(0)
        spots = [Hotspot(x, y, sigma=3.0)]
        wl = WorkloadGenerator(ring, hotspots=spots, hotspot_fraction=1.0, seed=2)
        batch = wl.batch(40)
        near = sum(
            1
            for q in batch
            if ring.euclidean(q.source, 0) < 8.0 and ring.euclidean(q.target, 0) < 8.0
        )
        assert near > len(batch) * 0.8

    def test_fraction_zero_is_uniform(self, ring):
        wl = WorkloadGenerator(ring, hotspot_fraction=0.0, seed=2)
        batch = wl.batch(40)
        assert len({q.source for q in batch}) > 10

    def test_bad_fraction_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(ring, hotspot_fraction=1.5)

    def test_empty_hotspot_list_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(ring, hotspots=[])


class TestBands:
    def test_cache_band_scales_with_extent(self, ring):
        lo, hi = band_for_network(ring, "cache")
        assert lo == 0.0
        min_x, min_y, max_x, max_y = ring.extent()
        span = max(max_x - min_x, max_y - min_y)
        assert hi == pytest.approx(span * 50.0 / 184.0)

    def test_r2r_band(self, ring):
        lo, hi = band_for_network(ring, "r2r")
        assert 0 < lo < hi

    def test_unknown_band_rejected(self, ring):
        with pytest.raises(ConfigurationError):
            band_for_network(ring, "warp")

    def test_convenience_bands(self, ring):
        wl = WorkloadGenerator(ring, seed=9)
        for q in wl.cache_band(10, limit=10.0):
            assert ring.euclidean(q.source, q.target) <= 10.0
        for q in wl.r2r_band(10, low=5.0, high=20.0):
            assert 5.0 <= ring.euclidean(q.source, q.target) <= 20.0


class TestStream:
    def test_batch_stream_shapes(self, ring):
        wl = WorkloadGenerator(ring, seed=6)
        stream = wl.batch_stream(3, 15)
        assert len(stream) == 3
        assert all(len(b) == 15 for b in stream)

    def test_stream_batches_differ(self, ring):
        wl = WorkloadGenerator(ring, seed=6)
        stream = wl.batch_stream(2, 20)
        assert list(stream[0]) != list(stream[1])
