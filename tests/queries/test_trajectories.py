"""Unit tests for the taxi-trajectory simulator."""

import math

import pytest

from repro.exceptions import ConfigurationError, QueryError
from repro.queries.trajectories import (
    TrajectorySimulator,
    Trip,
    queries_from_trips,
    subtrip_queries,
)
from repro.search.dijkstra import dijkstra


@pytest.fixture(scope="module")
def trips(ring):
    return TrajectorySimulator(ring, seed=4).simulate(40, rate_per_second=5.0)


class TestSimulation:
    def test_trip_count(self, trips):
        assert len(trips) == 40

    def test_routes_are_walks(self, ring, trips):
        for trip in trips:
            total = 0.0
            for u, v in zip(trip.path, trip.path[1:]):
                assert ring.has_edge(u, v)
                total += ring.weight(u, v)
            assert math.isclose(total, trip.distance, rel_tol=1e-9)

    def test_start_times_monotone(self, trips):
        times = [t.start_time for t in trips]
        assert times == sorted(times)
        assert times[0] > 0.0

    def test_routes_at_least_shortest(self, ring, trips):
        """Waypointed trips detour; no trip beats the shortest path."""
        for trip in trips:
            truth = dijkstra(ring, trip.origin, trip.destination).distance
            assert trip.distance >= truth - 1e-9

    def test_some_trips_detour(self, ring):
        sim = TrajectorySimulator(ring, waypoint_probability=1.0, seed=8)
        trips = sim.simulate(25, rate_per_second=5.0)
        detours = 0
        for trip in trips:
            truth = dijkstra(ring, trip.origin, trip.destination).distance
            if trip.distance > truth + 1e-9:
                detours += 1
        assert detours > 0

    def test_no_detours_when_probability_zero(self, ring):
        sim = TrajectorySimulator(ring, waypoint_probability=0.0, seed=8)
        for trip in sim.simulate(15, rate_per_second=5.0):
            truth = dijkstra(ring, trip.origin, trip.destination).distance
            assert math.isclose(trip.distance, truth, rel_tol=1e-9)

    def test_deterministic(self, ring):
        a = TrajectorySimulator(ring, seed=6).simulate(10)
        b = TrajectorySimulator(ring, seed=6).simulate(10)
        assert a == b

    def test_distance_band(self, ring):
        sim = TrajectorySimulator(ring, seed=7)
        trips = sim.simulate(15, min_dist=5.0, max_dist=20.0)
        for trip in trips:
            assert 5.0 <= ring.euclidean(trip.origin, trip.destination) <= 20.0

    def test_infeasible_band_raises(self, ring):
        with pytest.raises(QueryError):
            TrajectorySimulator(ring, seed=7).simulate(10, min_dist=1e6, max_dist=2e6)

    def test_parameter_validation(self, ring):
        with pytest.raises(ConfigurationError):
            TrajectorySimulator(ring, waypoint_probability=1.5)
        sim = TrajectorySimulator(ring)
        with pytest.raises(ConfigurationError):
            sim.simulate(-1)
        with pytest.raises(ConfigurationError):
            sim.simulate(5, rate_per_second=0.0)


class TestQueryDerivation:
    def test_endpoint_queries(self, trips):
        queries = queries_from_trips(trips)
        assert len(queries) == len(trips)
        for trip, q in zip(trips, queries):
            assert q.source == trip.origin
            assert q.target == trip.destination

    def test_subtrip_queries_lie_on_routes(self, trips):
        queries = subtrip_queries(trips, per_trip=2, seed=1)
        by_endpoints = {
            (t.origin, t.destination): t for t in trips
        }
        # Every sampled query's endpoints appear in order on some trip.
        paths = [t.path for t in trips]
        for q in queries:
            ok = False
            for path in paths:
                if q.source in path and q.target in path:
                    if path.index(q.source) < len(path) and q.target in path[path.index(q.source):]:
                        ok = True
                        break
            assert ok

    def test_subtrip_queries_cacheable(self, ring, trips):
        """Caching the trip routes answers every sub-trip query."""
        from repro.core.cache import PathCache

        # Sub-trip queries require shortest-path caches; use direct trips.
        sim = TrajectorySimulator(ring, waypoint_probability=0.0, seed=9)
        direct = sim.simulate(20)
        cache = PathCache(ring)
        for trip in direct:
            cache.insert(list(trip.path))
        queries = subtrip_queries(direct, per_trip=2, seed=2)
        for q in queries:
            assert cache.lookup(q.source, q.target) is not None

    def test_subtrip_validation(self, trips):
        with pytest.raises(ConfigurationError):
            subtrip_queries(trips, per_trip=-1)
        with pytest.raises(ConfigurationError):
            subtrip_queries(trips, min_hops=0)

    def test_empty_trips(self):
        assert len(queries_from_trips([])) == 0
        assert len(subtrip_queries([])) == 0
