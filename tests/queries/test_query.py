"""Unit tests for Query and QuerySet."""

import pytest

from repro.exceptions import QueryError
from repro.queries.query import Query, QuerySet


class TestQuery:
    def test_fields_and_aliases(self):
        q = Query(3, 7)
        assert q.source == q.s == 3
        assert q.target == q.t == 7

    def test_negative_ids_rejected(self):
        with pytest.raises(QueryError):
            Query(-1, 2)
        with pytest.raises(QueryError):
            Query(1, -2)

    def test_hashable_and_equal(self):
        assert Query(1, 2) == Query(1, 2)
        assert len({Query(1, 2), Query(1, 2), Query(2, 1)}) == 2

    def test_euclidean(self, grid6):
        q = Query(0, 1)
        assert q.euclidean(grid6) == pytest.approx(grid6.euclidean(0, 1))


class TestQuerySetBasics:
    def test_from_pairs_and_len(self):
        qs = QuerySet.from_pairs([(0, 1), (2, 3)])
        assert len(qs) == 2
        assert qs[0] == Query(0, 1)

    def test_slice_returns_query_set(self):
        qs = QuerySet.from_pairs([(0, 1), (2, 3), (4, 5)])
        sub = qs[1:]
        assert isinstance(sub, QuerySet)
        assert len(sub) == 2

    def test_contains(self):
        qs = QuerySet.from_pairs([(0, 1)])
        assert Query(0, 1) in qs
        assert Query(1, 0) not in qs

    def test_append_extend_copy(self):
        qs = QuerySet()
        qs.append(Query(0, 1))
        qs.extend([Query(2, 3)])
        other = qs.copy()
        other.append(Query(4, 5))
        assert len(qs) == 2 and len(other) == 3

    def test_equality(self):
        a = QuerySet.from_pairs([(0, 1)])
        b = QuerySet.from_pairs([(0, 1)])
        assert a == b
        assert a != QuerySet.from_pairs([(1, 0)])


class TestViews:
    def test_sources_targets(self):
        qs = QuerySet.from_pairs([(0, 1), (0, 2), (3, 2)])
        assert qs.sources == {0, 3}
        assert qs.targets == {1, 2}

    def test_by_source(self):
        qs = QuerySet.from_pairs([(0, 1), (0, 2), (3, 2)])
        groups = qs.by_source()
        assert len(groups[0]) == 2
        assert len(groups[3]) == 1

    def test_by_target(self):
        qs = QuerySet.from_pairs([(0, 1), (0, 2), (3, 2)])
        groups = qs.by_target()
        assert len(groups[2]) == 2

    def test_deduplicated_preserves_order(self):
        qs = QuerySet.from_pairs([(0, 1), (2, 3), (0, 1)])
        assert list(qs.deduplicated()) == [Query(0, 1), Query(2, 3)]

    def test_validate_ok(self):
        QuerySet.from_pairs([(0, 1), (0, 2)]).validate()

    def test_definition1_bounds_hold_for_any_set(self):
        # |Q| between max(|S|,|T|) and |S|*|T| always holds for dedup sets;
        # validate() should therefore never raise.
        QuerySet.from_pairs([(i, j) for i in range(3) for j in range(4)]).validate()


class TestGeometryHelpers:
    def test_sorted_by_euclidean(self, grid6):
        qs = QuerySet.from_pairs([(0, 1), (0, 35), (0, 6)])
        ordered = qs.sorted_by_euclidean(grid6)
        dists = [grid6.euclidean(q.source, q.target) for q in ordered]
        assert dists == sorted(dists, reverse=True)

    def test_sorted_ascending(self, grid6):
        qs = QuerySet.from_pairs([(0, 1), (0, 35), (0, 6)])
        ordered = qs.sorted_by_euclidean(grid6, descending=False)
        dists = [grid6.euclidean(q.source, q.target) for q in ordered]
        assert dists == sorted(dists)

    def test_within_band(self, grid6):
        qs = QuerySet.from_pairs([(0, 1), (0, 35)])
        near = qs.within_band(grid6, 0.0, 2.0)
        assert Query(0, 1) in near and Query(0, 35) not in near

    def test_shuffled_is_permutation_and_deterministic(self):
        qs = QuerySet.from_pairs([(i, i + 1) for i in range(20)])
        a = qs.shuffled(seed=4)
        b = qs.shuffled(seed=4)
        assert list(a) == list(b)
        assert sorted(a.queries) == sorted(qs.queries)
        assert list(a) != list(qs)
