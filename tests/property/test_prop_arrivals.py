"""Property-based tests for arrival windowing and timeline ordering."""

from hypothesis import given, settings, strategies as st

from repro.network.generators import grid_city
from repro.network.timeline import TrafficTimeline, congestion_snapshot
from repro.queries.arrivals import TimedQuery, window_batches
from repro.queries.query import Query

times = st.floats(min_value=0.0, max_value=50.0, allow_nan=False)
timed = st.builds(
    TimedQuery,
    arrival=times,
    query=st.builds(
        Query,
        source=st.integers(min_value=0, max_value=20),
        target=st.integers(min_value=21, max_value=40),
    ),
)


@given(st.lists(timed, min_size=1, max_size=60), st.floats(min_value=0.1, max_value=5.0))
@settings(max_examples=80, deadline=None)
def test_windows_partition_the_stream(arrivals, window):
    batches = window_batches(arrivals, window)
    assert sum(len(b) for b in batches) == len(arrivals)
    # Every query lands in the window its arrival time dictates.
    for k, batch in enumerate(batches):
        for q in batch:
            matching = [
                tq for tq in arrivals
                if tq.query == q and k * window <= tq.arrival < (k + 1) * window
            ]
            assert matching


@given(st.lists(timed, min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_no_trailing_empty_windows(arrivals):
    batches = window_batches(arrivals, 1.0)
    assert len(batches[-1]) > 0


@given(
    st.floats(min_value=-100.0, max_value=-1e-9, allow_nan=False),
    st.lists(timed, max_size=10),
    st.floats(min_value=0.1, max_value=5.0),
)
@settings(max_examples=40, deadline=None)
def test_any_negative_arrival_is_rejected(neg, rest, window):
    """Regression: negative arrivals used to be silently misbucketed into
    the last window (Python negative indexing on the batch list)."""
    from pytest import raises

    from repro.exceptions import ConfigurationError

    stream = rest + [TimedQuery(neg, Query(0, 21))]
    with raises(ConfigurationError):
        window_batches(stream, window)


@given(st.lists(timed, min_size=1, max_size=60),
       st.floats(min_value=0.1, max_value=5.0),
       st.one_of(st.none(), st.integers(min_value=1, max_value=8)))
@settings(max_examples=80, deadline=None)
def test_micro_batches_conserve_the_stream(arrivals, window, max_batch):
    """The streaming assembler partitions the stream exactly like the
    grid windower does: same total, nothing lost, nothing duplicated."""
    from repro.streaming import assemble_micro_batches

    windows = assemble_micro_batches(arrivals, window, max_batch)
    grid = window_batches(arrivals, window)
    assert sum(len(w) for w in windows) == sum(len(b) for b in grid)
    assert sum(len(w) for w in windows) == len(arrivals)


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_timeline_fires_every_event_once_in_order(event_times):
    graph = grid_city(3, 3, seed=1)
    timeline = TrafficTimeline(graph, seed=2)
    for t in event_times:
        timeline.schedule(t, congestion_snapshot(0.2))
    timeline.advance_to(200.0)
    fired_times = [t for t, _, _ in timeline.applied]
    assert fired_times == sorted(event_times)
    assert timeline.pending_events == 0
