"""Model-based stateful testing of PathCache.

A hypothesis rule machine drives arbitrary insert/lookup/clear sequences
against a shadow model and checks, after every step, that the cache's
answers and accounting match the model's expectations.
"""

import math

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule
from hypothesis import strategies as st

from repro.core.cache import PathCache, path_size_bytes
from repro.network.generators import grid_city
from repro.search.dijkstra import dijkstra

GRAPH = grid_city(4, 4, seed=71)
N = GRAPH.num_vertices

pair = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])


class CacheMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.cache = PathCache(GRAPH)
        self.inserted_paths = []  # shadow model: list of vertex tuples

    @rule(endpoints=pair)
    def insert_shortest_path(self, endpoints):
        s, t = endpoints
        r = dijkstra(GRAPH, s, t)
        if not r.found:
            return
        pid = self.cache.insert(r.path)
        if pid is not None:
            self.inserted_paths.append(tuple(r.path))

    @rule(endpoints=pair)
    def lookup(self, endpoints):
        s, t = endpoints
        hit = self.cache.lookup(s, t)
        model_hit = any(
            s in p and t in p and p.index(s) < p.index(t)
            for p in self.inserted_paths
        )
        # The cache answers exactly when the model says a path covers it.
        assert (hit is not None) == model_hit
        if hit is not None:
            truth = dijkstra(GRAPH, s, t).distance
            assert math.isclose(hit.distance, truth, rel_tol=1e-9)

    @rule()
    def clear(self):
        self.cache.clear()
        self.inserted_paths = []

    @invariant()
    def size_matches_model(self):
        expected = sum(path_size_bytes(p) for p in self.inserted_paths)
        assert self.cache.size_bytes == expected

    @invariant()
    def path_count_matches_model(self):
        assert self.cache.num_paths == len(self.inserted_paths)


CacheMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestCacheMachine = CacheMachine.TestCase
