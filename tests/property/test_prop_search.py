"""Property-based tests: all exact search algorithms agree, and the
sub-path property (the foundation of every cache in the paper) holds."""

import math

from hypothesis import given, settings, strategies as st

from repro.network.generators import grid_city
from repro.search.astar import a_star
from repro.search.bidirectional import bidirectional_dijkstra
from repro.search.bidirectional_astar import bidirectional_a_star
from repro.search.dijkstra import dijkstra
from repro.search.generalized_astar import generalized_a_star

# A pool of small deterministic networks; hypothesis picks one plus endpoints.
GRAPHS = [grid_city(4, 4, seed=s) for s in range(3)] + [
    grid_city(3, 6, seed=9, max_detour=2.0)
]


@st.composite
def graph_and_pair(draw):
    graph = draw(st.sampled_from(GRAPHS))
    n = graph.num_vertices
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    return graph, s, t


@given(graph_and_pair())
@settings(max_examples=80, deadline=None)
def test_all_exact_algorithms_agree(case):
    graph, s, t = case
    d1 = dijkstra(graph, s, t).distance
    d2 = a_star(graph, s, t).distance
    d3 = bidirectional_dijkstra(graph, s, t).distance
    d4 = bidirectional_a_star(graph, s, t).distance
    assert math.isclose(d1, d2, rel_tol=1e-9, abs_tol=1e-12)
    assert math.isclose(d1, d3, rel_tol=1e-9, abs_tol=1e-12)
    assert math.isclose(d1, d4, rel_tol=1e-9, abs_tol=1e-12)


@given(graph_and_pair())
@settings(max_examples=60, deadline=None)
def test_subpath_of_shortest_path_is_shortest(case):
    """The theorem behind Global/Local Cache (Section II-B)."""
    graph, s, t = case
    result = dijkstra(graph, s, t)
    path = result.path
    if len(path) < 3:
        return
    # Check a few sub-pairs including the extremes.
    pairs = [(0, len(path) - 1), (0, len(path) // 2), (len(path) // 3, len(path) - 1)]
    for i, j in pairs:
        if i >= j:
            continue
        sub = path[i : j + 1]
        sub_len = sum(graph.weight(u, v) for u, v in zip(sub, sub[1:]))
        truth = dijkstra(graph, path[i], path[j]).distance
        assert math.isclose(sub_len, truth, rel_tol=1e-9, abs_tol=1e-12)


@given(
    st.sampled_from(GRAPHS),
    st.integers(min_value=0, max_value=15),
    st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=6),
    st.sampled_from(["representative", "min-target"]),
)
@settings(max_examples=60, deadline=None)
def test_generalized_astar_matches_dijkstra(graph, source, targets, mode):
    source = source % graph.num_vertices
    targets = [t % graph.num_vertices for t in targets]
    results, _ = generalized_a_star(graph, source, targets, mode=mode)
    for t in set(targets):
        truth = dijkstra(graph, source, t).distance
        assert math.isclose(
            results[t].distance, truth, rel_tol=1e-9, abs_tol=1e-12
        ), (source, t, mode)


@given(graph_and_pair())
@settings(max_examples=40, deadline=None)
def test_triangle_inequality_of_distances(case):
    graph, s, t = case
    mid = (s + t) % graph.num_vertices
    d_st = dijkstra(graph, s, t).distance
    d_sm = dijkstra(graph, s, mid).distance
    d_mt = dijkstra(graph, mid, t).distance
    assert d_st <= d_sm + d_mt + 1e-9


@given(graph_and_pair())
@settings(max_examples=40, deadline=None)
def test_heuristic_is_admissible(case):
    """The graph's scaled Euclidean bound never exceeds the true distance."""
    graph, s, t = case
    truth = dijkstra(graph, s, t).distance
    if math.isinf(truth):
        return
    assert graph.heuristic(s, t) <= truth + 1e-9
