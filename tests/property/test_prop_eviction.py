"""Property-based tests: eviction never corrupts cache answers.

Whatever insert/lookup/evict interleaving happens under any capacity and
policy, a cache hit must still be the true shortest distance and a valid
walk — eviction may only turn hits into misses, never into wrong answers.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cache import PathCache
from repro.network.generators import grid_city
from repro.search.dijkstra import dijkstra

GRAPH = grid_city(5, 5, seed=61)
N = GRAPH.num_vertices

pairs = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])


@given(
    st.lists(pairs, min_size=2, max_size=15),
    st.integers(min_value=100, max_value=1500),
    st.sampled_from(["lru", "benefit"]),
)
@settings(max_examples=50, deadline=None)
def test_eviction_preserves_correctness(operations, capacity, policy):
    cache = PathCache(GRAPH, capacity_bytes=capacity, eviction=policy)
    for s, t in operations:
        # Interleave: probe first (exercises hit accounting), then insert.
        hit = cache.lookup(s, t)
        if hit is not None:
            truth = dijkstra(GRAPH, s, t).distance
            assert math.isclose(hit.distance, truth, rel_tol=1e-9)
            assert hit.path[0] == s and hit.path[-1] == t
        r = dijkstra(GRAPH, s, t)
        if r.found:
            cache.insert(r.path)
        assert cache.size_bytes <= capacity


@given(
    st.lists(pairs, min_size=2, max_size=12),
    st.sampled_from(["lru", "benefit"]),
)
@settings(max_examples=30, deadline=None)
def test_eviction_inverted_lists_stay_consistent(operations, policy):
    """After arbitrary churn, every surviving path is still answerable."""
    cache = PathCache(GRAPH, capacity_bytes=700, eviction=policy)
    survivors = {}
    for s, t in operations:
        r = dijkstra(GRAPH, s, t)
        if not r.found:
            continue
        pid = cache.insert(r.path)
        if pid is not None:
            survivors[pid] = (s, t)
    alive = set(cache._entries)
    for pid, (s, t) in survivors.items():
        if pid in alive:
            assert cache.lookup(s, t) is not None
