"""Property-based tests: the cache never lies.

Any sequence of shortest-path inserts followed by lookups must return
exactly the true shortest distance on a hit, and hits must slice out valid
walks.  This is the invariant both Global and Local Cache rest on.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.cache import PathCache
from repro.network.generators import grid_city
from repro.search.dijkstra import dijkstra

GRAPH = grid_city(5, 5, seed=31)
N = GRAPH.num_vertices

pairs = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])


@given(st.lists(pairs, min_size=1, max_size=10), st.lists(pairs, min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_cache_hits_return_exact_shortest_distances(inserts, probes):
    cache = PathCache(GRAPH)
    for s, t in inserts:
        r = dijkstra(GRAPH, s, t)
        if r.found:
            cache.insert(r.path)
    for s, t in probes:
        hit = cache.lookup(s, t)
        if hit is None:
            continue
        truth = dijkstra(GRAPH, s, t).distance
        assert math.isclose(hit.distance, truth, rel_tol=1e-9, abs_tol=1e-12)
        # The sliced path is a valid walk of the reported length.
        assert hit.path[0] == s and hit.path[-1] == t
        total = sum(GRAPH.weight(u, v) for u, v in zip(hit.path, hit.path[1:]))
        assert math.isclose(total, hit.distance, rel_tol=1e-9, abs_tol=1e-12)


@given(st.lists(pairs, min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_inserted_queries_always_hit(inserts):
    cache = PathCache(GRAPH)
    inserted = []
    for s, t in inserts:
        r = dijkstra(GRAPH, s, t)
        if r.found and cache.insert(r.path) is not None:
            inserted.append((s, t))
    for s, t in inserted:
        assert cache.lookup(s, t) is not None


@given(st.lists(pairs, min_size=1, max_size=8), st.integers(min_value=0, max_value=2000))
@settings(max_examples=30, deadline=None)
def test_capacity_is_never_exceeded(inserts, capacity):
    cache = PathCache(GRAPH, capacity_bytes=capacity)
    for s, t in inserts:
        r = dijkstra(GRAPH, s, t)
        if r.found:
            cache.insert(r.path)
    assert cache.size_bytes <= capacity
