"""Property-based tests for the geometric substrate."""

import math

from hypothesis import given, settings, strategies as st

from repro.network.convexhull import convex_hull, point_in_hull
from repro.network.spatial import (
    angular_difference,
    bearing_angle,
    fold_theta,
    reference_angle,
    search_space_ellipse,
    segment_cells,
)

coords = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
points = st.tuples(coords, coords)


@given(st.lists(points, min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_hull_contains_all_input_points(pts):
    hull = convex_hull(pts)
    for p in pts:
        assert point_in_hull(p, hull, eps=1e-6)


@given(st.lists(points, min_size=3, max_size=30))
@settings(max_examples=60, deadline=None)
def test_hull_is_idempotent(pts):
    hull = convex_hull(pts)
    assert set(convex_hull(hull)) == set(hull)


@given(coords, coords)
@settings(max_examples=100, deadline=None)
def test_reference_angle_range(dx, dy):
    assert 0.0 <= reference_angle(dx, dy) <= 45.0


@given(coords, coords)
@settings(max_examples=100, deadline=None)
def test_bearing_range(dx, dy):
    assert 0.0 <= bearing_angle(dx, dy) < 360.0


@given(st.floats(min_value=-720, max_value=720, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_fold_theta_range(theta):
    assert 0.0 <= fold_theta(theta) <= 45.0


@given(
    st.floats(min_value=0, max_value=360, allow_nan=False),
    st.floats(min_value=0, max_value=360, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_angular_difference_symmetric_and_bounded(a, b):
    d = angular_difference(a, b)
    assert 0.0 <= d <= 180.0
    assert math.isclose(d, angular_difference(b, a))


@given(coords, coords, coords, coords, st.floats(min_value=0, max_value=45))
@settings(max_examples=80, deadline=None)
def test_ellipse_contains_both_endpoints(sx, sy, tx, ty, theta):
    e = search_space_ellipse(sx, sy, tx, ty, theta)
    assert e.contains(sx, sy)
    assert e.contains(tx, ty)


@given(
    st.floats(min_value=0.01, max_value=15.9),
    st.floats(min_value=0.01, max_value=15.9),
    st.floats(min_value=0.01, max_value=15.9),
    st.floats(min_value=0.01, max_value=15.9),
)
@settings(max_examples=80, deadline=None)
def test_segment_cells_connected_and_clipped(ax, ay, bx, by):
    cells = segment_cells(ax, ay, bx, by, (0.0, 0.0), 1.0, 16)
    assert cells[0] == (int(ax), int(ay))
    assert cells[-1] == (int(bx), int(by))
    for (i1, j1), (i2, j2) in zip(cells, cells[1:]):
        assert abs(i1 - i2) + abs(j1 - j2) == 1
        assert 0 <= i2 < 16 and 0 <= j2 < 16
