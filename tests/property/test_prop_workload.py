"""Property-based tests for the workload generator's spatial snapping."""

import math

from hypothesis import given, settings, strategies as st

from repro.network.generators import grid_city
from repro.queries.workload import WorkloadGenerator

GRAPH = grid_city(6, 6, seed=51)
WORKLOAD = WorkloadGenerator(GRAPH, seed=1)

_min_x, _min_y, _max_x, _max_y = GRAPH.extent()

coords = st.tuples(
    st.floats(min_value=_min_x - 10, max_value=_max_x + 10, allow_nan=False),
    st.floats(min_value=_min_y - 10, max_value=_max_y + 10, allow_nan=False),
)


@given(coords)
@settings(max_examples=150, deadline=None)
def test_nearest_vertex_is_truly_nearest(point):
    x, y = point
    got = WORKLOAD._nearest_vertex(x, y)
    best_d = min(
        math.hypot(GRAPH.xs[v] - x, GRAPH.ys[v] - y)
        for v in range(GRAPH.num_vertices)
    )
    got_d = math.hypot(GRAPH.xs[got] - x, GRAPH.ys[got] - y)
    assert got_d <= best_d + 1e-9


@given(st.integers(min_value=0, max_value=GRAPH.num_vertices - 1))
@settings(max_examples=50, deadline=None)
def test_snapping_vertex_coordinates_is_identity(v):
    assert WORKLOAD._nearest_vertex(GRAPH.xs[v], GRAPH.ys[v]) == v
