"""Property-based test: R2R's eta guarantee survives arbitrary workloads.

This is the paper's central correctness claim (Theorem 1): whatever the
query multiset and whatever eta, every answer R2R produces is within
(1 + eta) of the true shortest distance.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.coclustering import CoClusteringDecomposer
from repro.core.r2r import RegionToRegionAnswerer
from repro.network.generators import grid_city
from repro.queries.query import QuerySet
from repro.search.dijkstra import dijkstra

GRAPH = grid_city(6, 6, seed=41)
N = GRAPH.num_vertices

pairs = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])


@given(
    st.lists(pairs, min_size=1, max_size=25),
    st.sampled_from([0.02, 0.05, 0.1, 0.3]),
    st.sampled_from(["longest", "random"]),
)
@settings(max_examples=40, deadline=None)
def test_r2r_error_bounded_for_any_workload(query_pairs, eta, selection):
    queries = QuerySet.from_pairs(query_pairs)
    decomposition = CoClusteringDecomposer(GRAPH, eta=eta).decompose(queries)
    answer = RegionToRegionAnswerer(GRAPH, eta=eta, selection=selection, seed=1).answer(
        decomposition
    )
    assert answer.num_queries == len(queries)
    for q, r in answer.answers:
        truth = dijkstra(GRAPH, q.source, q.target).distance
        if math.isinf(truth):
            continue
        assert r.distance >= truth - 1e-9
        assert r.distance <= truth * (1 + eta) + 1e-9, (q, eta, selection)


@given(st.lists(pairs, min_size=1, max_size=15))
@settings(max_examples=25, deadline=None)
def test_r2r_paths_are_realisable_walks(query_pairs):
    queries = QuerySet.from_pairs(query_pairs)
    decomposition = CoClusteringDecomposer(GRAPH, eta=0.1).decompose(queries)
    answer = RegionToRegionAnswerer(GRAPH, eta=0.1).answer(decomposition)
    for q, r in answer.answers:
        if not r.found or not r.path:
            continue
        assert r.path[0] == q.source
        assert r.path[-1] == q.target
        total = sum(GRAPH.weight(u, v) for u, v in zip(r.path, r.path[1:]))
        assert math.isclose(total, r.distance, rel_tol=1e-9, abs_tol=1e-9)
