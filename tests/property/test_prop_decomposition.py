"""Property-based tests: every decomposition method yields a valid
partition with its structural invariants, for arbitrary query multisets."""

from hypothesis import given, settings, strategies as st

from repro.core.coclustering import CoClusteringDecomposer
from repro.core.search_space import SearchSpaceDecomposer
from repro.core.zigzag import ZigzagDecomposer
from repro.network.generators import grid_city
from repro.queries.query import Query, QuerySet

GRAPH = grid_city(6, 6, seed=21)
N = GRAPH.num_vertices


def query_sets():
    pair = st.tuples(
        st.integers(min_value=0, max_value=N - 1),
        st.integers(min_value=0, max_value=N - 1),
    ).filter(lambda p: p[0] != p[1])
    return st.lists(pair, min_size=0, max_size=40).map(QuerySet.from_pairs)


@given(query_sets())
@settings(max_examples=40, deadline=None)
def test_zigzag_is_partition(queries):
    d = ZigzagDecomposer(GRAPH).decompose(queries)
    # decompose() validates internally; double-check the counts anyway.
    assert d.num_queries == len(queries)


@given(query_sets())
@settings(max_examples=40, deadline=None)
def test_search_space_is_partition(queries):
    d = SearchSpaceDecomposer(GRAPH).decompose(queries)
    assert d.num_queries == len(queries)


@given(query_sets(), st.floats(min_value=0.01, max_value=0.9))
@settings(max_examples=40, deadline=None)
def test_cocluster_is_partition_with_radius_invariant(queries, eta):
    d = CoClusteringDecomposer(GRAPH, eta=eta).decompose(queries)
    assert d.num_queries == len(queries)
    for cluster in d:
        center = cluster.center
        for q in cluster:
            assert GRAPH.euclidean(q.source, center.source) <= cluster.radius + 1e-9
            assert GRAPH.euclidean(q.target, center.target) <= cluster.radius + 1e-9


@given(query_sets())
@settings(max_examples=25, deadline=None)
def test_cocluster_acceleration_is_transparent(queries):
    linear = CoClusteringDecomposer(GRAPH, accelerate=False).decompose(queries)
    fast = CoClusteringDecomposer(GRAPH, accelerate=True).decompose(queries)
    assert [c.queries for c in linear] == [c.queries for c in fast]


@given(query_sets(), st.sampled_from([15.0, 30.0, 60.0, 120.0]))
@settings(max_examples=25, deadline=None)
def test_zigzag_partition_for_any_delta(queries, delta):
    d = ZigzagDecomposer(GRAPH, delta=delta).decompose(queries)
    assert d.num_queries == len(queries)
