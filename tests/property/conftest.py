"""Hypothesis profiles for the property suite.

The default profile keeps Hypothesis' own settings.  CI selects the
``ci`` profile (``HYPOTHESIS_PROFILE=ci``) for a bounded, deterministic
run: fewer examples, no deadline (shared runners have noisy clocks), and
no example database so every run starts from the same state.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "ci",
    max_examples=25,
    deadline=None,
    database=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", max_examples=50, deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
