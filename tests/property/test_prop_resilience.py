"""Property-based test: the chaos invariant holds for arbitrary fault plans.

Whatever seeded combination of worker crashes, hangs, and pool breaks a
FaultPlan injects, the retrying engine must return answers identical to
the fault-free serial baseline, account for every query (answered + dead
lettered == submitted), and keep its counters consistent with the unit
traces.  Runs under the deterministic ``ci`` profile in CI.
"""

from hypothesis import given, settings, strategies as st

from repro.core.local_cache import LocalCacheAnswerer
from repro.core.search_space import SearchSpaceDecomposer
from repro.network.generators import grid_city
from repro.parallel import ParallelBatchEngine
from repro.queries.query import QuerySet
from repro.resilience import FaultPlan, FaultSpec, RetryPolicy

GRAPH = grid_city(5, 5, seed=7)
N = GRAPH.num_vertices
ANSWERER = LocalCacheAnswerer(GRAPH, cache_bytes=64 * 1024, order="longest")
DECOMPOSER = SearchSpaceDecomposer(GRAPH)

# Zero backoff keeps examples fast; determinism comes from the plan seed.
FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_seconds=0.0, jitter=0.0)

pairs = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])

fault_plans = st.builds(
    lambda seed, crash_p, hang_p, break_pool: FaultPlan(
        seed=seed,
        specs=tuple(
            [
                FaultSpec(site="unit", kind="crash", probability=crash_p),
                FaultSpec(
                    site="unit", kind="hang", probability=hang_p, delay_seconds=0.01
                ),
            ]
            + ([FaultSpec(site="pool", kind="break", units=(0,))] if break_pool else [])
        ),
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    crash_p=st.sampled_from([0.2, 0.5, 0.9]),
    hang_p=st.sampled_from([0.0, 0.3]),
    break_pool=st.booleans(),
)


def answers_key(batch):
    return sorted((q, r.distance, tuple(r.path), r.exact) for q, r in batch.answers)


def run_engine(decomposition, **options):
    options.setdefault("workers", 2)
    options.setdefault("retry_policy", FAST_RETRY)
    with ParallelBatchEngine.from_answerer(ANSWERER, **options) as engine:
        return engine.execute(decomposition, method="chaos")


@given(st.lists(pairs, min_size=3, max_size=16), fault_plans)
@settings(max_examples=15, deadline=None)
def test_faulted_engine_matches_serial_baseline(query_pairs, plan):
    decomposition = DECOMPOSER.decompose(QuerySet.from_pairs(query_pairs))
    baseline = ANSWERER.answer(decomposition, method="chaos")

    outcome = run_engine(decomposition, fault_plan=plan)
    report = outcome.report

    # The invariant itself: identical answers, nothing dropped.
    assert answers_key(outcome.answer) == answers_key(baseline)
    assert not report.dead_letters
    assert outcome.answer.num_queries == len(query_pairs)

    # Accounting: traces explain the counters.
    assert report.retries == sum(max(0, u.attempts - 1) for u in report.units)
    assert report.faults_injected == sum(report.faults_by_kind.values())
    if report.retries == 0 and not report.breaker_tripped:
        assert report.faults_by_kind.get("crash", 0) == 0


@given(st.lists(pairs, min_size=3, max_size=12))
@settings(max_examples=10, deadline=None)
def test_fault_free_counters_agree_serial_vs_parallel(query_pairs):
    """Regression pin: fallback/retry counters agree between serial and workers=2."""
    decomposition = DECOMPOSER.decompose(QuerySet.from_pairs(query_pairs))
    reports = {}
    for workers in (1, 2):
        outcome = run_engine(decomposition, workers=workers)
        reports[workers] = outcome.report
        assert outcome.answer.num_queries == len(query_pairs)
    for field in ("fallbacks", "retries", "quarantined_units", "faults_injected"):
        assert getattr(reports[1], field) == getattr(reports[2], field) == 0
    assert not reports[1].dead_letters and not reports[2].dead_letters
