"""Exact-boundary properties for the streaming admission/batching tier.

Two classes of off-by-one bug live at these edges:

* a window cut *at exactly* the duration deadline — ``now == deadline``
  must behave as "due", and the cut must be stamped at the deadline,
  never at ``now``;
* the degrade-then-drop ladder flipping *at exactly* ``degrade_budget``
  shed queries — the budget'th degrade is the last one.
"""

from hypothesis import given, strategies as st

from repro.queries.arrivals import TimedQuery
from repro.queries.query import Query
from repro.streaming import (
    ADMITTED,
    SHED_DEGRADE,
    SHED_DROP,
    AdmissionController,
    MicroBatcher,
    TRIGGER_DURATION,
    TRIGGER_FLUSH,
)

windows = st.floats(min_value=0.01, max_value=10.0, allow_nan=False)
arrivals = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def tq(arrival):
    return TimedQuery(arrival, Query(0, 1))


class TestBatcherDeadlineInstant:
    @given(window_seconds=windows, opened_at=arrivals)
    def test_cut_if_due_fires_at_exactly_the_deadline(
        self, window_seconds, opened_at
    ):
        batcher = MicroBatcher(window_seconds)
        batcher.offer(tq(opened_at))
        deadline = batcher.deadline
        assert batcher.cut_if_due(deadline) is not None

    @given(window_seconds=windows, opened_at=arrivals)
    def test_cut_if_due_never_fires_before_the_deadline(
        self, window_seconds, opened_at
    ):
        batcher = MicroBatcher(window_seconds)
        batcher.offer(tq(opened_at))
        before = batcher.deadline - window_seconds * 1e-6
        if before < batcher.deadline:  # guard float collapse at tiny windows
            assert batcher.cut_if_due(before) is None

    @given(window_seconds=windows, opened_at=arrivals, overrun=windows)
    def test_late_cut_is_stamped_at_the_deadline_not_now(
        self, window_seconds, opened_at, overrun
    ):
        batcher = MicroBatcher(window_seconds)
        batcher.offer(tq(opened_at))
        deadline = batcher.deadline
        window = batcher.cut_if_due(deadline + overrun)
        assert window is not None
        assert window.cut_at == deadline
        assert window.trigger == TRIGGER_DURATION

    @given(window_seconds=windows, opened_at=arrivals)
    def test_flush_at_exactly_the_deadline_is_a_duration_cut(
        self, window_seconds, opened_at
    ):
        batcher = MicroBatcher(window_seconds)
        batcher.offer(tq(opened_at))
        deadline = batcher.deadline
        window = batcher.flush(deadline)
        assert window.trigger == TRIGGER_DURATION
        assert window.cut_at == deadline

    @given(window_seconds=windows, opened_at=arrivals)
    def test_early_flush_is_stamped_at_now_with_flush_trigger(
        self, window_seconds, opened_at
    ):
        batcher = MicroBatcher(window_seconds)
        batcher.offer(tq(opened_at))
        early = opened_at + window_seconds / 2
        if early < batcher.deadline:
            window = batcher.flush(early)
            assert window.trigger == TRIGGER_FLUSH
            assert window.cut_at == early

    @given(window_seconds=windows)
    def test_flush_of_closed_batcher_is_none(self, window_seconds):
        assert MicroBatcher(window_seconds).flush(0.0) is None


class TestDegradeThenDropLadder:
    @given(
        capacity=st.integers(min_value=1, max_value=8),
        budget=st.integers(min_value=0, max_value=16),
        overflow=st.integers(min_value=0, max_value=40),
    )
    def test_ladder_flips_at_exactly_the_budget(
        self, capacity, budget, overflow
    ):
        ctrl = AdmissionController(
            queue_capacity=capacity,
            policy="degrade-then-drop",
            degrade_budget=budget,
        )
        outcomes = [
            ctrl.admit(tq(float(i))) for i in range(capacity + overflow)
        ]
        assert outcomes[:capacity] == [ADMITTED] * capacity
        shed = outcomes[capacity:]
        expected_degrades = min(budget, overflow)
        assert shed[:expected_degrades] == [SHED_DEGRADE] * expected_degrades
        assert shed[expected_degrades:] == [SHED_DROP] * (
            overflow - expected_degrades
        )
        assert ctrl.shed_degraded == expected_degrades
        assert ctrl.shed_dropped == overflow - expected_degrades

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        overflow=st.integers(min_value=1, max_value=40),
    )
    def test_unlimited_budget_never_drops(self, capacity, overflow):
        ctrl = AdmissionController(
            queue_capacity=capacity,
            policy="degrade-then-drop",
            degrade_budget=None,
        )
        outcomes = [
            ctrl.admit(tq(float(i))) for i in range(capacity + overflow)
        ]
        assert SHED_DROP not in outcomes
        assert ctrl.shed_degraded == overflow

    @given(capacity=st.integers(min_value=1, max_value=8))
    def test_zero_budget_drops_immediately(self, capacity):
        ctrl = AdmissionController(
            queue_capacity=capacity,
            policy="degrade-then-drop",
            degrade_budget=0,
        )
        for i in range(capacity):
            assert ctrl.admit(tq(float(i))) == ADMITTED
        assert ctrl.admit(tq(float(capacity))) == SHED_DROP
        assert ctrl.shed_degraded == 0

    @given(
        capacity=st.integers(min_value=1, max_value=8),
        budget=st.integers(min_value=1, max_value=8),
    )
    def test_pop_reopens_admission_without_resetting_the_budget(
        self, capacity, budget
    ):
        ctrl = AdmissionController(
            queue_capacity=capacity,
            policy="degrade-then-drop",
            degrade_budget=budget,
        )
        for i in range(capacity):
            ctrl.admit(tq(float(i)))
        for _ in range(budget):  # spend the whole degrade budget
            assert ctrl.admit(tq(99.0)) == SHED_DEGRADE
        ctrl.pop()
        assert ctrl.admit(tq(100.0)) == ADMITTED
        for i in range(capacity):  # budget stays spent across episodes
            assert ctrl.admit(tq(101.0 + i)) == SHED_DROP
