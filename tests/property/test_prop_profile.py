"""Property-based tests for the workload profiler."""

from hypothesis import given, settings, strategies as st

from repro.network.generators import grid_city
from repro.queries.profile import profile_workload
from repro.queries.query import QuerySet

GRAPH = grid_city(5, 5, seed=81)
N = GRAPH.num_vertices

pairs = st.tuples(
    st.integers(min_value=0, max_value=N - 1),
    st.integers(min_value=0, max_value=N - 1),
).filter(lambda p: p[0] != p[1])


@given(st.lists(pairs, min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_profile_invariants(query_pairs):
    queries = QuerySet.from_pairs(query_pairs)
    profile = profile_workload(GRAPH, queries)

    assert profile.num_queries == len(queries)
    assert 1 <= profile.distinct_queries <= profile.num_queries
    assert profile.distinct_sources <= profile.num_queries
    assert profile.distinct_targets <= profile.num_queries

    assert 0.0 <= profile.endpoint_gini <= 1.0
    assert 0.0 <= profile.repeat_fraction < 1.0
    assert profile.repeat_fraction == (
        (profile.num_queries - profile.distinct_queries) / profile.num_queries
    )

    assert 0 < profile.median_distance <= profile.p90_distance
    assert sum(profile.direction_histogram.values()) == profile.num_queries


@given(st.lists(pairs, min_size=1, max_size=30))
@settings(max_examples=40, deadline=None)
def test_profile_deterministic(query_pairs):
    queries = QuerySet.from_pairs(query_pairs)
    assert profile_workload(GRAPH, queries) == profile_workload(GRAPH, queries)
