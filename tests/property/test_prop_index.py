"""Property-based tests: CH and PLL agree with Dijkstra on random graphs."""

from hypothesis import given, settings, strategies as st

import math

from repro.index.ch import ContractionHierarchy
from repro.index.pll import PrunedLandmarkLabeling
from repro.network.generators import grid_city
from repro.search.dijkstra import dijkstra

# Indexes are built once per graph (construction inside a hypothesis body
# would dominate); hypothesis drives the query pairs.
GRAPHS = [grid_city(4, 4, seed=s, max_detour=1.0 + 0.3 * s) for s in range(3)]
CHS = [ContractionHierarchy(g) for g in GRAPHS]
PLLS = [PrunedLandmarkLabeling(g) for g in GRAPHS]


@st.composite
def indexed_pair(draw):
    idx = draw(st.integers(min_value=0, max_value=len(GRAPHS) - 1))
    n = GRAPHS[idx].num_vertices
    s = draw(st.integers(min_value=0, max_value=n - 1))
    t = draw(st.integers(min_value=0, max_value=n - 1))
    return idx, s, t


@given(indexed_pair())
@settings(max_examples=120, deadline=None)
def test_ch_matches_dijkstra(case):
    idx, s, t = case
    truth = dijkstra(GRAPHS[idx], s, t).distance
    got = CHS[idx].distance(s, t)
    assert math.isclose(got, truth, rel_tol=1e-9, abs_tol=1e-12)


@given(indexed_pair())
@settings(max_examples=120, deadline=None)
def test_pll_matches_dijkstra(case):
    idx, s, t = case
    truth = dijkstra(GRAPHS[idx], s, t).distance
    got = PLLS[idx].distance(s, t)
    assert math.isclose(got, truth, rel_tol=1e-9, abs_tol=1e-12)


@given(indexed_pair())
@settings(max_examples=40, deadline=None)
def test_ch_paths_are_walks(case):
    idx, s, t = case
    graph = GRAPHS[idx]
    r = CHS[idx].query(s, t)
    if not r.found or len(r.path) < 2:
        return
    total = 0.0
    for u, v in zip(r.path, r.path[1:]):
        assert graph.has_edge(u, v)
        total += graph.weight(u, v)
    assert math.isclose(total, r.distance, rel_tol=1e-9, abs_tol=1e-9)
