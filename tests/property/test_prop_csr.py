"""Property tests for the frozen CSR layer and heuristic-scale invalidation.

Hypothesis drives random mutation programs (set_weight / scale_weights /
add_edge in any interleaving) against a small grid and then checks the two
invariants the freeze layer leans on:

* ``heuristic_scale`` equals the brute-force ``min(w / euclid)`` exactly —
  a stale (too large) scale would make A* inadmissible and silently wrong;
* A* (dict and frozen-CSR paths alike) returns the Dijkstra distance.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.network.generators import grid_city
from repro.search.astar import a_star
from repro.search.dijkstra import dijkstra

from tests.network.test_heuristic_scale import brute_force_scale


def fresh_graph():
    return grid_city(4, 4, spacing=1.0, seed=11)


# One mutation: (op, a, b, value).  Interpretation depends on op.
mutation = st.tuples(
    st.sampled_from(["set", "scale", "add"]),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False, allow_infinity=False),
)


def apply_program(g, program):
    edges = [(u, v) for u, v, _ in g.edges()]
    for op, a, b, value in program:
        if op == "set":
            u, v = edges[(a * 16 + b) % len(edges)]
            g.set_weight(u, v, value)
        elif op == "scale":
            chosen = edges[(a * 16 + b) % len(edges)]
            g.scale_weights(min(max(value, 0.25), 4.0), edges=[chosen])
        else:  # add
            u, v = a % g.num_vertices, b % g.num_vertices
            if u != v and not g.has_edge(u, v):
                g.add_edge(u, v, max(value, 0.05))
                edges.append((u, v))


@given(st.lists(mutation, min_size=0, max_size=25))
@settings(max_examples=60, deadline=None)
def test_heuristic_scale_stays_exact(program):
    g = fresh_graph()
    apply_program(g, program)
    assert math.isclose(g.heuristic_scale, brute_force_scale(g), rel_tol=1e-12)


@given(
    st.lists(mutation, min_size=0, max_size=15),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=15),
)
@settings(max_examples=50, deadline=None)
def test_astar_equals_dijkstra_after_mutations(program, s, t):
    g = fresh_graph()
    apply_program(g, program)
    want = dijkstra(g, s, t).distance
    assert math.isclose(a_star(g, s, t).distance, want, rel_tol=1e-9, abs_tol=1e-12)
    # Same query through the frozen kernels: bit-identical to the dict path.
    g.freeze()
    assert a_star(g, s, t).distance == want or math.isclose(
        a_star(g, s, t).distance, want, rel_tol=1e-9, abs_tol=1e-12
    )


@given(st.lists(mutation, min_size=1, max_size=20))
@settings(max_examples=40, deadline=None)
def test_freeze_snapshot_matches_mutated_graph(program):
    g = fresh_graph()
    g.freeze()  # a snapshot exists *before* the mutations
    apply_program(g, program)
    csr = g.freeze()
    assert csr.version == g.version
    assert sorted(csr.edges()) == sorted(g.edges())
    assert csr.heuristic_scale == g.heuristic_scale
    assert csr.total_weight() == math.fsum(w for _, _, w in g.edges())
