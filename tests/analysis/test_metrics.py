"""Unit tests for the evaluation metrics."""

import math
import random
import statistics

import pytest

from repro.analysis.metrics import (
    ErrorReport,
    bytes_to_mb,
    error_report,
    exact_distances,
    mean,
    percentile,
)
from repro.core.results import BatchAnswer
from repro.queries.query import Query
from repro.search.common import PathResult
from repro.streaming.service import latency_percentile


def make_batch(entries):
    """entries: list of (query, distance, exact)."""
    batch = BatchAnswer(method="test")
    for q, d, exact in entries:
        batch.answers.append((q, PathResult(q.source, q.target, d, [], 0, exact)))
    return batch


class TestErrorReport:
    def test_exact_only_batch_is_zero_error(self, ring):
        q = Query(0, 100)
        from repro.search.dijkstra import dijkstra

        truth = dijkstra(ring, 0, 100).distance
        batch = make_batch([(q, truth, True)])
        report = error_report(ring, batch)
        assert report.average_error == 0.0
        assert report.max_error == 0.0
        assert report.exact_count == 1
        assert report.approximate_count == 0

    def test_average_excludes_exact_answers(self, ring):
        from repro.search.dijkstra import dijkstra

        q1, q2 = Query(0, 100), Query(1, 99)
        d1 = dijkstra(ring, 0, 100).distance
        d2 = dijkstra(ring, 1, 99).distance
        batch = make_batch([(q1, d1, True), (q2, d2 * 1.10, False)])
        report = error_report(ring, batch)
        # Average over the single approximate answer only: 10 %.
        assert report.average_error == pytest.approx(0.10, abs=1e-9)
        assert report.max_error == pytest.approx(0.10, abs=1e-9)
        assert report.average_error_pct == pytest.approx(10.0, abs=1e-6)

    def test_oracle_reused(self, ring):
        q = Query(0, 100)
        oracle = exact_distances(ring, [q])
        batch = make_batch([(q, oracle[q] * 1.02, False)])
        report = error_report(ring, batch, oracle)
        assert report.average_error == pytest.approx(0.02, abs=1e-9)

    def test_exact_distances_dedup(self, ring):
        q = Query(0, 100)
        oracle = exact_distances(ring, [q, q, q])
        assert len(oracle) == 1


class TestHelpers:
    def test_bytes_to_mb(self):
        assert bytes_to_mb(1024 * 1024) == 1.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5
        assert percentile(data, 50) == 3
        assert percentile(data, 25) == 2.0

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_empty_default(self):
        assert percentile([], 50, default=0.0) == 0.0
        assert percentile([], 99, default=-1.0) == -1.0

    def test_percentile_clamps_q(self):
        data = [1, 2, 3]
        assert percentile(data, -10) == 1
        assert percentile(data, 250) == 3

    def test_percentile_assume_sorted(self):
        assert percentile([1, 2, 3, 4], 50, assume_sorted=True) == 2.5

    def test_percentile_single(self):
        assert percentile([42], 99) == 42


class TestPercentileDifferential:
    """Pin the one shared implementation against ``statistics.quantiles``.

    The repo used to carry two percentile implementations (the analysis
    one raising on empty, the streaming one returning 0.0) that could
    drift apart; both now delegate to
    :func:`repro.analysis.metrics.percentile`.  These tests pin the
    interpolation of *both* public entry points to the stdlib's
    inclusive-quantiles method — the same (n-1)-rank linear
    interpolation — so any future drift fails loudly.
    """

    def _datasets(self):
        rng = random.Random(20260808)
        yield [rng.uniform(0.0, 1000.0) for _ in range(101)]
        yield [rng.gauss(50.0, 10.0) for _ in range(257)]
        yield [float(rng.randint(0, 5)) for _ in range(64)]  # heavy ties
        yield [3.25] * 17  # all-equal: every percentile is the sample

    def test_analysis_percentile_matches_statistics_quantiles(self):
        for data in self._datasets():
            cuts = statistics.quantiles(data, n=100, method="inclusive")
            for q in range(1, 100):
                assert percentile(data, q) == pytest.approx(
                    cuts[q - 1], rel=1e-12, abs=1e-9
                )

    def test_streaming_percentile_matches_statistics_quantiles(self):
        for data in self._datasets():
            ordered = sorted(data)
            cuts = statistics.quantiles(data, n=100, method="inclusive")
            for q in range(1, 100):
                assert latency_percentile(ordered, q / 100.0) == pytest.approx(
                    cuts[q - 1], rel=1e-12, abs=1e-9
                )

    def test_both_entry_points_agree_exactly(self):
        for data in self._datasets():
            ordered = sorted(data)
            for q in (0.0, 1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0):
                assert latency_percentile(ordered, q / 100.0) == percentile(data, q)

    def test_percentile_monotone_in_q(self):
        for data in self._datasets():
            values = [percentile(data, q) for q in range(0, 101)]
            assert values == sorted(values)

    def test_empty_policy_split(self):
        """The one behavioural difference left, now explicit per call site."""
        with pytest.raises(ValueError):
            percentile([], 50)
        assert latency_percentile([], 0.99) == 0.0
