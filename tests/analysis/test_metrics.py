"""Unit tests for the evaluation metrics."""

import math

import pytest

from repro.analysis.metrics import (
    ErrorReport,
    bytes_to_mb,
    error_report,
    exact_distances,
    mean,
    percentile,
)
from repro.core.results import BatchAnswer
from repro.queries.query import Query
from repro.search.common import PathResult


def make_batch(entries):
    """entries: list of (query, distance, exact)."""
    batch = BatchAnswer(method="test")
    for q, d, exact in entries:
        batch.answers.append((q, PathResult(q.source, q.target, d, [], 0, exact)))
    return batch


class TestErrorReport:
    def test_exact_only_batch_is_zero_error(self, ring):
        q = Query(0, 100)
        from repro.search.dijkstra import dijkstra

        truth = dijkstra(ring, 0, 100).distance
        batch = make_batch([(q, truth, True)])
        report = error_report(ring, batch)
        assert report.average_error == 0.0
        assert report.max_error == 0.0
        assert report.exact_count == 1
        assert report.approximate_count == 0

    def test_average_excludes_exact_answers(self, ring):
        from repro.search.dijkstra import dijkstra

        q1, q2 = Query(0, 100), Query(1, 99)
        d1 = dijkstra(ring, 0, 100).distance
        d2 = dijkstra(ring, 1, 99).distance
        batch = make_batch([(q1, d1, True), (q2, d2 * 1.10, False)])
        report = error_report(ring, batch)
        # Average over the single approximate answer only: 10 %.
        assert report.average_error == pytest.approx(0.10, abs=1e-9)
        assert report.max_error == pytest.approx(0.10, abs=1e-9)
        assert report.average_error_pct == pytest.approx(10.0, abs=1e-6)

    def test_oracle_reused(self, ring):
        q = Query(0, 100)
        oracle = exact_distances(ring, [q])
        batch = make_batch([(q, oracle[q] * 1.02, False)])
        report = error_report(ring, batch, oracle)
        assert report.average_error == pytest.approx(0.02, abs=1e-9)

    def test_exact_distances_dedup(self, ring):
        q = Query(0, 100)
        oracle = exact_distances(ring, [q, q, q])
        assert len(oracle) == 1


class TestHelpers:
    def test_bytes_to_mb(self):
        assert bytes_to_mb(1024 * 1024) == 1.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        data = [1, 2, 3, 4, 5]
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 5
        assert percentile(data, 50) == 3
        assert percentile(data, 25) == 2.0

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_single(self):
        assert percentile([42], 99) == 42
