"""Unit tests for result export and the ASCII bar renderer."""

import json
import math

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.export import (
    answers_to_csv,
    batch_to_json,
    load_answers_csv,
    series_to_csv,
)
from repro.analysis.tables import render_bars
from repro.core.results import BatchAnswer
from repro.queries.query import Query
from repro.search.common import PathResult


@pytest.fixture()
def batch():
    b = BatchAnswer(method="m", answer_seconds=1.0)
    b.answers = [
        (Query(0, 1), PathResult(0, 1, 5.5, [0, 1], 3, True)),
        (Query(2, 3), PathResult(2, 3, math.inf, [], 7, True)),
        (Query(4, 5), PathResult(4, 5, 9.25, [4, 9, 5], 0, False)),
    ]
    return b


class TestCsvRoundTrip:
    def test_roundtrip(self, batch, tmp_path):
        path = tmp_path / "answers.csv"
        assert answers_to_csv(batch, path) == 3
        rows = load_answers_csv(path)
        assert len(rows) == 3
        assert rows[0]["distance"] == 5.5
        assert math.isinf(rows[1]["distance"])
        assert rows[2]["exact"] is False
        assert rows[2]["path_length"] == 3

    def test_empty_batch(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert answers_to_csv(BatchAnswer(method="m"), path) == 0
        assert load_answers_csv(path) == []


class TestJson:
    def test_payload_shape(self, batch, tmp_path):
        path = tmp_path / "batch.json"
        payload = batch_to_json(batch, path)
        assert payload["method"] == "m"
        assert payload["answers"][1]["distance"] is None  # inf -> null
        on_disk = json.loads(path.read_text())
        assert on_disk == payload

    def test_no_path_returns_payload_only(self, batch):
        payload = batch_to_json(batch)
        assert "summary" in payload


class TestSeriesCsv:
    def test_tidy_rows(self, tmp_path):
        result = ExperimentResult(
            "figX", xs=[10, 20], series={"a": [1.0, 2.0], "b": [3.0, 4.0]}
        )
        path = tmp_path / "series.csv"
        assert series_to_csv(result, path) == 4
        text = path.read_text()
        assert "x,series,value" in text
        assert "10,a,1.0" in text


class TestRenderBars:
    def test_linear_bars(self):
        text = render_bars(["a", "bb"], [1.0, 2.0], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("a ")
        assert lines[2].count("#") > lines[1].count("#")

    def test_log_scale_compresses(self):
        lin = render_bars(["x", "y"], [0.001, 1000.0])
        log = render_bars(["x", "y"], [0.001, 1000.0], log_scale=True)
        lin_small = lin.splitlines()[0].count("#")
        log_small = log.splitlines()[0].count("#")
        assert log_small >= lin_small

    def test_zero_value_has_no_bar(self):
        text = render_bars(["z"], [0.0])
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_bars(["a"], [-1.0])

    def test_empty(self):
        assert render_bars([], [], title="t") == "t"
