"""Tests for the multiprocess batch runner (exactness across processes)."""

import math

import pytest

from repro.analysis.mp_runner import parallel_answer
from repro.core.coclustering import CoClusteringDecomposer
from repro.core.search_space import SearchSpaceDecomposer
from repro.exceptions import ConfigurationError
from repro.search.dijkstra import dijkstra


@pytest.fixture(scope="module")
def decomposition(ring, ring_batch):
    return SearchSpaceDecomposer(ring).decompose(ring_batch)


class TestParallelLocalCache:
    def test_exact_answers_across_processes(self, ring, ring_batch, decomposition):
        result = parallel_answer(
            ring,
            decomposition,
            answerer_kind="local-cache",
            answerer_kwargs={"cache_bytes": 10**6},
            workers=2,
            min_queries_per_worker=10,
        )
        assert result.answer.num_queries == len(ring_batch)
        for q, r in result.answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert math.isclose(r.distance, truth, rel_tol=1e-12)

    def test_falls_back_to_one_worker_for_small_batches(self, ring, decomposition):
        result = parallel_answer(
            ring, decomposition, workers=8, min_queries_per_worker=10**6
        )
        assert result.workers == 1

    def test_accounting_aggregated(self, ring, decomposition, ring_batch):
        result = parallel_answer(
            ring,
            decomposition,
            answerer_kwargs={"cache_bytes": 10**6},
            workers=2,
            min_queries_per_worker=10,
        )
        answer = result.answer
        assert answer.cache_hits + answer.cache_misses == len(ring_batch)
        assert answer.visited > 0
        assert answer.num_clusters == len(decomposition.clusters)


class TestParallelR2R:
    def test_error_bound_survives_processes(self, ring, ring_workload):
        from repro.queries.workload import band_for_network

        lo, hi = band_for_network(ring, "r2r")
        batch = ring_workload.batch(40, min_dist=lo, max_dist=hi)
        cc = CoClusteringDecomposer(ring, eta=0.05).decompose(batch)
        result = parallel_answer(
            ring,
            cc,
            answerer_kind="r2r",
            answerer_kwargs={"eta": 0.05, "build_paths": False},
            workers=2,
            min_queries_per_worker=5,
        )
        assert result.answer.num_queries == len(batch)
        for q, r in result.answer.answers:
            truth = dijkstra(ring, q.source, q.target).distance
            assert r.distance <= truth * 1.05 + 1e-9


class TestValidation:
    def test_bad_workers(self, ring, decomposition):
        with pytest.raises(ConfigurationError):
            parallel_answer(ring, decomposition, workers=0)

    def test_bad_kind(self, ring, decomposition):
        with pytest.raises(ConfigurationError):
            parallel_answer(ring, decomposition, answerer_kind="quantum")
