"""Unit tests for the LPT multi-server dispatch simulator."""

import pytest

from repro.analysis.parallel import (
    ScheduleResult,
    cluster_costs_from_answers,
    lpt_makespan,
)
from repro.exceptions import ConfigurationError


class TestLPT:
    def test_single_server_is_total_work(self):
        r = lpt_makespan([1.0, 2.0, 3.0], 1)
        assert r.makespan_seconds == pytest.approx(6.0)
        assert r.speedup == pytest.approx(1.0)

    def test_perfect_split(self):
        r = lpt_makespan([3.0, 3.0], 2)
        assert r.makespan_seconds == pytest.approx(3.0)
        assert r.speedup == pytest.approx(2.0)
        assert r.utilisation == pytest.approx(1.0)

    def test_indivisible_unit_bounds_makespan(self):
        # One huge cluster dominates no matter how many servers.
        r = lpt_makespan([10.0, 1.0, 1.0], 40)
        assert r.makespan_seconds == pytest.approx(10.0)

    def test_lpt_within_four_thirds_of_optimal(self):
        # Classic LPT example: optimal makespan is 12 here.
        costs = [7, 7, 6, 6, 5, 5]
        r = lpt_makespan(costs, 3)
        assert r.makespan_seconds <= 12 * 4 / 3 + 1e-9

    def test_more_servers_never_slower(self):
        costs = [5, 4, 3, 2, 1, 1, 1]
        m = [lpt_makespan(costs, k).makespan_seconds for k in (1, 2, 4, 8)]
        assert m == sorted(m, reverse=True)

    def test_zero_and_negative_costs_ignored(self):
        r = lpt_makespan([0.0, -1.0, 2.0], 2)
        assert r.makespan_seconds == pytest.approx(2.0)
        assert r.total_work_seconds == pytest.approx(2.0)

    def test_empty_costs(self):
        r = lpt_makespan([], 4)
        assert r.makespan_seconds == 0.0
        assert r.speedup == 0.0  # no work done => no phantom parallelism
        assert r.utilisation == 0.0

    def test_zero_servers_rejected(self):
        with pytest.raises(ConfigurationError):
            lpt_makespan([1.0], 0)

    def test_per_server_loads_sum_to_total(self):
        costs = [3.0, 2.5, 2.0, 1.0, 0.5]
        r = lpt_makespan(costs, 3)
        assert sum(r.per_server_seconds) == pytest.approx(sum(costs))


class TestClusterCosts:
    def test_aggregation(self):
        answers = [(0, 1.0), (1, 2.0), (2, 3.0), (3, 1.0)]
        costs = cluster_costs_from_answers(answers, cluster_of=lambda i: i % 2)
        assert sorted(costs) == [3.0, 4.0]
