"""Unit tests for the search-space validation study."""

import pytest

from repro.analysis.validation import (
    CoverageReport,
    astar_settled_vertices,
    summarize_coverage,
    validate_search_space,
)
from repro.queries.query import Query
from repro.search.astar import a_star


class TestSettledVertices:
    def test_contains_path_vertices(self, ring):
        settled = astar_settled_vertices(ring, 0, 100)
        path = a_star(ring, 0, 100).path
        assert set(path) <= settled

    def test_same_vertex(self, ring):
        assert astar_settled_vertices(ring, 5, 5) == {5}

    def test_unreachable_settles_component(self, line_graph):
        settled = astar_settled_vertices(line_graph, 2, 0)
        assert settled == {2, 3, 4}


class TestValidation:
    def test_reports_shape(self, ring, ring_batch):
        reports = validate_search_space(ring, list(ring_batch)[:20])
        assert len(reports) == 20
        for r in reports:
            assert 0.0 <= r.recall <= 1.0
            assert 0.0 <= r.precision <= 1.0
            assert r.actual_cells > 0

    def test_prediction_covers_much_of_the_search(self, ring, ring_batch):
        """The SSE model's usefulness claim: recall is substantial."""
        reports = validate_search_space(ring, list(ring_batch)[:40])
        summary = summarize_coverage(reports)
        assert summary["recall"] > 0.4
        assert summary["precision"] > 0.2

    def test_endpoint_cells_always_predicted(self, ring, ring_batch):
        from repro.core.search_space import SearchSpaceOracle

        oracle = SearchSpaceOracle(ring)
        for q in list(ring_batch)[:10]:
            predicted = oracle.estimate(q).covered_cells
            assert oracle.grid.cell_of_vertex(q.source) in predicted
            assert oracle.grid.cell_of_vertex(q.target) in predicted

    def test_empty_summary(self):
        summary = summarize_coverage([])
        assert summary["queries"] == 0.0

    def test_summary_math(self):
        reports = [
            CoverageReport(Query(0, 1), 10, 5, recall=1.0, precision=0.5),
            CoverageReport(Query(1, 2), 4, 4, recall=0.5, precision=0.5),
        ]
        summary = summarize_coverage(reports)
        assert summary["recall"] == pytest.approx(0.75)
        assert summary["precision"] == pytest.approx(0.5)
        assert summary["inflation"] == pytest.approx((10 / 5 + 4 / 4) / 2)
