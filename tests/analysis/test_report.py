"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import _HEADERS, generate_report


@pytest.fixture(scope="module")
def report_text(tmp_path_factory):
    path = tmp_path_factory.mktemp("report") / "run.md"
    text = generate_report(
        scale="tiny", sizes=(15, 30), seed=7, fig8_size=20, num_servers=4, path=path
    )
    return text, path


class TestReport:
    def test_written_to_disk(self, report_text):
        text, path = report_text
        assert path.exists()
        assert path.read_text(encoding="utf-8") == text

    def test_all_sections_present(self, report_text):
        text, _ = report_text
        for header in _HEADERS.values():
            assert header in text, header

    def test_metadata_present(self, report_text):
        text, _ = report_text
        assert "network scale: `tiny`" in text
        assert "[15, 30]" in text
        assert "seed: 7" in text

    def test_artefacts_embedded(self, report_text):
        text, _ = report_text
        assert "Fig 7-(a)" in text
        assert "Table II" in text
        assert "log-scale seconds" in text

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli_run.md"
        code = main(
            [
                "reproduce",
                "--scale",
                "tiny",
                "--sizes",
                "15,30",
                "--fig8-size",
                "20",
                "--servers",
                "4",
                "--report",
                str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        assert "report written" in capsys.readouterr().out
