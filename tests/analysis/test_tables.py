"""Unit tests for the table/series renderers."""

from repro.analysis.tables import check_monotone, format_cell, render_series, render_table


class TestFormatCell:
    def test_int(self):
        assert format_cell(42) == "42"

    def test_float(self):
        assert format_cell(1.23456) == "1.235"

    def test_zero(self):
        assert format_cell(0.0) == "0"

    def test_scientific_for_extremes(self):
        assert "e" in format_cell(123456.0)
        assert "e" in format_cell(0.0000012)

    def test_bool_not_treated_as_number(self):
        assert format_cell(True) == "True"

    def test_string_passthrough(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(["a", "bb"], [[1, 2], [30, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        # Header separator present.
        assert set(lines[2]) <= {"-", "+"}
        # All rows same width.
        widths = {len(l) for l in lines[1:]}
        assert len(widths) == 1

    def test_empty_rows(self):
        text = render_table(["x"], [])
        assert "x" in text


class TestRenderSeries:
    def test_series_layout(self):
        text = render_series("size", [10, 20], {"m1": [1.0, 2.0], "m2": [3.0, 4.0]})
        lines = text.splitlines()
        assert "size" in lines[0]
        assert "m1" in lines[0] and "m2" in lines[0]
        assert len(lines) == 4  # header + sep + 2 rows


class TestCheckMonotone:
    def test_increasing(self):
        assert check_monotone([1, 2, 3])
        assert not check_monotone([1, 3, 2])

    def test_decreasing(self):
        assert check_monotone([3, 2, 1], increasing=False)
        assert not check_monotone([1, 2], increasing=False)

    def test_slack_tolerates_noise(self):
        assert check_monotone([1.0, 0.95, 2.0], slack=0.1)
        assert not check_monotone([1.0, 0.5, 2.0], slack=0.1)

    def test_single_and_empty(self):
        assert check_monotone([1])
        assert check_monotone([])
