"""Unit tests for the capacity planner."""

import pytest

from repro.analysis.capacity import (
    CapacityPlan,
    compare_methods,
    scale_costs,
    servers_needed,
)
from repro.exceptions import ConfigurationError


class TestServersNeeded:
    def test_fits_on_one_server(self):
        plan = servers_needed([0.1, 0.2, 0.3], deadline_seconds=1.0)
        assert plan.servers == 1
        assert plan.makespan_seconds == pytest.approx(0.6)
        assert plan.headroom == pytest.approx(0.4)

    def test_needs_multiple_servers(self):
        # 10 units of 0.3s against a 1s deadline: 3s of work, but 3 servers
        # force one to take 4 units (1.2s) -> the true minimum is 4.
        plan = servers_needed([0.3] * 10, deadline_seconds=1.0)
        assert plan.servers == 4
        assert plan.makespan_seconds <= 1.0

    def test_minimality(self):
        plan = servers_needed([0.3] * 10, deadline_seconds=1.0)
        from repro.analysis.parallel import lpt_makespan

        assert lpt_makespan([0.3] * 10, plan.servers - 1).makespan_seconds > 1.0

    def test_indivisible_unit_beyond_deadline(self):
        with pytest.raises(ConfigurationError):
            servers_needed([2.0], deadline_seconds=1.0)

    def test_empty_costs(self):
        plan = servers_needed([], deadline_seconds=1.0)
        assert plan.servers == 1
        assert plan.total_work_seconds == 0.0

    def test_invalid_deadline(self):
        with pytest.raises(ConfigurationError):
            servers_needed([0.1], deadline_seconds=0.0)

    def test_method_label_carried(self):
        plan = servers_needed([0.1], 1.0, method="slc-s")
        assert plan.method == "slc-s"


class TestScaleCosts:
    def test_integer_factor(self):
        assert scale_costs([1.0, 2.0], 3.0) == [1.0, 2.0] * 3

    def test_fractional_factor(self):
        out = scale_costs([1.0, 2.0, 3.0, 4.0], 1.5)
        assert len(out) == 6
        assert out[:4] == [1.0, 2.0, 3.0, 4.0]

    def test_scaling_raises_server_count(self):
        base = [0.05] * 20  # 1s of work
        small = servers_needed(base, 1.0)
        big = servers_needed(scale_costs(base, 10.0), 1.0)
        assert big.servers > small.servers

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            scale_costs([1.0], 0.0)

    def test_empty(self):
        assert scale_costs([], 2.0) == []


class TestCompareMethods:
    def test_sorted_by_servers(self):
        plans = [
            CapacityPlan("a", 5, 0.9, 1.0, 4.0),
            CapacityPlan("b", 2, 0.8, 1.0, 1.5),
            CapacityPlan("c", 2, 0.5, 1.0, 1.0),
        ]
        ordered = compare_methods(plans)
        assert [p.method for p in ordered] == ["c", "b", "a"]


class TestEndToEnd:
    def test_batching_reduces_server_count(self, ring, ring_workload):
        """The paper's pitch, measured: SLC needs no more servers than A*."""
        import time

        from repro.baselines.one_by_one import OneByOneAnswerer
        from repro.core.local_cache import LocalCacheAnswerer
        from repro.core.search_space import SearchSpaceDecomposer
        from repro.core.clusters import Decomposition
        from repro.queries.query import QuerySet

        batch = ring_workload.batch(120)
        answerer = OneByOneAnswerer(ring)
        astar_costs = []
        for q in batch:
            t0 = time.perf_counter()
            answerer.answer(QuerySet([q]))
            astar_costs.append(time.perf_counter() - t0)

        decomposition = SearchSpaceDecomposer(ring).decompose(batch)
        lc = LocalCacheAnswerer(ring, 10**6)
        cluster_costs = []
        for cluster in decomposition:
            t0 = time.perf_counter()
            lc.answer(Decomposition([cluster], "sse", 0.0))
            cluster_costs.append(time.perf_counter() - t0)

        deadline = max(sum(astar_costs), sum(cluster_costs))  # generous
        astar_plan = servers_needed(astar_costs, deadline, method="astar")
        slc_plan = servers_needed(cluster_costs, deadline, method="slc-s")
        assert slc_plan.servers <= astar_plan.servers + 1
