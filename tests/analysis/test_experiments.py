"""Smoke tests for the experiment harness on the tiny network.

These verify the harness produces complete, well-formed artefacts; the
paper-shape assertions live in benchmarks/ where sizes are realistic.
"""

import pytest

from repro.analysis import experiments as exp

SIZES = (20, 40)


@pytest.fixture(scope="module")
def env():
    return exp.build_env(scale="tiny", seed=7)


@pytest.fixture(scope="module")
def cache_suites(env):
    return exp.run_cache_suite(env, SIZES, cache_fractions=(0.7, 1.0))


@pytest.fixture(scope="module")
def r2r_suites(env):
    return exp.run_r2r_suite(env, SIZES)


class TestEnv:
    def test_env_bands_ordered(self, env):
        assert env.cache_band[0] < env.cache_band[1]
        assert env.r2r_band[0] < env.r2r_band[1]


class TestFig7a:
    def test_series_complete(self, env):
        result = exp.run_fig7a(env, SIZES)
        assert result.experiment == "fig7a"
        assert set(result.series) == {"zigzag", "search-space", "co-clustering"}
        assert all(len(v) == len(SIZES) for v in result.series.values())
        assert all(t >= 0 for v in result.series.values() for t in v)
        assert "Fig 7-(a)" in result.rendered


class TestCacheSuite:
    def test_suites_complete(self, cache_suites):
        assert len(cache_suites) == len(SIZES)
        for suite in cache_suites:
            assert set(suite.hit_ratio) == set(exp.CACHE_METHODS)
            assert set(suite.answer_seconds) == set(exp.CACHE_METHODS)
            assert suite.gc_bytes > 0

    def test_hit_ratios_in_range(self, cache_suites):
        for suite in cache_suites:
            for method, ratio in suite.hit_ratio.items():
                assert 0.0 <= ratio <= 1.0, method

    def test_table1(self, env, cache_suites):
        result = exp.run_table1(env, cache_suites)
        assert len(result.series["cache_mb"]) == len(SIZES)
        assert all(mb > 0 for mb in result.series["cache_mb"])

    def test_fig7b(self, env, cache_suites):
        result = exp.run_fig7b(env, cache_suites)
        assert set(result.series) == {"gc", "zlc", "slc-r", "slc-s"}

    def test_fig7c_and_e_fractions(self, env, cache_suites):
        c = exp.run_fig7c(env, cache_suites)
        e = exp.run_fig7e(env, cache_suites)
        assert set(c.series) == {"70%|GC|", "100%|GC|"}
        assert set(e.series) == {"70%|GC|", "100%|GC|"}

    def test_fig7d(self, env, cache_suites):
        result = exp.run_fig7d(env, cache_suites)
        assert set(result.series) == set(exp.CACHE_METHODS)
        assert all(t > 0 for v in result.series.values() for t in v)

    def test_fig7d_vnn_supplement(self, env, cache_suites):
        result = exp.run_fig7d_vnn(env, cache_suites)
        assert set(result.series) == set(exp.CACHE_METHODS)
        assert all(v > 0 for series in result.series.values() for v in series)
        assert "VNN" in result.rendered

    def test_sweep_visited_recorded(self, cache_suites):
        for suite in cache_suites:
            assert set(suite.sweep_visited) == set(suite.sweep_hit_ratio)
            assert all(v > 0 for v in suite.sweep_visited.values())


class TestR2RSuite:
    def test_suites_complete(self, r2r_suites):
        for suite in r2r_suites:
            assert set(suite.answer_seconds) == set(exp.R2R_METHODS)
            assert set(suite.errors) == {"k-path", "r2r-s", "r2r-r"}

    def test_fig7f(self, env, r2r_suites):
        result = exp.run_fig7f(env, r2r_suites)
        assert set(result.series) == set(exp.R2R_METHODS)

    def test_fig7f_vnn_supplement(self, env, r2r_suites):
        result = exp.run_fig7f_vnn(env, r2r_suites)
        assert set(result.series) == set(exp.R2R_METHODS)
        assert all(v > 0 for series in result.series.values() for v in series)

    def test_table2_r2r_bounded(self, env, r2r_suites):
        result = exp.run_table2(env, r2r_suites)
        for max_err in result.series["r2r_max"]:
            assert max_err <= 5.0 + 1e-6  # eta = 5 %

    def test_r2r_errors_nonnegative(self, r2r_suites):
        for suite in r2r_suites:
            for report in suite.errors.values():
                assert report.average_error >= 0.0
                assert report.max_error >= report.average_error


class TestFig8:
    def test_fig8_without_indexes(self, env):
        result = exp.run_fig8(env, size=30, num_servers=4, include_indexes=False)
        assert set(result.xs) == {"astar", "slc-s", "astar-long", "r2r-s"}
        assert all(t >= 0 for t in result.series["seconds"])

    def test_fig8_with_indexes(self, env):
        result = exp.run_fig8(env, size=20, num_servers=4, include_indexes=True)
        assert "ch-construction" in result.xs
        assert "pll-construction" in result.xs
