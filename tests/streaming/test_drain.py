"""Graceful drain: stop admitting, flush the open window, answer in-flight."""

import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city
from repro.queries.arrivals import PoissonArrivals
from repro.queries.workload import WorkloadGenerator
from repro.streaming import StreamingQueryService


@pytest.fixture(scope="module")
def graph():
    return grid_city(6, 6, seed=1)


@pytest.fixture(scope="module")
def stream(graph):
    workload = WorkloadGenerator(graph, seed=2)
    return PoissonArrivals(workload, rate=100.0, seed=3).duration(2.0)


def run_service(graph, arrivals, **kwargs):
    kwargs.setdefault("window_seconds", 0.25)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("clock", "simulated")
    with StreamingQueryService(graph, **kwargs) as service:
        return service.run(arrivals)


class TestDrainAfter:
    def test_mid_stream_drain_keeps_accounting_invariant(self, graph, stream):
        report = run_service(graph, stream, drain_after_seconds=1.0)
        assert report.drained
        assert report.unadmitted_arrivals > 0
        assert report.total_arrivals + report.unadmitted_arrivals == len(stream)
        assert (
            report.answered_queries + len(report.dead_letters)
            == report.total_arrivals
        )
        assert report.unaccounted_queries == 0

    def test_everything_admitted_before_cutoff_is_answered(self, graph, stream):
        report = run_service(graph, stream, drain_after_seconds=1.0)
        admitted = [tq for tq in stream if tq.arrival < 1.0]
        # Arrivals strictly before the cutoff are always admitted; the open
        # window at the cutoff instant may admit a few more before flushing.
        assert report.total_arrivals >= len(admitted)
        assert report.answered_queries >= len(admitted) - len(report.dead_letters)

    def test_drain_at_zero_admits_nothing(self, graph, stream):
        report = run_service(graph, stream, drain_after_seconds=0.0)
        assert report.drained
        assert report.answered_queries == 0
        assert report.unadmitted_arrivals == len(stream)

    def test_drain_after_stream_end_is_a_no_op(self, graph, stream):
        report = run_service(graph, stream, drain_after_seconds=3600.0)
        assert not report.drained
        assert report.unadmitted_arrivals == 0
        assert report.answered_queries == len(stream)

    def test_drained_report_flags_default_false(self, graph, stream):
        report = run_service(graph, stream)
        assert not report.drained
        assert report.unadmitted_arrivals == 0


class TestRequestDrain:
    def test_request_drain_flips_flag(self, graph):
        service = StreamingQueryService(graph, workers=0, clock="simulated")
        assert not service.draining
        service.request_drain()
        assert service.draining

    def test_pre_requested_drain_abandons_whole_stream(self, graph, stream):
        with StreamingQueryService(
            graph,
            window_seconds=0.25,
            workers=0,
            clock="simulated",
        ) as service:
            service.request_drain()
            report = service.run(stream)
        assert report.drained
        assert report.unadmitted_arrivals == len(stream)
        assert report.answered_queries == 0
        assert report.unaccounted_queries == 0


class TestValidation:
    def test_negative_drain_after_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            StreamingQueryService(
                graph, workers=0, clock="simulated", drain_after_seconds=-0.5
            )
