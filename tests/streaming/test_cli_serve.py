"""`repro serve` CLI: smoke runs, exit codes, metrics artefacts."""

import json

import pytest

from repro.cli import main


def test_serve_simulated_smoke(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "100",
        "--window-ms", "100", "--max-batch", "16", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "SERVE OK" in out
    assert "0 dropped" in out


def test_serve_writes_streaming_metrics(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "80",
        "--metrics-out", str(metrics),
    ])
    assert code == 0
    data = json.loads(metrics.read_text(encoding="utf-8"))
    counters = data["counters"]
    assert counters["streaming.arrivals_total"] > 0
    assert counters["streaming.windows"] > 0
    assert "streaming.queue_depth" in data["gauges"]


def test_serve_drop_policy_fails_on_drop_flag(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "300",
        "--window-ms", "100", "--max-batch", "8",
        "--queue-capacity", "2", "--shed-policy", "drop",
        "--service-cost", "0.02", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "SERVE FAILED" in out


def test_serve_degrade_policy_absorbs_the_same_overload(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "300",
        "--window-ms", "100", "--max-batch", "8",
        "--queue-capacity", "2", "--shed-policy", "degrade",
        "--service-cost", "0.02", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "SERVE OK" in out


def test_serve_with_epochs(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1.5", "--rate", "100",
        "--epoch-every", "0.5", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "invalidations" in out


@pytest.mark.slow
def test_serve_real_clock_with_workers(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "150",
        "--clock", "real", "--workers", "2", "--fail-on-drop",
    ])
    assert code == 0
    assert "SERVE OK" in capsys.readouterr().out


def test_serve_deadline_storm_dead_letters_backlog(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "100",
        "--window-ms", "100", "--deadline-ms", "150",
        "--service-cost", "0.05",
    ])
    out = capsys.readouterr().out
    assert code == 0  # dead-lettered, not unaccounted
    assert "deadline      :" in out
    assert "expired" in out
    assert "SERVE OK" in out


def test_serve_generous_deadline_changes_nothing(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "100",
        "--deadline-ms", "60000", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 expired" in out


def test_serve_drain_after_abandons_late_arrivals(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "2", "--rate", "100",
        "--drain-after", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "drained       :" in out
    assert "SERVE OK" in out


def test_serve_journal_then_recover_roundtrip(tmp_path, capsys):
    wal = str(tmp_path / "wal.jsonl")
    code = main([
        "serve", "--scale", "tiny", "--duration", "2", "--rate", "100",
        "--journal", wal, "--drain-after", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "journal       :" in out
    assert "still pending in the journal" in out

    code = main([
        "serve", "--scale", "tiny", "--duration", "2", "--rate", "100",
        "--journal", wal, "--recover", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "recover       :" in out
    assert "SERVE OK" in out

    # Third pass: nothing left to recover — early idempotent exit.
    code = main([
        "serve", "--scale", "tiny", "--duration", "2", "--rate", "100",
        "--journal", wal, "--recover",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "RECOVER OK" in out
    assert "no pending" in out


def test_serve_recover_without_journal_exits(capsys):
    with pytest.raises(SystemExit):
        main([
            "serve", "--scale", "tiny", "--duration", "1", "--rate", "50",
            "--recover",
        ])


def test_serve_unaccounted_queries_always_fail(monkeypatch, capsys):
    from repro.streaming import StreamingQueryService
    from repro.streaming.service import StreamReport

    def fake_run(self, arrivals):
        report = StreamReport()
        report.total_arrivals = 5  # nothing answered: all 5 silently lost
        return report

    monkeypatch.setattr(StreamingQueryService, "run", fake_run)
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "50",
        "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "unaccounted" in out
