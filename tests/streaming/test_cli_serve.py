"""`repro serve` CLI: smoke runs, exit codes, metrics artefacts."""

import json

import pytest

from repro.cli import main


def test_serve_simulated_smoke(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "100",
        "--window-ms", "100", "--max-batch", "16", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "SERVE OK" in out
    assert "0 dropped" in out


def test_serve_writes_streaming_metrics(tmp_path, capsys):
    metrics = tmp_path / "metrics.json"
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "80",
        "--metrics-out", str(metrics),
    ])
    assert code == 0
    data = json.loads(metrics.read_text(encoding="utf-8"))
    counters = data["counters"]
    assert counters["streaming.arrivals_total"] > 0
    assert counters["streaming.windows"] > 0
    assert "streaming.queue_depth" in data["gauges"]


def test_serve_drop_policy_fails_on_drop_flag(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "300",
        "--window-ms", "100", "--max-batch", "8",
        "--queue-capacity", "2", "--shed-policy", "drop",
        "--service-cost", "0.02", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "SERVE FAILED" in out


def test_serve_degrade_policy_absorbs_the_same_overload(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "300",
        "--window-ms", "100", "--max-batch", "8",
        "--queue-capacity", "2", "--shed-policy", "degrade",
        "--service-cost", "0.02", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "SERVE OK" in out


def test_serve_with_epochs(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1.5", "--rate", "100",
        "--epoch-every", "0.5", "--fail-on-drop",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "invalidations" in out


@pytest.mark.slow
def test_serve_real_clock_with_workers(capsys):
    code = main([
        "serve", "--scale", "tiny", "--duration", "1", "--rate", "150",
        "--clock", "real", "--workers", "2", "--fail-on-drop",
    ])
    assert code == 0
    assert "SERVE OK" in capsys.readouterr().out
