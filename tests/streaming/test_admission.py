"""Admission control: bounded queue, shedding policies, stall episodes."""

import pytest

from repro.exceptions import ConfigurationError
from repro.queries.arrivals import TimedQuery
from repro.queries.query import Query
from repro.streaming import (
    ADMITTED,
    AdmissionController,
    POLICIES,
    SHED_DEGRADE,
    SHED_DROP,
)


def tq(at: float = 0.0) -> TimedQuery:
    return TimedQuery(at, Query(0, 1))


class TestConfig:
    def test_capacity_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(queue_capacity=0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(policy="explode")

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(policy="degrade-then-drop", degrade_budget=-1)

    def test_policies_constant(self):
        assert POLICIES == ("degrade", "degrade-then-drop", "drop")


class TestAdmission:
    def test_admits_until_capacity(self):
        ctrl = AdmissionController(queue_capacity=3)
        for _ in range(3):
            assert ctrl.admit(tq()) == ADMITTED
        assert ctrl.depth == 3
        assert ctrl.admitted == 3

    def test_fifo_order(self):
        ctrl = AdmissionController(queue_capacity=10)
        for at in [0.1, 0.2, 0.3]:
            ctrl.admit(tq(at))
        assert [ctrl.pop().arrival for _ in range(3)] == [0.1, 0.2, 0.3]

    def test_degrade_policy_never_drops(self):
        ctrl = AdmissionController(queue_capacity=1, policy="degrade")
        ctrl.admit(tq())
        for _ in range(5):
            assert ctrl.admit(tq()) == SHED_DEGRADE
        assert ctrl.shed_degraded == 5
        assert ctrl.shed_dropped == 0

    def test_drop_policy_drops_overflow(self):
        ctrl = AdmissionController(queue_capacity=1, policy="drop")
        ctrl.admit(tq())
        assert ctrl.admit(tq()) == SHED_DROP
        assert ctrl.shed_dropped == 1

    def test_degrade_then_drop_respects_budget(self):
        ctrl = AdmissionController(
            queue_capacity=1, policy="degrade-then-drop", degrade_budget=2
        )
        ctrl.admit(tq())
        outcomes = [ctrl.admit(tq()) for _ in range(4)]
        assert outcomes == [SHED_DEGRADE, SHED_DEGRADE, SHED_DROP, SHED_DROP]
        assert ctrl.shed_total == 4

    def test_unlimited_budget_equals_degrade(self):
        ctrl = AdmissionController(
            queue_capacity=1, policy="degrade-then-drop", degrade_budget=None
        )
        ctrl.admit(tq())
        assert all(ctrl.admit(tq()) == SHED_DEGRADE for _ in range(10))


class TestStallEpisodes:
    def test_contiguous_overflow_counts_one_episode(self):
        ctrl = AdmissionController(queue_capacity=1)
        ctrl.admit(tq())
        for _ in range(4):
            ctrl.admit(tq())
        assert ctrl.backpressure_stalls == 1

    def test_pop_ends_the_episode(self):
        ctrl = AdmissionController(queue_capacity=1)
        ctrl.admit(tq())
        ctrl.admit(tq())  # episode 1
        ctrl.pop()
        ctrl.admit(tq())  # queue has room again
        ctrl.admit(tq())  # episode 2
        assert ctrl.backpressure_stalls == 2
