"""Arrivals WAL: roundtrip, torn-line tolerance, crash-and-recover drills."""

import json
import os
import subprocess
import sys

import pytest

from repro.exceptions import ConfigurationError
from repro.network.generators import grid_city
from repro.queries.arrivals import PoissonArrivals, TimedQuery
from repro.queries.query import Query
from repro.queries.workload import WorkloadGenerator
from repro.resilience.faults import FAULT_EXIT_CODE
from repro.streaming import (
    ArrivalJournal,
    OUTCOME_ANSWERED,
    StreamingQueryService,
    scan_journal,
)


@pytest.fixture(scope="module")
def graph():
    return grid_city(6, 6, seed=1)


@pytest.fixture(scope="module")
def stream(graph):
    workload = WorkloadGenerator(graph, seed=2)
    return PoissonArrivals(workload, rate=100.0, seed=3).duration(1.0)


def run_service(graph, arrivals, **kwargs):
    kwargs.setdefault("window_seconds", 0.25)
    kwargs.setdefault("max_batch", 32)
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("clock", "simulated")
    with StreamingQueryService(graph, **kwargs) as service:
        return service.run(arrivals)


class TestArrivalJournal:
    def test_roundtrip_run_leaves_nothing_pending(self, graph, stream, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with ArrivalJournal(path, fsync=False) as journal:
            report = run_service(graph, stream, journal=journal)
        assert report.answered_queries == len(stream)
        scan = scan_journal(path)
        assert scan.arrivals == len(stream)
        assert scan.done == len(stream)
        assert scan.pending == []
        assert scan.torn_lines == 0

    def test_append_and_scan_preserve_seq_order(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with ArrivalJournal(path, fsync=False) as journal:
            for arrival, (s, t) in enumerate([(0, 5), (1, 6), (2, 7)]):
                seq = journal.next_seq()
                journal.append_arrival(
                    TimedQuery(float(arrival), Query(s, t), seq=seq)
                )
            journal.append_done(1, OUTCOME_ANSWERED)
        scan = scan_journal(path)
        assert [tq.seq for tq in scan.pending] == [0, 2]
        assert scan.next_seq == 3

    def test_reopen_resumes_seq_and_pending(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with ArrivalJournal(path, fsync=False) as journal:
            seq = journal.next_seq()
            journal.append_arrival(TimedQuery(0.0, Query(0, 5), seq=seq))
        with ArrivalJournal(path, fsync=False) as journal:
            assert len(journal.pending_arrivals()) == 1
            assert journal.next_seq() == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with ArrivalJournal(path, fsync=False) as journal:
            seq = journal.next_seq()
            journal.append_arrival(TimedQuery(0.0, Query(0, 5), seq=seq))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type":"arrival","seq":1,"arr')  # crash mid-write
        scan = scan_journal(path)
        assert scan.torn_lines == 1
        assert len(scan.pending) == 1
        assert scan.next_seq == 1

    def test_unknown_record_type_counts_as_torn(self, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"type": "mystery", "seq": 0}) + "\n")
        assert scan_journal(path).torn_lines == 1

    def test_scan_of_missing_file_is_empty(self, tmp_path):
        scan = scan_journal(str(tmp_path / "absent.jsonl"))
        assert scan.pending == []
        assert scan.next_seq == 0

    def test_empty_path_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalJournal("")

    def test_unstamped_arrival_rejected(self, tmp_path):
        with ArrivalJournal(str(tmp_path / "wal.jsonl"), fsync=False) as journal:
            with pytest.raises(ConfigurationError):
                journal.append_arrival(TimedQuery(0.0, Query(0, 1)))

    def test_write_after_close_rejected(self, tmp_path):
        journal = ArrivalJournal(str(tmp_path / "wal.jsonl"), fsync=False)
        journal.close()
        with pytest.raises(ConfigurationError):
            journal.append_done(0, OUTCOME_ANSWERED)


class TestRecovery:
    def test_drain_then_recover_answers_the_leftovers(
        self, graph, stream, tmp_path
    ):
        path = str(tmp_path / "wal.jsonl")
        with ArrivalJournal(path, fsync=False) as journal:
            first = run_service(
                graph, stream, journal=journal, drain_after_seconds=0.5
            )
        assert first.drained
        assert first.unadmitted_arrivals > 0

        with ArrivalJournal(path, fsync=False) as journal:
            pending = journal.pending_arrivals()
            assert len(pending) == first.unadmitted_arrivals
            second = run_service(graph, pending, journal=journal)
        assert second.replayed_arrivals == len(pending)
        assert second.answered_queries == len(pending)
        assert scan_journal(path).pending == []

    def test_replayed_arrivals_are_not_rejournaled(self, graph, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        arrivals = [TimedQuery(0.1, Query(0, 5)), TimedQuery(0.2, Query(1, 6))]
        with ArrivalJournal(path, fsync=False) as journal:
            run_service(graph, arrivals, journal=journal, drain_after_seconds=0.0)
        with ArrivalJournal(path, fsync=False) as journal:
            pending = journal.pending_arrivals()
            run_service(graph, pending, journal=journal)
        scan = scan_journal(path)
        assert scan.arrivals == len(arrivals)  # no duplicate arrival records
        assert scan.done == len(arrivals)


DRILL_SCRIPT = """
import json, sys
from repro.network.generators import grid_city
from repro.queries.arrivals import PoissonArrivals
from repro.queries.workload import WorkloadGenerator
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.streaming import ArrivalJournal, StreamingQueryService

path = sys.argv[1]
graph = grid_city(6, 6, seed=1)
stream = PoissonArrivals(WorkloadGenerator(graph, seed=2), rate=100.0, seed=3).duration(1.0)
plan = FaultPlan(specs=(FaultSpec(site="stream", kind="kill", units=(1,)),))
with ArrivalJournal(path) as journal:
    with StreamingQueryService(
        graph, window_seconds=0.25, max_batch=32, workers=0,
        clock="simulated", journal=journal, fault_plan=plan,
    ) as service:
        service.run(stream)
print("UNREACHABLE")
"""


class TestKillNineDrill:
    def test_kill_mid_run_loses_no_queries(self, graph, stream, tmp_path):
        path = str(tmp_path / "wal.jsonl")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.getcwd(), "src"), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.run(
            [sys.executable, "-c", DRILL_SCRIPT, path],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == FAULT_EXIT_CODE, proc.stderr
        assert "UNREACHABLE" not in proc.stdout

        scan = scan_journal(path)
        assert scan.arrivals == len(stream)  # every arrival journaled up front
        assert len(scan.pending) > 0  # the kill left work owed

        with ArrivalJournal(path, fsync=False) as journal:
            pending = journal.pending_arrivals()
            report = run_service(graph, pending, journal=journal)
        assert report.answered_queries + len(report.dead_letters) == len(pending)
        final = scan_journal(path)
        assert final.pending == []
        assert final.done == len(stream)  # zero lost, zero duplicated
